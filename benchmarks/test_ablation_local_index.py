"""Ablation: the in-reducer spatial index (grid vs R-tree vs scan).

A reducer-sized bag is joined with each local index implementation.
This is a classic micro-benchmark (small, repeated), so pytest-benchmark
runs it with its normal rounds; the indexes must agree on the result and
beat the nested-loop scan on candidate checks.
"""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.joins.local import LocalJoiner
from repro.query.predicates import Overlap
from repro.query.query import Query

QUERY = Query.chain(["R1", "R2", "R3"], Overlap())
SPEC = SyntheticSpec(
    n=800,
    x_range=(0, 2000),
    y_range=(0, 2000),
    l_range=(0, 80),
    b_range=(0, 80),
    seed=19,
)


@pytest.fixture(scope="module")
def bags():
    datasets = generate_relations(SPEC, ["R1", "R2", "R3"])
    return {slot: datasets[slot] for slot in QUERY.slots}


@pytest.fixture(scope="module")
def reference_result(bags):
    assignments, __ = LocalJoiner(QUERY, "scan").enumerate(bags)
    return {tuple(a[s][0] for s in QUERY.slots) for a in assignments}


@pytest.mark.parametrize("index_kind", ["grid", "rtree", "scan"])
def test_local_join_index(benchmark, bags, reference_result, index_kind):
    joiner = LocalJoiner(QUERY, index_kind)

    def run():
        return joiner.enumerate(bags)

    assignments, checks = benchmark(run)
    got = {tuple(a[s][0] for s in QUERY.slots) for a in assignments}
    assert got == reference_result
    benchmark.extra_info["candidate_checks"] = checks
    if index_kind != "scan":
        # Spatial indexing prunes the candidate space dramatically.
        __, scan_checks = LocalJoiner(QUERY, "scan").enumerate(bags)
        assert checks < scan_checks / 5
