"""Ablation: the C-Rep-L limit metric — safe Chebyshev vs the paper's
literal Euclidean rule (see DESIGN.md's substitution table).

The dedup point mixes coordinates of two different tuple members, so a
Euclidean ball of the path bound can exclude the owner cell while each
axis stays within the bound.  The ablation measures the replication
saved by the (tighter) Euclidean rule and whether it loses tuples on a
realistic workload.
"""

from conftest import run_once

from repro.data.transforms import dataset_space
from repro.experiments.workloads import synthetic_chain
from repro.grid.partitioning import GridPartitioning
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.limits import ReplicationLimits
from repro.joins.reference import brute_force_join
from repro.mapreduce.cost import CostModel
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Range
from repro.query.query import Query


def test_limit_metric_ablation(benchmark):
    workload = synthetic_chain(3000, 30_000.0, seed=31)
    query = Query.chain(["R1", "R2", "R3"], Range(300.0))
    grid = GridPartitioning.square(dataset_space(workload.datasets), 64)
    cost = CostModel.scaled(workload.paper_scale)

    def run_all():
        out = {}
        for metric in ("chebyshev", "euclidean"):
            limits = ReplicationLimits.from_query(query, workload.d_max, metric=metric)
            algo = ControlledReplicateJoin(limits=limits)
            out[metric] = algo.run(
                query, workload.datasets, grid, Cluster(cost_model=cost)
            )
        unlimited = ControlledReplicateJoin().run(
            query, workload.datasets, grid, Cluster(cost_model=cost)
        )
        out["unlimited"] = unlimited
        return out

    results = run_once(benchmark, run_all)
    expected = brute_force_join(query, workload.datasets)

    benchmark.extra_info["comparison"] = {
        name: {
            "after_replication": r.stats.rectangles_after_replication,
            "simulated_seconds": round(r.stats.simulated_seconds, 1),
            "missing_tuples": len(expected - r.tuples),
        }
        for name, r in results.items()
    }

    # The safe metric is exact; the plain C-Rep baseline too.
    assert results["chebyshev"].tuples == expected
    assert results["unlimited"].tuples == expected
    # The Euclidean rule never invents tuples.
    assert results["euclidean"].tuples <= expected

    # Both limits trim replication versus unlimited C-Rep; Euclidean is
    # the tighter (it bounds the L2 ball inside the Chebyshev box).
    assert (
        results["chebyshev"].stats.rectangles_after_replication
        < results["unlimited"].stats.rectangles_after_replication
    )
    assert (
        results["euclidean"].stats.rectangles_after_replication
        <= results["chebyshev"].stats.rectangles_after_replication
    )
