"""PR 7 perf trajectory: columnar shuffle vs the row-at-a-time plane.

One end-to-end benchmark landing in ``BENCH_pr7.json`` (the CI
``bench-pr7`` job runs this file with ``--benchmark-json``): a
Table-2-sized Controlled-Replicate join with the columnar shuffle
(``Cluster(columnar_shuffle=True)``, the default) against the row
baseline (``columnar_shuffle=False``), both on the numpy kernel, plus
the recorded PR-6 reference for the cross-PR trajectory.

Two kinds of checks:

* **Structural, gated** — byte-identical output and counters between
  the legs, and the *shuffle share* of the phase breakdown: the
  fraction of measured job wall clock spent in shuffle merge must not
  regress more than 10% relative vs the row baseline measured in the
  same process.  Shares are ratios of two same-process measurements,
  so they gate reliably where absolute wall clocks cannot.
* **Recorded, not gated** — absolute wall clocks, the speedup vs the
  row baseline, and the speedup vs the ``numpy_kernel_seconds``
  recorded in ``BENCH_pr6.json`` (shared CI runners are too noisy to
  gate cross-run wall-clock ratios; the committed JSON documents the
  measured trajectory instead).
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import make_algorithm
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

#: Table 2, row 1 shape — same workload BENCH_pr6 recorded.
TABLE2_N = 4_000
TABLE2_SIDE = 6_300.0

#: relative regression headroom for the shuffle share gate
SHUFFLE_SHARE_SLACK = 1.10

PHASE_KEYS = ("split_s", "map_s", "shuffle_s", "reduce_s", "write_s")


def _run_crep(workload, *, columnar: bool):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    cluster = Cluster(kernel="numpy", columnar_shuffle=columnar)
    algorithm = make_algorithm("c-rep")
    # Collector paused over the timed region (the ``timeit`` convention):
    # one run allocates millions of short-lived tuples and generational
    # collections otherwise add 15-25% of pure pause noise to the wall
    # clock.  Both legs get identical treatment.
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        result = algorithm.run(query, workload.datasets, grid, cluster)
        wall = time.perf_counter() - started
    finally:
        if was_enabled:
            gc.enable()
    output = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve("controlled-replicate/output")
    }
    return wall, output, result


def _phase_breakdown(result) -> dict[str, float]:
    """Workflow-wide wall-clock decomposition summed over jobs."""
    totals = dict.fromkeys(PHASE_KEYS, 0.0)
    for job_result in result.workflow.job_results:
        phases = job_result.phases.as_dict()
        for key in PHASE_KEYS:
            totals[key] += phases[key]
    totals["total_s"] = sum(totals[key] for key in PHASE_KEYS)
    return totals


def _shares(breakdown: dict[str, float]) -> dict[str, float]:
    total = breakdown["total_s"]
    return {key: breakdown[key] / total for key in PHASE_KEYS}


def _pr6_recorded_numpy_seconds() -> float | None:
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr6.json"
    if not path.exists():
        return None
    for bench in json.loads(path.read_text()).get("benchmarks", []):
        info = bench.get("extra_info", {})
        if "numpy_kernel_seconds" in info:
            return float(info["numpy_kernel_seconds"])
    return None


def test_columnar_shuffle_e2e_controlled_replicate(benchmark):
    workload = synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )

    # Min-of-N per leg (one simulated join is well under a second and
    # shared runners jitter more than the ratios under measurement);
    # breakdowns are taken from each leg's fastest run so shares and
    # wall clocks describe the same execution.
    row_runs = [_run_crep(workload, columnar=False) for __ in range(3)]
    row_wall, row_output, row_result = min(row_runs, key=lambda t: t[0])

    columnar_runs = [
        benchmark.pedantic(
            lambda: _run_crep(workload, columnar=True), rounds=1, iterations=1
        )
    ]
    columnar_runs += [_run_crep(workload, columnar=True) for __ in range(4)]
    columnar_wall, columnar_output, columnar_result = min(
        columnar_runs, key=lambda t: t[0]
    )

    # The columnar shuffle is invisible to everything canonical.
    assert columnar_output == row_output
    row_stats = row_result.stats
    columnar_stats = columnar_result.stats
    assert columnar_stats.simulated_seconds == row_stats.simulated_seconds
    assert columnar_stats.shuffled_records == row_stats.shuffled_records
    assert columnar_stats.output_tuples == row_stats.output_tuples

    columnar_breakdown = _phase_breakdown(columnar_result)
    row_breakdown = _phase_breakdown(row_result)
    columnar_shares = _shares(columnar_breakdown)
    row_shares = _shares(row_breakdown)

    # The gate: the shuffle plane's share of the job wall clock must
    # not regress >10% relative vs the row baseline.
    assert (
        columnar_shares["shuffle_s"]
        <= row_shares["shuffle_s"] * SHUFFLE_SHARE_SLACK
    )

    pr6_numpy = _pr6_recorded_numpy_seconds()

    benchmark.extra_info["workload"] = f"table2-row1 nI={TABLE2_N}"
    benchmark.extra_info["kernel"] = "numpy"
    benchmark.extra_info["columnar_shuffle_seconds"] = round(columnar_wall, 3)
    benchmark.extra_info["row_shuffle_seconds"] = round(row_wall, 3)
    benchmark.extra_info["speedup_vs_row_shuffle"] = round(
        row_wall / columnar_wall, 3
    )
    if pr6_numpy is not None:
        benchmark.extra_info["pr6_recorded_numpy_seconds"] = pr6_numpy
        benchmark.extra_info["speedup_vs_pr6_numpy"] = round(
            pr6_numpy / columnar_wall, 3
        )
    benchmark.extra_info["columnar_phase_seconds"] = {
        k: round(v, 4) for k, v in columnar_breakdown.items()
    }
    benchmark.extra_info["row_phase_seconds"] = {
        k: round(v, 4) for k, v in row_breakdown.items()
    }
    benchmark.extra_info["columnar_phase_share"] = {
        k: round(v, 4) for k, v in columnar_shares.items()
    }
    benchmark.extra_info["row_phase_share"] = {
        k: round(v, 4) for k, v in row_shares.items()
    }
    benchmark.extra_info["simulated_seconds"] = columnar_stats.simulated_seconds
    benchmark.extra_info["shuffled_records"] = columnar_stats.shuffled_records
    benchmark.extra_info["output_tuples"] = columnar_stats.output_tuples
