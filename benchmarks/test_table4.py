"""Benchmark: regenerate Table 4 (Q2s star self-join, California roads,
varying the MBB enlargement factor k).

Paper shape asserted:
* every algorithm slows down as k grows (denser overlaps);
* the C-Rep family beats 2-way Cascade on every row (19 vs 15/14 min at
  k=1 up to 95 vs 57/53 at k=2);
* C-Rep-L improves on C-Rep only slightly (road MBBs are tiny relative
  to cells, so the limit trims little).
"""

from conftest import assert_consistent, growth, record_table, run_once, times

from repro.experiments import table4


def test_table4(benchmark, bench_scale):
    result = run_once(benchmark, table4.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    # Monotone degradation with k for cascade.
    cascade = times(result, "cascade")
    assert growth(cascade) > 1.1

    # C-Rep and C-Rep-L beat Cascade on every row (the paper's headline
    # real-data result).
    for row in result.rows:
        assert (
            row.metrics["c-rep"].simulated_seconds
            < row.metrics["cascade"].simulated_seconds
        )
        assert (
            row.metrics["c-rep-l"].simulated_seconds
            <= row.metrics["c-rep"].simulated_seconds
        )

    # Replication volumes rise with k for C-Rep.
    reps = [
        row.metrics["c-rep"].rectangles_after_replication for row in result.rows
    ]
    assert reps[-1] > reps[0]
