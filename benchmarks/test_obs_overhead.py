"""Observability overhead: disabled instrumentation must be free.

The engine is instrumented unconditionally — every job opens a handful
of spans, stamps per-task ``perf_counter`` pairs, sets span args, and
(since the deep-observability PR) guards ledger journal sites and
per-task profiler hooks.  With the defaults — the
:class:`~repro.obs.trace.NullRecorder`, the
:class:`~repro.obs.ledger.NullLedger` and no profiler — all of that
reduces to no-op calls or falsy checks; the acceptance criterion is
that each plane costs **< 2%** of a Table-2-sized Controlled-Replicate
run.

The measurements land in ``BENCH_obs.json``:

* **Null instrumentation microbenchmarks** — the per-call cost of one
  disabled touch (a full null span cycle; a ``NullLedger`` enabled
  check plus no-op ``event``; a falsy profile-flag check), multiplied
  by a generous estimate of the engine's call count per run and
  divided by the measured run wall.  Those bounds are asserted against
  the 2% criterion: microbenchmarks are stable where an A/B of two
  multi-second runs on a shared CI runner is not.
* **Traced vs untraced A/B** — the same join with a live
  :class:`~repro.obs.trace.TraceRecorder`, recorded (not gated) so the
  cost of *actual* tracing stays visible over time.
"""

from __future__ import annotations

import time

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import make_algorithm
from repro.mapreduce.engine import Cluster
from repro.obs.ledger import NullLedger
from repro.obs.trace import NullRecorder, TraceRecorder
from repro.query.predicates import Overlap
from repro.query.query import Query

#: Table 2, row 1 shape (as in the PR 2 benchmark).
TABLE2_N = 4_000
TABLE2_SIDE = 6_300.0

NULL_CYCLES = 200_000

#: Worst-case null instrumentation calls per *job*: 6 stage spans with
#: ~2 arg sets each, the job span with 5, 2 task-wall enabled checks —
#: rounded way up to stay an overestimate as call sites accrete.
CALLS_PER_JOB = 100
MAX_OVERHEAD_FRACTION = 0.02


def _null_cycle_seconds() -> float:
    """Best-of-3 per-cycle cost of one full null span interaction."""
    rec = NullRecorder()
    best = float("inf")
    for __ in range(3):
        started = time.perf_counter()
        for __ in range(NULL_CYCLES):
            with rec.span("stage", cat="phase", track="engine") as sp:
                sp.set("records", 0)
                sp.set("bytes", 0)
        best = min(best, time.perf_counter() - started)
    return best / NULL_CYCLES


def _run_crep(workload, recorder=None):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    kwargs = {"recorder": recorder} if recorder is not None else {}
    cluster = Cluster(**kwargs)
    algorithm = make_algorithm("c-rep")
    started = time.perf_counter()
    result = algorithm.run(query, workload.datasets, grid, cluster)
    return time.perf_counter() - started, result


def test_null_recorder_overhead_under_two_percent(benchmark):
    workload = synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )
    per_cycle_s = _null_cycle_seconds()

    wall, result = benchmark.pedantic(
        lambda: _run_crep(workload), rounds=1, iterations=1
    )
    num_jobs = len(result.workflow.job_results)
    num_tasks = sum(
        len(r.map_tasks) + len(r.reduce_tasks)
        for r in result.workflow.job_results
    )
    # Every instrumentation touch, priced at a full span cycle each
    # (task stamps are two perf_counter calls — cheaper than a cycle).
    est_overhead_s = (num_jobs * CALLS_PER_JOB + num_tasks) * per_cycle_s
    fraction = est_overhead_s / wall

    benchmark.extra_info["workload"] = f"table2-row1 nI={TABLE2_N}"
    benchmark.extra_info["null_cycle_ns"] = round(per_cycle_s * 1e9, 1)
    benchmark.extra_info["jobs"] = num_jobs
    benchmark.extra_info["tasks"] = num_tasks
    benchmark.extra_info["estimated_overhead_fraction"] = round(fraction, 6)

    assert fraction < MAX_OVERHEAD_FRACTION


def _null_ledger_cycle_seconds() -> float:
    """Best-of-3 cost of one disabled-ledger touch.

    Priced as the *worst* site: an ``enabled`` check followed by a
    no-op ``event`` call with keyword payload.  Most engine sites are
    just the check (they skip the call when disabled), so this is an
    overestimate per touch.
    """
    led = NullLedger()
    best = float("inf")
    for __ in range(3):
        started = time.perf_counter()
        for __ in range(NULL_CYCLES):
            if led.enabled:
                pass
            led.event("task_attempt", phase="map", task=0, attempt=0,
                      outcome="ok", charged=False, duration_s=0.0)
        best = min(best, time.perf_counter() - started)
    return best / NULL_CYCLES


def _disabled_profile_cycle_seconds() -> float:
    """Best-of-3 cost of one disabled-profiler touch (falsy flag check)."""

    class _Phase:
        profile = False

    phase = _Phase()
    profiler = None
    best = float("inf")
    for __ in range(3):
        started = time.perf_counter()
        for __ in range(NULL_CYCLES):
            if phase.profile:
                pass
            if profiler is not None:
                pass
        best = min(best, time.perf_counter() - started)
    return best / NULL_CYCLES


def test_disabled_ledger_overhead_under_two_percent(benchmark):
    workload = synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )
    per_cycle_s = _null_ledger_cycle_seconds()

    wall, result = benchmark.pedantic(
        lambda: _run_crep(workload), rounds=1, iterations=1
    )
    num_jobs = len(result.workflow.job_results)
    num_tasks = sum(
        len(r.map_tasks) + len(r.reduce_tasks)
        for r in result.workflow.job_results
    )
    # Journal sites: manifest + job brackets + checkpoint guards per
    # job, one attempt record and one spill guard per task — each
    # priced as a full event call even though the disabled path is a
    # single attribute check at most sites.
    est_overhead_s = (num_jobs * 10 + num_tasks * 2) * per_cycle_s
    fraction = est_overhead_s / wall

    benchmark.extra_info["workload"] = f"table2-row1 nI={TABLE2_N}"
    benchmark.extra_info["null_ledger_cycle_ns"] = round(per_cycle_s * 1e9, 1)
    benchmark.extra_info["jobs"] = num_jobs
    benchmark.extra_info["tasks"] = num_tasks
    benchmark.extra_info["estimated_overhead_fraction"] = round(fraction, 6)

    assert fraction < MAX_OVERHEAD_FRACTION


def test_disabled_profiler_overhead_under_two_percent(benchmark):
    workload = synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )
    per_cycle_s = _disabled_profile_cycle_seconds()

    wall, result = benchmark.pedantic(
        lambda: _run_crep(workload), rounds=1, iterations=1
    )
    num_tasks = sum(
        len(r.map_tasks) + len(r.reduce_tasks)
        for r in result.workflow.job_results
    )
    # One phase.profile check per task body plus the cluster-level
    # `profiler is not None` checks — price every task at four touches.
    est_overhead_s = num_tasks * 4 * per_cycle_s
    fraction = est_overhead_s / wall

    benchmark.extra_info["workload"] = f"table2-row1 nI={TABLE2_N}"
    benchmark.extra_info["disabled_profile_cycle_ns"] = round(
        per_cycle_s * 1e9, 1
    )
    benchmark.extra_info["tasks"] = num_tasks
    benchmark.extra_info["estimated_overhead_fraction"] = round(fraction, 6)

    assert fraction < MAX_OVERHEAD_FRACTION


def test_traced_run_cost_recorded(benchmark):
    """A/B of a live TraceRecorder vs the null default — recorded only."""
    workload = synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )
    null_wall, null_result = _run_crep(workload)
    recorder = TraceRecorder()
    traced_wall, traced_result = benchmark.pedantic(
        lambda: _run_crep(workload, recorder=recorder), rounds=1, iterations=1
    )

    # Tracing observes; it must not change the computation.
    assert (
        traced_result.stats.simulated_seconds
        == null_result.stats.simulated_seconds
    )
    assert traced_result.tuples == null_result.tuples

    benchmark.extra_info["untraced_seconds"] = round(null_wall, 3)
    benchmark.extra_info["traced_seconds"] = round(traced_wall, 3)
    benchmark.extra_info["traced_over_untraced"] = round(
        traced_wall / null_wall, 3
    )
    benchmark.extra_info["spans_recorded"] = len(recorder.spans)
