"""Benchmark: regenerate Table 5 (Q3 range chain, varying nI).

Paper shape asserted:
* Cascade spirals out fastest (11 min -> aborted at 5m);
* C-Rep-L clearly beats C-Rep — its communicated rectangle count is
  roughly a third of C-Rep's (3.0 vs 9.1m ... 15.8 vs 58.4m);
* marked counts are identical between the two C-Rep variants.
"""

from conftest import assert_consistent, growth, record_table, run_once, times

from repro.experiments import table5


def test_table5(benchmark, bench_scale):
    result = run_once(benchmark, table5.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    # Cascade degrades fastest along the sweep.
    assert growth(times(result, "cascade")) > growth(times(result, "c-rep-l"))

    last = result.rows[-1].metrics
    # C-Rep-L is fastest at the top row and communicates far less.
    assert last["c-rep-l"].simulated_seconds < last["c-rep"].simulated_seconds
    assert last["c-rep-l"].simulated_seconds < last["cascade"].simulated_seconds
    assert (
        last["c-rep-l"].rectangles_after_replication
        < 0.7 * last["c-rep"].rectangles_after_replication
    )

    for row in result.rows:
        assert (
            row.metrics["c-rep"].rectangles_marked
            == row.metrics["c-rep-l"].rectangles_marked
        )
