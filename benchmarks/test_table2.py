"""Benchmark: regenerate Table 2 (Q2 overlap chain, varying nI).

Paper shape asserted:
* All-Replicate is the slowest by a wide margin and its communicated
  rectangle count dwarfs C-Rep's (64.3m vs 3.9m at row 1).
* 2-way Cascade degrades super-linearly along the sweep (5 -> 35 min
  over a 5x workload in the paper).
* C-Rep-L matches C-Rep's marked counts exactly and out-communicates it.
"""

from conftest import assert_consistent, growth, record_table, run_once, times

from repro.experiments import table2


def test_table2(benchmark, bench_scale):
    result = run_once(benchmark, table2.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    first = result.rows[0].metrics
    # All-Rep is the worst algorithm on its rows, by a clear factor.
    assert first["all-rep"].simulated_seconds > 2 * first["cascade"].simulated_seconds
    assert first["all-rep"].simulated_seconds > 1.5 * first["c-rep"].simulated_seconds
    # ... and its communication volume dwarfs C-Rep's.
    assert (
        first["all-rep"].rectangles_after_replication
        > 2 * first["c-rep"].rectangles_after_replication
    )

    # Cascade degrades super-linearly: 5x workload, >5x time.
    assert growth(times(result, "cascade")) > 5.0

    # C-Rep closes on Cascade as the workload grows (paper: overtakes).
    ratio_first = (
        first["cascade"].simulated_seconds / first["c-rep"].simulated_seconds
    )
    last = result.rows[-1].metrics
    ratio_last = last["cascade"].simulated_seconds / last["c-rep"].simulated_seconds
    assert ratio_last > ratio_first

    # C-Rep-L: identical marking, less communication, fastest at the top.
    for row in result.rows:
        assert (
            row.metrics["c-rep"].rectangles_marked
            == row.metrics["c-rep-l"].rectangles_marked
        )
        assert (
            row.metrics["c-rep-l"].rectangles_after_replication
            <= row.metrics["c-rep"].rectangles_after_replication
        )
    assert (
        last["c-rep-l"].simulated_seconds < last["cascade"].simulated_seconds
    )
    assert last["c-rep-l"].simulated_seconds < last["c-rep"].simulated_seconds
