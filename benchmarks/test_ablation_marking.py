"""Ablation: what the C1-C4 marking conditions actually buy.

Two alternative round-1 marking strategies are swapped into
Controlled-Replicate via its ``marking_factory`` hook:

* **mark-all** — mark every rectangle starting in the cell.  Trivially
  sound (it degenerates to All-Replicate with an extra round) and shows
  how much replication the conditions avoid.
* **crossing-only** — mark exactly the boundary-crossing rectangles
  (condition C2 alone, no consistency/C1).  This is *unsound*: a
  non-crossing rectangle shielded by crossing partners (the paper's u2
  in Figure 5) must still replicate.  The benchmark measures how many
  output tuples such a naive rule loses.
"""

from conftest import run_once

from repro.data.transforms import dataset_space
from repro.experiments.workloads import synthetic_chain
from repro.grid.partitioning import GridPartitioning
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.marking import MarkingDecision
from repro.joins.reference import brute_force_join
from repro.mapreduce.cost import CostModel
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query


class MarkAll:
    """Round-1 strategy: replicate everything (no conditions)."""

    def __init__(self, query, grid):
        self.grid = grid

    def select_marked(self, cell, received):
        marked = {
            (dataset, rid)
            for dataset, rects in received.items()
            for rid, rect in rects
            if self.grid.cell_of(rect).cell_id == cell.cell_id
        }
        return MarkingDecision(marked=marked, ops=0)


class CrossingOnly:
    """Round-1 strategy: condition C2 alone, ignoring consistency."""

    def __init__(self, query, grid):
        self.grid = grid

    def select_marked(self, cell, received):
        marked = {
            (dataset, rid)
            for dataset, rects in received.items()
            for rid, rect in rects
            if self.grid.cell_of(rect).cell_id == cell.cell_id
            and self.grid.crosses_cell_boundary(rect, cell)
        }
        return MarkingDecision(marked=marked, ops=0)


def test_marking_ablation(benchmark):
    workload = synthetic_chain(4000, 6300.0, seed=11)
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = GridPartitioning.square(dataset_space(workload.datasets), 64)
    cost = CostModel.scaled(workload.paper_scale)

    def run_all():
        out = {}
        for name, factory in [
            ("c-rep", None),
            ("mark-all", MarkAll),
            ("crossing-only", CrossingOnly),
        ]:
            algo = ControlledReplicateJoin(marking_factory=factory)
            out[name] = algo.run(query, workload.datasets, grid, Cluster(cost_model=cost))
        return out

    results = run_once(benchmark, run_all)
    expected = brute_force_join(query, workload.datasets)

    lost = len(expected - results["crossing-only"].tuples)
    benchmark.extra_info["comparison"] = {
        name: {
            "marked": r.stats.rectangles_marked,
            "after_replication": r.stats.rectangles_after_replication,
            "simulated_seconds": round(r.stats.simulated_seconds, 1),
            "tuples": len(r.tuples),
        }
        for name, r in results.items()
    }
    benchmark.extra_info["crossing_only_lost_tuples"] = lost

    # Full conditions are correct; mark-all is correct but communicates
    # far more.
    assert results["c-rep"].tuples == expected
    assert results["mark-all"].tuples == expected
    assert (
        results["mark-all"].stats.rectangles_after_replication
        > 3 * results["c-rep"].stats.rectangles_after_replication
    )
    assert (
        results["mark-all"].stats.simulated_seconds
        > results["c-rep"].stats.simulated_seconds
    )

    # Crossing-only marks fewer rectangles than the full conditions
    # (it misses shielded non-crossing members) and never finds tuples
    # the sound algorithms miss.
    assert results["crossing-only"].tuples <= expected
