"""Benchmark: regenerate Table 9 (hybrid query Q4s, California roads,
varying d).

Paper shape asserted:
* C-Rep-L at-or-below C-Rep on every row (28/26 ... 63/48 min);
* replication volumes grow with d for C-Rep, barely for C-Rep-L
  (5.0 -> 7.5m vs 3.6 -> 4.1m).
"""

from conftest import assert_consistent, record_table, run_once

from repro.experiments import table9


def test_table9(benchmark, bench_scale):
    result = run_once(benchmark, table9.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    for row in result.rows:
        m = row.metrics
        assert m["c-rep-l"].simulated_seconds <= m["c-rep"].simulated_seconds
        assert m["c-rep"].rectangles_marked == m["c-rep-l"].rectangles_marked

    crep_rep = [
        row.metrics["c-rep"].rectangles_after_replication for row in result.rows
    ]
    crepl_rep = [
        row.metrics["c-rep-l"].rectangles_after_replication for row in result.rows
    ]
    # C-Rep's replication grows faster with d than C-Rep-L's.
    assert crep_rep[-1] / crep_rep[0] > crepl_rep[-1] / crepl_rep[0]
