"""Benchmark: regenerate Table 8 (hybrid query Q4, varying nI).

Paper shape asserted:
* C-Rep-L beats C-Rep on every row (7/6 min at 1m up to 117/76 at 5m);
* the after-replication ratio sits around a third (8.0 vs 3.1m at 1m);
* both degrade along the sweep, C-Rep faster.
"""

from conftest import assert_consistent, growth, record_table, run_once, times

from repro.experiments import table8


def test_table8(benchmark, bench_scale):
    result = run_once(benchmark, table8.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    for row in result.rows:
        m = row.metrics
        assert m["c-rep-l"].simulated_seconds <= m["c-rep"].simulated_seconds
        assert m["c-rep"].rectangles_marked == m["c-rep-l"].rectangles_marked
        assert (
            m["c-rep-l"].rectangles_after_replication
            < m["c-rep"].rectangles_after_replication
        )

    # At the top of the sweep the communication gap is substantial.
    last = result.rows[-1].metrics
    assert (
        last["c-rep-l"].rectangles_after_replication
        < 0.7 * last["c-rep"].rectangles_after_replication
    )

    # Both degrade; C-Rep at least as fast as C-Rep-L.
    assert growth(times(result, "c-rep")) > 2.0
    assert growth(times(result, "c-rep")) >= 0.9 * growth(times(result, "c-rep-l"))
