"""Benchmark: regenerate Table 3 (Q2, varying rectangle dimensions).

Paper shape asserted:
* Cascade's time explodes along the l_max sweep (10 -> 314 min; its
  intermediate results grow with the output).
* The gap between C-Rep's and C-Rep-L's communicated rectangles widens
  with l_max (7.6/6.1 at 100 vs 16.8/7.3 at 500): larger rectangles mean
  the distance limit trims more of the 4th quadrant.
"""

from conftest import assert_consistent, growth, record_table, run_once, times

from repro.experiments import table3


def test_table3(benchmark, bench_scale):
    result = run_once(benchmark, table3.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    # Cascade grows much faster than C-Rep-L along the sweep.
    assert growth(times(result, "cascade")) > 1.5 * growth(times(result, "c-rep-l"))

    # The replication gap widens with l_max.
    gap = [
        row.metrics["c-rep"].rectangles_after_replication
        / max(1, row.metrics["c-rep-l"].rectangles_after_replication)
        for row in result.rows
    ]
    assert gap[-1] > gap[0]

    # C-Rep-L is the fastest algorithm at the largest rectangles.
    last = result.rows[-1].metrics
    assert last["c-rep-l"].simulated_seconds < last["cascade"].simulated_seconds
    assert last["c-rep-l"].simulated_seconds < last["c-rep"].simulated_seconds

    # Marked counts identical across the C-Rep family.
    for row in result.rows:
        assert (
            row.metrics["c-rep"].rectangles_marked
            == row.metrics["c-rep-l"].rectangles_marked
        )
