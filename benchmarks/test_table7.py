"""Benchmark: regenerate Table 7 (Q3s range self-chain, California
roads, varying d).

Paper shape asserted:
* 2-way Cascade is far slower than both C-Rep variants on every row
  (76 vs 14/11 min at d=5);
* C-Rep-L stays at-or-below C-Rep with a small advantage (tiny road
  MBBs leave the limit little to trim: 4.1 -> 3.1m at d=5).
"""

from conftest import assert_consistent, record_table, run_once

from repro.experiments import table7


def test_table7(benchmark, bench_scale):
    result = run_once(benchmark, table7.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    for row in result.rows:
        m = row.metrics
        # Cascade clearly loses on real-data range joins.
        assert m["c-rep"].simulated_seconds < m["cascade"].simulated_seconds
        assert m["c-rep-l"].simulated_seconds <= m["c-rep"].simulated_seconds
        assert (
            m["c-rep-l"].rectangles_after_replication
            <= m["c-rep"].rectangles_after_replication
        )
        assert m["c-rep"].rectangles_marked == m["c-rep-l"].rectangles_marked

    # Everything grows with d.
    crep = [row.metrics["c-rep"].simulated_seconds for row in result.rows]
    assert crep[-1] > crep[0]
