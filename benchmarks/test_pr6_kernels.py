"""PR 6 perf trajectory: columnar numpy kernels vs the scalar path.

Three levels, all landing in ``BENCH_pr6.json`` (the CI benchmark job
runs this file with ``--benchmark-json=BENCH_pr6.json``):

* **Sweep microbenchmark** — the batched plane-sweep
  (:func:`~repro.kernels.sweep.sweep_pairs_batch`) against the scalar
  :func:`~repro.joins.sweep.sweep_pairs`, on identical inputs with the
  exact-order output contract asserted.
* **Probe microbenchmark** — one bulk
  :meth:`~repro.index.grid_index.GridIndex.probe_frontier` call against
  the equivalent per-query scalar ``search`` loop, hit-for-hit.
* **End-to-end** — a Table-2-sized Controlled-Replicate join on the
  serial executor, ``Cluster(kernel="numpy")`` against both
  ``kernel="python"`` and the PR-2-era seed codec path
  (``typed_io=False``), re-measured fresh on the same machine.  Output
  must be byte-identical and every cost-model counter unchanged; the
  wall-clocks and their ratios are recorded.

Timing floors are asserted only where the outcome is structural (the
batched kernels must not lose to the loops they replace); the ratios
are recorded, not gated, because shared CI runners are too noisy for a
hard wall-clock assertion.  Roughly half the end-to-end wall clock is
engine infrastructure (shuffle, codec, staging) shared by both kernels,
which bounds the whole-join ratio well below the kernel-level ones.
"""

from __future__ import annotations

import random
import time

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.geometry.rectangle import Rect
from repro.index.grid_index import GridIndex
from repro.joins.registry import make_algorithm
from repro.joins.sweep import sweep_pairs
from repro.kernels import numpy_or_none
from repro.kernels.batch import RectBatch
from repro.kernels.sweep import sweep_pairs_batch
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

#: Table 2, row 1 shape (nI = 4000 stands for the paper's 1m rectangles).
TABLE2_N = 4_000
TABLE2_SIDE = 6_300.0

SWEEP_N = 50_000
SWEEP_SIDE = 50_000.0
PROBE_DATA_N = 20_000
PROBE_QUERY_N = 5_000


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _random_rects(
    n: int, seed: int = 11, side: float = TABLE2_SIDE, max_side: float = 40.0
) -> list[tuple[int, Rect]]:
    rng = random.Random(seed)
    return [
        (
            rid,
            Rect(
                rng.uniform(0, side),
                rng.uniform(1, side),
                rng.uniform(0.1, max_side),
                rng.uniform(0.1, max_side),
            ),
        )
        for rid in range(n)
    ]


# ----------------------------------------------------------------------
# Sweep microbenchmark
# ----------------------------------------------------------------------
def test_sweep_kernel_batch_vs_scalar(benchmark):
    """Batched plane-sweep vs the scalar sweep, identical output."""
    left = _random_rects(SWEEP_N, seed=3, side=SWEEP_SIDE, max_side=30.0)
    right = _random_rects(SWEEP_N, seed=5, side=SWEEP_SIDE, max_side=30.0)

    scalar_s = min(_timed(lambda: list(sweep_pairs(left, right))) for __ in range(3))
    batch_s = min(_timed(lambda: sweep_pairs_batch(left, right)) for __ in range(3))
    pairs = benchmark.pedantic(
        lambda: sweep_pairs_batch(left, right), rounds=1, iterations=1
    )

    benchmark.extra_info["n_per_side"] = SWEEP_N
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["scalar_seconds"] = round(scalar_s, 4)
    benchmark.extra_info["batch_seconds"] = round(batch_s, 4)
    benchmark.extra_info["speedup"] = round(scalar_s / batch_s, 2)

    # Exact-twin contract: same pairs in the same order.
    assert pairs == list(sweep_pairs(left, right))
    # Structural: the batched kernel must not lose to the scalar loop.
    assert batch_s < scalar_s


# ----------------------------------------------------------------------
# Probe microbenchmark
# ----------------------------------------------------------------------
def test_grid_probe_frontier_vs_scalar(benchmark):
    """One bulk CSR frontier probe vs the per-query scalar search loop."""
    np = numpy_or_none()
    assert np is not None, "bench image ships numpy"
    data = _random_rects(PROBE_DATA_N, seed=7)
    queries = _random_rects(PROBE_QUERY_N, seed=9)
    idx_py = GridIndex(pairs=data, kernel="python")
    idx_np = GridIndex(pairs=data, kernel="numpy")
    qbatch = RectBatch.from_pairs(np, queries)
    positions = np.arange(len(queries), dtype=np.int64)

    def scalar_probe():
        hits = []
        for qi, (__, q) in enumerate(queries):
            for e in idx_py.search(q, 0.0):
                hits.append((qi, e.payload))
        return hits

    def frontier_probe():
        parents, entries = idx_np.probe_frontier(qbatch, positions, 0.0)
        rid_rects = idx_np._rid_rects
        return [
            (int(p), rid_rects[int(e)][0]) for p, e in zip(parents, entries)
        ]

    scalar_s = min(_timed(scalar_probe) for __ in range(3))
    batch_s = min(_timed(frontier_probe) for __ in range(3))
    hits = benchmark.pedantic(frontier_probe, rounds=1, iterations=1)

    benchmark.extra_info["data_rects"] = PROBE_DATA_N
    benchmark.extra_info["queries"] = PROBE_QUERY_N
    benchmark.extra_info["hits"] = len(hits)
    benchmark.extra_info["scalar_seconds"] = round(scalar_s, 4)
    benchmark.extra_info["batch_seconds"] = round(batch_s, 4)
    benchmark.extra_info["speedup"] = round(scalar_s / batch_s, 2)

    # Hit-for-hit identical, in query-major scan order.
    assert hits == scalar_probe()
    assert batch_s < scalar_s


# ----------------------------------------------------------------------
# End-to-end: numpy kernel vs python kernel vs PR-2 seed codec path
# ----------------------------------------------------------------------
def _run_crep(workload, *, kernel: str, typed_io: bool = True):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    cluster = Cluster(typed_io=typed_io, kernel=kernel)
    algorithm = make_algorithm("c-rep")
    started = time.perf_counter()
    result = algorithm.run(query, workload.datasets, grid, cluster)
    wall = time.perf_counter() - started
    output = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve("controlled-replicate/output")
    }
    return wall, output, result.stats


def test_numpy_e2e_controlled_replicate(benchmark):
    workload = synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )

    # Min-of-3 per leg: one simulated join is ~1s wall, and shared
    # runners jitter more than the ratios under measurement.
    seed_runs = [
        _run_crep(workload, kernel="python", typed_io=False) for __ in range(3)
    ]
    seed_wall = min(w for w, __, __ in seed_runs)
    __, seed_output, seed_stats = seed_runs[0]
    python_runs = [_run_crep(workload, kernel="python") for __ in range(3)]
    python_wall = min(w for w, __, __ in python_runs)
    __, python_output, python_stats = python_runs[0]

    numpy_runs = [
        benchmark.pedantic(
            lambda: _run_crep(workload, kernel="numpy"), rounds=1, iterations=1
        )
    ]
    numpy_runs += [_run_crep(workload, kernel="numpy") for __ in range(2)]
    numpy_wall = min(w for w, __, __ in numpy_runs)
    __, numpy_output, numpy_stats = numpy_runs[0]

    # Byte-identical final output and unchanged cost-model counters,
    # against both the scalar kernel and the PR-2-era seed path.
    assert numpy_output == python_output == seed_output
    for ref in (python_stats, seed_stats):
        assert numpy_stats.simulated_seconds == ref.simulated_seconds
        assert numpy_stats.shuffled_records == ref.shuffled_records
        assert numpy_stats.rectangles_marked == ref.rectangles_marked
        assert (
            numpy_stats.rectangles_after_replication
            == ref.rectangles_after_replication
        )
        assert numpy_stats.output_tuples == ref.output_tuples

    benchmark.extra_info["workload"] = f"table2-row1 nI={TABLE2_N}"
    benchmark.extra_info["kernel"] = "numpy"
    benchmark.extra_info["seed_codec_seconds"] = round(seed_wall, 3)
    benchmark.extra_info["python_kernel_seconds"] = round(python_wall, 3)
    benchmark.extra_info["numpy_kernel_seconds"] = round(numpy_wall, 3)
    benchmark.extra_info["speedup_vs_python_kernel"] = round(
        python_wall / numpy_wall, 3
    )
    benchmark.extra_info["speedup_vs_seed_codec"] = round(seed_wall / numpy_wall, 3)
    benchmark.extra_info["simulated_seconds"] = numpy_stats.simulated_seconds
    benchmark.extra_info["shuffled_records"] = numpy_stats.shuffled_records
    benchmark.extra_info["output_tuples"] = numpy_stats.output_tuples
