"""Ablation: grid resolution (reducer count) vs replication and time.

The paper fixes an 8x8 grid (64 reducers).  This ablation sweeps the
grid size on a fixed Q2 workload: finer grids mean smaller cells, more
boundary crossings, more marked rectangles and more replication — but
also more parallelism.  The marked-rectangle count must grow
monotonically with grid resolution.
"""

import pytest
from conftest import run_once

from repro.experiments.workloads import synthetic_chain
from repro.grid.partitioning import GridPartitioning
from repro.joins.controlled import ControlledReplicateJoin
from repro.mapreduce.cost import CostModel
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

GRID_CELLS = [16, 64, 144]


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(4000, 6300.0, seed=11)


def run_at_resolution(workload, cells):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    space = workload.datasets["R1"][0][1]  # placeholder, replaced below
    from repro.data.transforms import dataset_space

    grid = GridPartitioning.square(dataset_space(workload.datasets), cells)
    cluster = Cluster(cost_model=CostModel.scaled(workload.paper_scale))
    return ControlledReplicateJoin().run(query, workload.datasets, grid, cluster)


def test_grid_resolution_sweep(benchmark, workload):
    def sweep():
        return {cells: run_at_resolution(workload, cells) for cells in GRID_CELLS}

    results = run_once(benchmark, sweep)
    benchmark.extra_info["sweep"] = {
        cells: {
            "marked": r.stats.rectangles_marked,
            "after_replication": r.stats.rectangles_after_replication,
            "shuffled": r.stats.shuffled_records,
            "simulated_seconds": round(r.stats.simulated_seconds, 1),
        }
        for cells, r in results.items()
    }

    # All resolutions compute the same join.
    tuple_sets = [r.tuples for r in results.values()]
    assert all(t == tuple_sets[0] for t in tuple_sets)

    # Finer grid -> more boundary crossings -> more marked rectangles.
    marked = [results[c].stats.rectangles_marked for c in GRID_CELLS]
    assert marked == sorted(marked)
    assert marked[-1] > marked[0]

    # ... and more total communication.
    shuffled = [results[c].stats.shuffled_records for c in GRID_CELLS]
    assert shuffled[-1] > shuffled[0]
