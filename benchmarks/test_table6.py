"""Benchmark: regenerate Table 6 (Q3, varying the range distance d).

Paper shape asserted — the cleanest C-Rep-L result in the paper:
* C-Rep's communicated rectangles grow steeply with d (9.1m -> 24.8m)
  while C-Rep-L's stay almost flat (3.0m -> 3.5m);
* consequently C-Rep's time grows much faster than C-Rep-L's
  (10 -> 100 min vs 6 -> 41 min).
"""

from conftest import assert_consistent, growth, record_table, run_once, times

from repro.experiments import table6


def test_table6(benchmark, bench_scale):
    result = run_once(benchmark, table6.run, scale=bench_scale)
    record_table(benchmark, result)
    assert_consistent(result)

    crep_rep = [
        row.metrics["c-rep"].rectangles_after_replication for row in result.rows
    ]
    crepl_rep = [
        row.metrics["c-rep-l"].rectangles_after_replication for row in result.rows
    ]
    # C-Rep's replication volume grows steeply with d ...
    assert crep_rep[-1] / crep_rep[0] > 1.5
    # ... while C-Rep-L's stays nearly flat (paper: 9.1->24.8 vs 3.0->3.5).
    assert crepl_rep[-1] / crepl_rep[0] < 1.35

    # C-Rep-L wins every row and the gap widens.
    for row in result.rows:
        assert (
            row.metrics["c-rep-l"].simulated_seconds
            < row.metrics["c-rep"].simulated_seconds
        )
    assert growth(times(result, "c-rep")) > growth(times(result, "c-rep-l"))
