"""PR 2 perf trajectory: typed shuffle records vs the string codec path.

Three levels, all landing in ``BENCH_pr2.json`` (the CI benchmark job
runs this file with ``--benchmark-json=BENCH_pr2.json``):

* **Codec microbenchmark** — the per-record tax the typed path removes:
  a full decode+encode round-trip per rectangle versus the O(1)
  :class:`~repro.mapreduce.job.ShuffleCodec` sizer that replaced it on
  the shuffle hot path.
* **Kernel microbenchmark** — the plane-sweep pair kernel
  (:func:`~repro.joins.sweep.sweep_pairs`), whose inner loop PR 2
  rewrote to precomputed bound tuples with in-place pruning.
* **End-to-end** — a Table-2-sized Controlled-Replicate join on the
  serial executor, typed path (``Cluster(typed_io=True)``) against the
  seed codec path (``typed_io=False``, string-era per-read decoding).
  Output must be byte-identical and every cost-model counter unchanged;
  the wall-clocks and their ratio are recorded.

Timing floors are asserted only where the outcome is structural (the
sizer does strictly less work than a round-trip); the e2e ratio is
recorded, not gated, because shared CI runners are too noisy for a
hard wall-clock assertion.
"""

from __future__ import annotations

import random
import time

from repro.data.io import decode_rect, encode_rect
from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.geometry.rectangle import Rect
from repro.joins.registry import make_algorithm
from repro.joins.reducers import RECT_SHUFFLE_CODEC
from repro.joins.sweep import sweep_pairs
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import estimate_size
from repro.query.predicates import Overlap
from repro.query.query import Query

#: Table 2, row 1 shape (nI = 4000 stands for the paper's 1m rectangles).
TABLE2_N = 4_000
TABLE2_SIDE = 6_300.0

MICRO_RECORDS = 50_000
SWEEP_N = 3_000


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# Codec microbenchmark
# ----------------------------------------------------------------------
def _random_rects(n: int, seed: int = 11) -> list[tuple[int, Rect]]:
    rng = random.Random(seed)
    return [
        (
            rid,
            Rect(
                rng.uniform(0, TABLE2_SIDE),
                rng.uniform(1, TABLE2_SIDE),
                rng.uniform(0.1, 40.0),
                rng.uniform(0.1, 40.0),
            ),
        )
        for rid in range(n)
    ]


def test_codec_roundtrip_vs_typed_sizer(benchmark):
    """String-era cost per shuffled record vs the typed-path cost."""
    rects = _random_rects(MICRO_RECORDS)
    lines = [encode_rect(rid, rect) for rid, rect in rects]
    values = [("R1", rid, rect) for rid, rect in rects]
    value_size = RECT_SHUFFLE_CODEC.value_size

    def roundtrip():
        # Seed path: every shuffled record was re-parsed from its line
        # by the reducer and re-encoded by the mapper.
        total = 0
        for line in lines:
            rid, rect = decode_rect(line)
            total += len(encode_rect(rid, rect))
        return total

    def typed_sizer():
        # Typed path: the object is passed through; only the O(1)
        # sizer runs to charge the same simulated bytes.
        total = 0
        for value in values:
            total += value_size(value)
        return total

    roundtrip_s = min(_timed(roundtrip) for __ in range(3))
    typed_s = min(_timed(typed_sizer) for __ in range(3))
    typed_total = benchmark.pedantic(typed_sizer, rounds=1, iterations=1)

    benchmark.extra_info["records"] = MICRO_RECORDS
    benchmark.extra_info["roundtrip_seconds"] = round(roundtrip_s, 4)
    benchmark.extra_info["typed_sizer_seconds"] = round(typed_s, 4)
    benchmark.extra_info["speedup"] = round(roundtrip_s / typed_s, 2)

    # The sizer must charge exactly what estimate_size charged for the
    # seed-era flat value layout (dataset, rid, x, y, l, b).
    assert typed_total == sum(
        estimate_size((ds, rid, r.x, r.y, r.l, r.b)) for ds, rid, r in values
    )
    # Structural: an O(1) size lookup beats a parse+format round-trip.
    assert typed_s < roundtrip_s


# ----------------------------------------------------------------------
# Kernel microbenchmark
# ----------------------------------------------------------------------
def test_sweep_pair_kernel(benchmark):
    """Plane-sweep kernel throughput after the bound-tuple rewrite."""
    left = _random_rects(SWEEP_N, seed=3)
    right = _random_rects(SWEEP_N, seed=5)

    pairs = benchmark(lambda: sum(1 for __ in sweep_pairs(left, right)))

    benchmark.extra_info["n_per_side"] = SWEEP_N
    benchmark.extra_info["pairs"] = pairs
    assert pairs > 0


# ----------------------------------------------------------------------
# End-to-end: typed path vs seed codec path
# ----------------------------------------------------------------------
def _run_crep(workload, *, typed_io: bool):
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets)
    cluster = Cluster(typed_io=typed_io)
    algorithm = make_algorithm("c-rep")
    started = time.perf_counter()
    result = algorithm.run(query, workload.datasets, grid, cluster)
    wall = time.perf_counter() - started
    output = {
        path: tuple(cluster.dfs.read_file(path))
        for path in cluster.dfs.resolve("controlled-replicate/output")
    }
    return wall, output, result.stats


def test_typed_e2e_controlled_replicate(benchmark):
    workload = synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )

    seed_wall, seed_output, seed_stats = _run_crep(workload, typed_io=False)

    typed_wall, typed_output, typed_stats = benchmark.pedantic(
        lambda: _run_crep(workload, typed_io=True), rounds=1, iterations=1
    )

    # Byte-identical final output and unchanged cost-model counters.
    assert typed_output == seed_output
    assert typed_stats.simulated_seconds == seed_stats.simulated_seconds
    assert typed_stats.shuffled_records == seed_stats.shuffled_records
    assert typed_stats.rectangles_marked == seed_stats.rectangles_marked
    assert (
        typed_stats.rectangles_after_replication
        == seed_stats.rectangles_after_replication
    )
    assert typed_stats.output_tuples == seed_stats.output_tuples

    benchmark.extra_info["workload"] = f"table2-row1 nI={TABLE2_N}"
    benchmark.extra_info["seed_path_seconds"] = round(seed_wall, 3)
    benchmark.extra_info["typed_path_seconds"] = round(typed_wall, 3)
    benchmark.extra_info["speedup_vs_seed_path"] = round(seed_wall / typed_wall, 3)
    benchmark.extra_info["simulated_seconds"] = typed_stats.simulated_seconds
    benchmark.extra_info["shuffled_records"] = typed_stats.shuffled_records
    benchmark.extra_info["output_tuples"] = typed_stats.output_tuples
