"""Ablation: uniform vs quantile (data-adapted) rectilinear grids.

The paper's rectilinear partitioning (§4) permits non-uniform rows and
columns; the experiments use the uniform 8x8 special case.  On clustered
data, quantile boundaries equalise the *split* load (round 1: every
reducer sees a similar rectangle count), which is the classic skew
defence.  The measured twist — reported in extra_info and asserted
below — is that for Controlled-Replicate the adaptive grid does NOT
automatically help round 2: shrinking cells exactly where data is dense
creates more boundary crossings, more marked rectangles and heavier
4th-quadrant replication.  Load balancing the split phase and minimising
replication pull the partitioning in opposite directions.
"""

from conftest import run_once

from repro.data.synthetic import SyntheticSpec, generate_relations
from repro.grid.partitioning import GridPartitioning
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.reference import brute_force_join
from repro.mapreduce.cost import CostModel
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query


def test_partitioning_ablation(benchmark):
    spec = SyntheticSpec(
        n=3_000,
        x_range=(0, 10_000),
        y_range=(0, 10_000),
        l_range=(0, 80),
        b_range=(0, 80),
        dx="clustered",
        dy="clustered",
        clusters=4,
        seed=29,
    )
    datasets = generate_relations(spec, ["R1", "R2", "R3"])
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    # Fit on the union: each relation clusters in different places, and
    # a grid fitted to one relation leaves the others' hot spots intact.
    sample = [r for rects in datasets.values() for __, r in rects]

    grids = {
        "uniform": GridPartitioning.square(spec.space, 64),
        "quantile": GridPartitioning.quantile(sample, 8, 8, spec.space),
    }

    def run_all():
        return {
            name: ControlledReplicateJoin().run(
                query, datasets, grid, Cluster(cost_model=CostModel.scaled(300))
            )
            for name, grid in grids.items()
        }

    results = run_once(benchmark, run_all)
    expected = brute_force_join(query, datasets)

    def max_reduce_records(result, job_index):
        job = result.workflow.job_results[job_index]
        return max(t.input_records for t in job.reduce_tasks)

    benchmark.extra_info["comparison"] = {
        name: {
            "simulated_seconds": round(r.stats.simulated_seconds, 1),
            "max_mark_reducer_records": max_reduce_records(r, 0),
            "max_join_reducer_records": max_reduce_records(r, 1),
            "rectangles_marked": r.stats.rectangles_marked,
            "shuffled": r.stats.shuffled_records,
        }
        for name, r in results.items()
    }

    # Both grids are correct.
    assert results["uniform"].tuples == expected
    assert results["quantile"].tuples == expected
    # Quantile boundaries flatten the round-1 (split) hot spot ...
    assert (
        max_reduce_records(results["quantile"], 0)
        < 0.8 * max_reduce_records(results["uniform"], 0)
    )
    # ... but smaller cells in dense regions mark MORE rectangles for
    # replication — the trade-off this ablation documents.
    assert (
        results["quantile"].stats.rectangles_marked
        > results["uniform"].stats.rectangles_marked
    )
