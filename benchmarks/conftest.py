"""Shared helpers for the benchmark suite.

Each table benchmark regenerates one table of the paper's evaluation at
a reduced-but-representative scale, records the paper's metrics in the
benchmark's ``extra_info`` and asserts the *qualitative* shape the paper
reports — who wins, how gaps evolve along the sweep.  Timings recorded
by pytest-benchmark are the wall-clock of the whole table run; the
simulated cluster times live in ``extra_info``.
"""

from __future__ import annotations

import pytest


def record_table(benchmark, result) -> None:
    """Stash an ExperimentResult's metrics into the benchmark record."""
    benchmark.extra_info["table"] = result.table
    benchmark.extra_info["rows"] = [
        {
            "label": row.label,
            "output_tuples": row.output_tuples,
            "consistent": row.consistent,
            "metrics": {
                name: {
                    "simulated_seconds": round(m.simulated_seconds, 1),
                    "shuffled_records": m.shuffled_records,
                    "rectangles_marked": m.rectangles_marked,
                    "rectangles_after_replication": m.rectangles_after_replication,
                }
                for name, m in row.metrics.items()
            },
        }
        for row in result.rows
    ]


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive table generation exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def assert_consistent(result) -> None:
    for row in result.rows:
        assert row.consistent, f"{result.table} {row.label}: outputs disagree"


def times(result, algorithm: str) -> list[float]:
    return result.column(algorithm, "simulated_seconds")


def growth(series: list[float]) -> float:
    """Last-to-first ratio of a sweep series."""
    assert series and series[0] > 0
    return series[-1] / series[0]


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Workload scale for table benchmarks (rows keep paper labels)."""
    return 0.25
