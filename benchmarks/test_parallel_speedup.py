"""Serial vs. parallel wall-clock of the simulated cluster.

The paper's premise is that k partition-cells let k reducers work
concurrently; this benchmark checks the reproduction now *gets* that
parallelism instead of merely modelling it.  A Table-2-sized C-Rep run
(the paper's first evaluation row: Q2 over three 1m-rectangle relations,
reproduced at 4k per relation) is executed once per executor back-end on
otherwise identical clusters and the measured wall-clocks land in the
benchmark JSON, so the perf trajectory of the parallel engine starts
here.

The ≥2x speedup assertion only fires on hardware with >= 4 usable CPUs:
on fewer cores the process pool cannot beat serial execution (there is
nothing to run on), but the timings are still recorded.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.common import derive_grid
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import make_algorithm
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap
from repro.query.query import Query

#: Table 2, row 1: nI = 4000 stands for the paper's 1m rectangles.
TABLE2_N = 4_000
TABLE2_SIDE = 6_300.0
GRID_CELLS = 64
WORKERS = 4
SPEEDUP_FLOOR = 2.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def workload():
    return synthetic_chain(
        TABLE2_N, TABLE2_SIDE, names=("R1", "R2", "R3"), seed=11
    )


def _run_join(workload, executor: str, num_workers: int):
    """One C-Rep run on a fresh cluster; returns (wall seconds, tuples)."""
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = derive_grid(workload.datasets, GRID_CELLS)
    cluster = Cluster(executor=executor, num_workers=num_workers)
    cluster.split_records = 2_000
    algorithm = make_algorithm("c-rep", query=query, d_max=workload.d_max)
    started = time.perf_counter()
    result = algorithm.run(query, workload.datasets, grid, cluster)
    wall = time.perf_counter() - started
    return wall, result.tuples


def test_process_executor_speedup(benchmark, workload):
    serial_s, serial_tuples = _run_join(workload, "serial", 1)

    def parallel_run():
        return _run_join(workload, "process", WORKERS)

    parallel_s, parallel_tuples = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1
    )

    # Parallelism must never change the answer.
    assert parallel_tuples == serial_tuples

    cpus = _usable_cpus()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info["workload"] = f"table2-row1 nI={TABLE2_N}"
    benchmark.extra_info["executor"] = "process"
    benchmark.extra_info["num_workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = cpus
    benchmark.extra_info["serial_seconds"] = round(serial_s, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    if cpus >= WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"process x{WORKERS} on {cpus} CPUs: {speedup:.2f}x < "
            f"{SPEEDUP_FLOOR}x (serial {serial_s:.2f}s, parallel {parallel_s:.2f}s)"
        )


def test_thread_executor_matches_serial_output(benchmark, workload):
    """Threads rarely beat serial under the GIL but must agree byte-for-byte;
    their wall-clock is recorded for the same trajectory."""
    serial_s, serial_tuples = _run_join(workload, "serial", 1)

    def thread_run():
        return _run_join(workload, "thread", WORKERS)

    thread_s, thread_tuples = benchmark.pedantic(thread_run, rounds=1, iterations=1)
    assert thread_tuples == serial_tuples
    benchmark.extra_info["executor"] = "thread"
    benchmark.extra_info["num_workers"] = WORKERS
    benchmark.extra_info["serial_seconds"] = round(serial_s, 3)
    benchmark.extra_info["thread_seconds"] = round(thread_s, 3)
