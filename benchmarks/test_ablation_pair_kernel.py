"""Ablation: 2-way pairwise kernels inside a reducer.

Three ways to produce the candidate pairs of one reduce call:
nested loop, grid-index probing (what the join reducers use), and the
classical plane sweep.  Measured on a reducer-sized bag; all three must
agree, the indexed kernels must beat the nested loop.
"""

import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.geometry.ops import chebyshev_distance
from repro.index import Entry, GridIndex
from repro.joins.sweep import sweep_pairs

LEFT_SPEC = SyntheticSpec(
    n=1_500, x_range=(0, 4000), y_range=(0, 4000),
    l_range=(0, 60), b_range=(0, 60), seed=61,
)
RIGHT_SPEC = LEFT_SPEC.with_seed(62)
D = 25.0


@pytest.fixture(scope="module")
def bags():
    return generate_rects(LEFT_SPEC), generate_rects(RIGHT_SPEC)


@pytest.fixture(scope="module")
def expected(bags):
    left, right = bags
    return {
        (lid, rid)
        for lid, lrect in left
        for rid, rrect in right
        if chebyshev_distance(lrect, rrect) <= D
    }


def kernel_nested(left, right):
    return {
        (lid, rid)
        for lid, lrect in left
        for rid, rrect in right
        if chebyshev_distance(lrect, rrect) <= D
    }


def kernel_grid_index(left, right):
    index = GridIndex([Entry(rect=r, payload=rid) for rid, r in right])
    out = set()
    for lid, lrect in left:
        for entry in index.search(lrect, D):
            out.add((lid, entry.payload))
    return out


def kernel_sweep(left, right):
    return set(sweep_pairs(left, right, D))


KERNELS = {
    "nested-loop": kernel_nested,
    "grid-index": kernel_grid_index,
    "plane-sweep": kernel_sweep,
}


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_pair_kernel(benchmark, bags, expected, kernel):
    left, right = bags
    result = benchmark(KERNELS[kernel], left, right)
    assert result == expected
    benchmark.extra_info["pairs"] = len(result)
