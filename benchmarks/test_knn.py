"""Benchmark: the kNN-join extension — rounds vs initial-radius sizing.

Not a paper table (the paper names nearest-neighbour queries as future
work); this benchmark records the cost trade-off of the extension's one
tuning knob: a small initial radius re-runs rounds for unlucky queries,
a large one ships every query to many cells up front.
"""

from conftest import run_once

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.grid.partitioning import GridPartitioning
from repro.knn.join import KnnJoin
from repro.mapreduce.cost import CostModel
from repro.mapreduce.engine import Cluster


def test_knn_oversample_tradeoff(benchmark):
    queries = generate_rects(
        SyntheticSpec(
            n=300, x_range=(0, 20_000), y_range=(0, 20_000),
            l_range=(0, 50), b_range=(0, 50),
            dx="clustered", dy="clustered", clusters=5, seed=81,
        )
    )
    data = generate_rects(
        SyntheticSpec(
            n=4_000, x_range=(0, 20_000), y_range=(0, 20_000),
            l_range=(0, 80), b_range=(0, 80), seed=82,
        )
    )
    grid = GridPartitioning.square(
        SyntheticSpec(n=1, x_range=(0, 20_000), y_range=(0, 20_000)).space, 64
    )

    def run_all():
        out = {}
        for oversample in (0.5, 3.0, 10.0):
            result = KnnJoin(k=5, oversample=oversample).run(
                queries, data, grid, Cluster(cost_model=CostModel.scaled(50))
            )
            out[oversample] = result
        return out

    results = run_once(benchmark, run_all)

    benchmark.extra_info["sweep"] = {
        str(o): {
            "rounds": r.rounds,
            "simulated_seconds": round(r.simulated_seconds, 1),
            "shuffled": r.workflow.shuffled_records,
        }
        for o, r in results.items()
    }

    # All settings agree on the answer.
    answers = [
        {q: tuple(n) for q, n in r.neighbours.items()} for r in results.values()
    ]
    base = {q: [d for d, __ in n] for q, n in results[0.5].neighbours.items()}
    for r in results.values():
        assert {q: [d for d, __ in n] for q, n in r.neighbours.items()} == base

    # The lazy setting needs at least as many rounds; the eager setting
    # ships at least as many records.
    assert results[0.5].rounds >= results[10.0].rounds
    assert (
        results[10.0].workflow.shuffled_records
        >= results[0.5].workflow.shuffled_records / 4
    )
    __ = answers  # silence linters; equality asserted via `base`
