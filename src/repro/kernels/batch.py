"""Columnar rectangle batches.

A :class:`RectBatch` is the columnar twin of a list of ``(rid, Rect)``
pairs: parallel float64 arrays holding the stored fields (``x``, ``l``,
``y``, ``b``) and the derived closed extents.  The extents are computed
with the *exact* scalar expressions of ``Rect``'s properties
(``x_max = x + l``, ``y_min = y - b``) so that every downstream float
comparison is bit-identical to the object-at-a-time path.

The stored fields are kept alongside the extents because the range
predicate's enlargement (`Rect._enlarged_intersects`) is defined on
``x``/``l``/``y``/``b`` directly; reconstructing ``l`` as
``x_max - x_min`` would *not* be exact.
"""

from __future__ import annotations

__all__ = ["RectBatch"]


class RectBatch:
    """Parallel arrays for a batch of rectangles (one row per rect)."""

    __slots__ = ("ids", "x", "length", "y", "breadth", "x_min", "x_max", "y_min", "y_max", "n")

    def __init__(self, np, ids, x, length, y, breadth):
        self.ids = ids
        self.x = x
        self.length = length
        self.y = y
        self.breadth = breadth
        # Exact scalar property expressions, elementwise.
        self.x_min = x
        self.x_max = x + length
        self.y_min = y - breadth
        self.y_max = y
        self.n = len(x)

    @classmethod
    def from_pairs(cls, np, pairs):
        """Build from an iterable of ``(rid, Rect)`` pairs."""
        pairs = list(pairs)
        ids = [rid for rid, __ in pairs]
        flat = [c for __, r in pairs for c in (r.x, r.l, r.y, r.b)]
        return cls(np, ids, *cls._columns(np, flat))

    @classmethod
    def from_rects(cls, np, rects):
        """Build from an iterable of bare :class:`Rect` objects."""
        flat = [c for r in rects for c in (r.x, r.l, r.y, r.b)]
        return cls(np, None, *cls._columns(np, flat))

    @staticmethod
    def _columns(np, flat):
        if not flat:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty, empty, empty
        arr = np.array(flat, dtype=np.float64).reshape(-1, 4)
        return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]

    def slice(self, lo: int, hi: int) -> "RectBatch":
        """A zero-copy row slice ``[lo, hi)`` (arrays become views).

        Used by the engine to hand map splits their cut of a cached
        whole-file batch without recomputing any column.
        """
        s = object.__new__(RectBatch)
        s.ids = self.ids[lo:hi] if self.ids is not None else None
        s.x = self.x[lo:hi]
        s.length = self.length[lo:hi]
        s.y = self.y[lo:hi]
        s.breadth = self.breadth[lo:hi]
        s.x_min = self.x_min[lo:hi]
        s.x_max = self.x_max[lo:hi]
        s.y_min = self.y_min[lo:hi]
        s.y_max = self.y_max[lo:hi]
        s.n = len(s.x)
        return s

    def __len__(self) -> int:
        return self.n
