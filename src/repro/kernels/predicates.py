"""Vectorized join-predicate masks.

``triple_mask`` is the columnar twin of ``Triple.holds_with``: it
evaluates one triple against a *fixed* partner rectangle for a whole
batch of candidate rectangles at once, returning a boolean mask.  Every
comparison is the scalar predicate's floating-point expression verbatim
(``Rect.intersects`` / ``Rect.within_distance`` /
``Rect.contains_rect``), evaluated elementwise — numpy float64
arithmetic is IEEE-754 double arithmetic, so each lane is bit-identical
to the scalar call.

Unknown predicate types return ``None``; callers must fall back to the
scalar path (the numpy kernel never guesses at semantics).
"""

from __future__ import annotations

from repro.query.predicates import Contains, Overlap, Range

__all__ = ["supports_triples", "triple_mask", "pair_mask"]

_VECTORIZED = (Overlap, Range, Contains)


def supports_triples(triples) -> bool:
    """Whether every triple's predicate has a vectorized mask."""
    return all(type(t.predicate) in _VECTORIZED for t in triples)


def triple_mask(np, triple, slot, batch, idx, other):
    """``triple.holds_with(slot, batch[i], other)`` for every ``i`` in ``idx``.

    ``batch`` is a :class:`repro.kernels.batch.RectBatch` (the candidate
    side), ``idx`` an int array selecting rows, ``other`` a scalar
    ``Rect``.  Returns a bool array aligned with ``idx``, or ``None``
    when the predicate has no vectorized form.
    """
    p = triple.predicate
    kind = type(p)
    if kind is Overlap:
        # Rect.intersects: symmetric set of four closed comparisons.
        return (
            (batch.x_min[idx] <= other.x_max)
            & (other.x_min <= batch.x_max[idx])
            & (batch.y_min[idx] <= other.y_max)
            & (other.y_min <= batch.y_max[idx])
        )
    if kind is Range:
        return _range_mask(np, p.d, batch, idx, other)
    if kind is Contains:
        x_min = batch.x_min[idx]
        x_max = batch.x_max[idx]
        y_min = batch.y_min[idx]
        y_max = batch.y_max[idx]
        if slot == triple.left:
            # candidate contains other
            return (
                (x_min <= other.x_min)
                & (other.x_max <= x_max)
                & (y_min <= other.y_min)
                & (other.y_max <= y_max)
            )
        # other contains candidate
        return (
            (other.x_min <= x_min)
            & (x_max <= other.x_max)
            & (other.y_min <= y_min)
            & (y_max <= other.y_max)
        )
    return None


def pair_mask(np, triple, slot, batch_a, ia, batch_b, ib):
    """``triple.holds_with(slot, a_i, b_i)`` for aligned row pairs.

    The row-pair twin of :func:`triple_mask` for frontier evaluation:
    ``batch_a`` rows ``ia`` sit at ``slot`` (the candidate side),
    ``batch_b`` rows ``ib`` are the partner bindings; the index arrays
    align elementwise.  Returns a bool array, or ``None`` when the
    predicate has no vectorized form.
    """
    p = triple.predicate
    kind = type(p)
    a_x_min = batch_a.x_min[ia]
    a_x_max = batch_a.x_max[ia]
    a_y_min = batch_a.y_min[ia]
    a_y_max = batch_a.y_max[ia]
    b_x_min = batch_b.x_min[ib]
    b_x_max = batch_b.x_max[ib]
    b_y_min = batch_b.y_min[ib]
    b_y_max = batch_b.y_max[ib]
    if kind is Overlap:
        return (
            (a_x_min <= b_x_max)
            & (b_x_min <= a_x_max)
            & (a_y_min <= b_y_max)
            & (b_y_min <= a_y_max)
        )
    if kind is Range:
        d = p.d
        # Candidate enlarged by d vs partner (Rect._enlarged_intersects).
        ex_min = batch_a.x[ia] - d
        ex_max = ex_min + (batch_a.length[ia] + 2 * d)
        ey_max = batch_a.y[ia] + d
        ey_min = ey_max - (batch_a.breadth[ia] + 2 * d)
        m = (
            (ex_min <= b_x_max)
            & (b_x_min <= ex_max)
            & (ey_min <= b_y_max)
            & (b_y_min <= ey_max)
        )
        # Partner enlarged by d vs candidate.
        oex_min = batch_b.x[ib] - d
        oex_max = oex_min + (batch_b.length[ib] + 2 * d)
        oey_max = batch_b.y[ib] + d
        oey_min = oey_max - (batch_b.breadth[ib] + 2 * d)
        m &= (
            (oex_min <= a_x_max)
            & (a_x_min <= oex_max)
            & (oey_min <= a_y_max)
            & (a_y_min <= oey_max)
        )
        dx = np.maximum(np.maximum(a_x_min - b_x_max, b_x_min - a_x_max), 0.0)
        dy = np.maximum(np.maximum(a_y_min - b_y_max, b_y_min - a_y_max), 0.0)
        m &= dx * dx + dy * dy <= d * d
        return m
    if kind is Contains:
        if slot == triple.left:
            # candidate contains partner
            return (
                (a_x_min <= b_x_min)
                & (b_x_max <= a_x_max)
                & (a_y_min <= b_y_min)
                & (b_y_max <= a_y_max)
            )
        # partner contains candidate
        return (
            (b_x_min <= a_x_min)
            & (a_x_max <= b_x_max)
            & (b_y_min <= a_y_min)
            & (a_y_max <= b_y_max)
        )
    return None


def _range_mask(np, d, batch, idx, other):
    """``candidate.within_distance(other, d)`` elementwise.

    ``within_distance`` is symmetric expression-by-expression (both
    enlarged-intersection tests are required, and the gap formulas are
    order-independent), so no orientation branch is needed.
    """
    x_min = batch.x_min[idx]
    x_max = batch.x_max[idx]
    y_min = batch.y_min[idx]
    y_max = batch.y_max[idx]
    # Candidate enlarged by d vs other (Rect._enlarged_intersects).
    ex_min = batch.x[idx] - d
    ex_max = ex_min + (batch.length[idx] + 2 * d)
    ey_max = batch.y[idx] + d
    ey_min = ey_max - (batch.breadth[idx] + 2 * d)
    m = (
        (ex_min <= other.x_max)
        & (other.x_min <= ex_max)
        & (ey_min <= other.y_max)
        & (other.y_min <= ey_max)
    )
    # Other enlarged by d vs candidate.
    oex_min = other.x - d
    oex_max = oex_min + (other.l + 2 * d)
    oey_max = other.y + d
    oey_min = oey_max - (other.b + 2 * d)
    m &= (
        (oex_min <= x_max)
        & (x_min <= oex_max)
        & (oey_min <= y_max)
        & (y_min <= oey_max)
    )
    # Exact corner-gap test: max(0, ...) of the axis gaps, squared.
    dx = np.maximum(np.maximum(x_min - other.x_max, other.x_min - x_max), 0.0)
    dy = np.maximum(np.maximum(y_min - other.y_max, other.y_min - y_max), 0.0)
    m &= dx * dx + dy * dy <= d * d
    return m
