"""Columnar (numpy) kernels for the hot join paths.

Every algorithm in this package exists twice: a scalar, object-at-a-time
reference implementation (the ``python`` kernel — the code the rest of
the repository is written against) and a columnar ``numpy`` twin that
performs the same float comparisons over parallel arrays.  The two are
**byte-identical** by construction: the vectorized code evaluates the
exact floating-point expressions of the scalar code (never an
algebraically rearranged form — see DESIGN.md §6), preserves candidate
and emission *order*, and charges the same canonical counters
(``probes``, ``checks``, ``compute_ops``), so part files, counters and
simulated seconds do not depend on the kernel.

Kernel selection
----------------
``Cluster(kernel=...)`` / ``--kernel`` accept ``"auto"`` (default),
``"numpy"`` or ``"python"``; the ``REPRO_KERNEL`` environment variable
overrides either.  Resolution is deliberately forgiving: the numpy path
is an optimisation, never a requirement, so ``"auto"`` and even an
explicit ``"numpy"`` fall back to ``"python"`` when numpy cannot be
imported.  Only an unknown kernel name is an error.
"""

from __future__ import annotations

import os

from repro.errors import JobError

__all__ = ["KERNELS", "numpy_or_none", "resolve_kernel"]

#: Accepted values for ``Cluster.kernel`` / ``--kernel`` / ``REPRO_KERNEL``.
KERNELS = ("auto", "numpy", "python")

_NUMPY = None
_NUMPY_CHECKED = False


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it cannot be imported."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via fallback tests
            numpy = None
        _NUMPY = numpy
        _NUMPY_CHECKED = True
    return _NUMPY


def resolve_kernel(requested: str = "auto") -> str:
    """Resolve a kernel request to the concrete kernel to run.

    Returns ``"numpy"`` or ``"python"``.  ``REPRO_KERNEL`` (when set and
    non-empty) takes precedence over ``requested``.
    """
    env = os.environ.get("REPRO_KERNEL")
    if env:
        requested = env
    if requested not in KERNELS:
        raise JobError(
            f"unknown kernel {requested!r}; expected one of {', '.join(KERNELS)}"
        )
    if requested == "python":
        return "python"
    return "numpy" if numpy_or_none() is not None else "python"
