"""Batched grid geometry: split ranges, ownership, gaps and ``f2`` sets.

Columnar twins of the per-rectangle methods on
:class:`repro.grid.partitioning.GridPartitioning`.  The grid's boundary
lists are mirrored once into float64 arrays (cached on the grid
instance); ``searchsorted`` with the matching ``side`` reproduces
``bisect_left``/``bisect_right`` exactly, and every distance expression
is the scalar formula evaluated elementwise, so the results are
identical to the scalar methods value-for-value.

The scalar ``fourth_quadrant_within`` stops its row/col loops at the
first cell past the bound; within the quadrant both gaps grow
monotonically with row/col, so the early exit equals a plain filter —
which is what the broadcast mask computes.
"""

from __future__ import annotations

__all__ = [
    "cell_ids_of_starts",
    "col_ranges",
    "cols_of_x",
    "grid_edges",
    "min_gaps_to_other_cell",
    "overlap_cell_lists",
    "quadrant_cell_lists",
    "row_ranges",
    "rows_of_y",
]


def grid_edges(np, grid):
    """Float64 mirrors of the grid's boundary lists, cached on the grid.

    Returns ``(x_edges, y_edges, row_edges, col_edges)`` where
    ``row_edges[j]`` / ``col_edges[i]`` are the scalar ``_row_edge(j)``
    / ``_col_edge(i)`` values used by the ``f2`` distance tests.
    """
    cached = getattr(grid, "_kernel_edges", None)
    if cached is None:
        cached = (
            np.array(grid._x_edges, dtype=np.float64),
            np.array(grid._y_edges, dtype=np.float64),
            np.array([grid._row_edge(j) for j in range(grid.rows)], dtype=np.float64),
            np.array([grid._col_edge(i) for i in range(grid.cols)], dtype=np.float64),
        )
        grid._kernel_edges = cached
    return cached


def cols_of_x(np, grid, px):
    """``col_of_x`` for an array of x coordinates."""
    x_edges = grid_edges(np, grid)[0]
    c = np.searchsorted(x_edges, px, side="right") - 1
    # minimum(maximum(...)) is np.clip by definition, minus clip's
    # per-call dtype-limit construction — these run once per cell batch.
    return np.minimum(np.maximum(c, 0), grid.cols - 1)


def rows_of_y(np, grid, py):
    """``row_of_y`` for an array of y coordinates."""
    y_edges = grid_edges(np, grid)[1]
    p = np.searchsorted(y_edges, py, side="left")
    return np.minimum(np.maximum(grid.rows - p, 0), grid.rows - 1)


def cell_ids_of_starts(np, grid, batch):
    """``cell_id_of`` (start-point ownership) for a whole batch."""
    return rows_of_y(np, grid, batch.y) * grid.cols + cols_of_x(np, grid, batch.x)


def col_ranges(np, grid, batch):
    """``col_range`` for a whole batch: two int arrays ``(lo, hi)``."""
    x_edges = grid_edges(np, grid)[0]
    last = grid.cols - 1
    lo = np.minimum(np.maximum(np.searchsorted(x_edges, batch.x_min, side="left") - 1, 0), last)
    hi = np.minimum(np.maximum(np.searchsorted(x_edges, batch.x_max, side="right") - 1, 0), last)
    return lo, np.maximum(lo, hi)


def row_ranges(np, grid, batch):
    """``row_range`` for a whole batch: two int arrays ``(lo, hi)``."""
    y_edges = grid_edges(np, grid)[1]
    rows = grid.rows
    a_hi = np.minimum(np.maximum(np.searchsorted(y_edges, batch.y_max, side="right") - 1, 0), rows - 1)
    a_lo = np.minimum(np.maximum(np.searchsorted(y_edges, batch.y_min, side="left") - 1, 0), rows - 1)
    lo = rows - 1 - a_hi
    hi = rows - 1 - a_lo
    return lo, np.maximum(lo, hi)


def min_gaps_to_other_cell(np, grid, batch, cell):
    """``min_gap_to_other_cell(rect, cell)`` for a whole batch."""
    n = batch.n
    if grid.num_cells == 1:
        return np.full(n, np.inf)
    c_lo, c_hi = col_ranges(np, grid, batch)
    r_lo, r_hi = row_ranges(np, grid, batch)
    inside = (c_lo == c_hi) & (c_hi == cell.col) & (r_lo == r_hi) & (r_hi == cell.row)
    gap = None
    if cell.col > 0:
        gap = batch.x_min - cell.x_min
    if cell.col < grid.cols - 1:
        g = cell.x_max - batch.x_max
        gap = g if gap is None else np.minimum(gap, g)
    if cell.row > 0:
        g = cell.y_max - batch.y_max
        gap = g if gap is None else np.minimum(gap, g)
    if cell.row < grid.rows - 1:
        g = batch.y_min - cell.y_min
        gap = g if gap is None else np.minimum(gap, g)
    if gap is None:  # pragma: no cover - only a 1x1 grid has no sides
        gap = np.full(n, np.inf)
    return np.where(inside, gap, 0.0)


def overlap_cell_lists(np, grid, batch):
    """Per-record overlapped cells (the ``split`` targets), flattened.

    Columnar twin of ``split(rect, grid)``'s cell enumeration: for every
    record of ``batch``, the cells of ``row_range × col_range`` in the
    scalar row-major order.  Returns ``(cell_ids, counts)`` int64
    arrays — ``counts[k]`` cells per record ``k``, concatenated in
    record order, ready for ``MapContext.emit_batch``.
    """
    rows = grid.rows
    cols = grid.cols
    c_lo, c_hi = col_ranges(np, grid, batch)
    r_lo, r_hi = row_ranges(np, grid, batch)
    ar = np.arange(rows)
    ac = np.arange(cols)
    rmask = (ar >= r_lo[:, None]) & (ar <= r_hi[:, None])
    cmask = (ac >= c_lo[:, None]) & (ac <= c_hi[:, None])
    mask = rmask[:, :, None] & cmask[:, None, :]
    rec, row, col = np.nonzero(mask)
    counts = np.bincount(rec, minlength=batch.n)
    return row * cols + col, counts


def quadrant_cell_lists(np, grid, batch, d=None, metric="euclidean"):
    """Per-record ``f1``/``f2`` target cells, flattened.

    Computes ``fourth_quadrant(cell_of(rect))`` (when ``d`` is None,
    the ``f1`` set) or ``fourth_quadrant_within(rect, d, metric=...)``
    for every record of ``batch``.  Returns ``(cell_ids, counts)``
    Python lists: ``counts[k]`` cells per record ``k``, concatenated in
    record order with each record's cells in the scalar row-major order.
    """
    rows = grid.rows
    cols = grid.cols
    row_a = rows_of_y(np, grid, batch.y)
    col_a = cols_of_x(np, grid, batch.x)
    rmask = np.arange(rows) >= row_a[:, None]
    cmask = np.arange(cols) >= col_a[:, None]
    if d is None:
        mask = rmask[:, :, None] & cmask[:, None, :]
    else:
        row_edges, col_edges = grid_edges(np, grid)[2:]
        dy = np.maximum(0.0, batch.y_min[:, None] - row_edges)
        dx = np.maximum(0.0, col_edges - batch.x_max[:, None])
        rok = rmask & (dy <= d)
        if metric == "chebyshev":
            mask = rok[:, :, None] & (cmask & (dx <= d))[:, None, :]
        else:
            mask = (
                rok[:, :, None]
                & cmask[:, None, :]
                & (dx[:, None, :] * dx[:, None, :] + dy[:, :, None] * dy[:, :, None] <= d * d)
            )
    rec, row, col = np.nonzero(mask)
    counts = np.bincount(rec, minlength=batch.n)
    return (row * cols + col).tolist(), counts.tolist()
