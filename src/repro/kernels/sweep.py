"""Batched plane-sweep: the columnar twin of :func:`repro.joins.sweep.sweep_pairs`.

The scalar sweep merges the two x-sorted event lists and, at each event,
scans the opposite side's active list: a partner survives the scan iff
``partner.x_max >= event.x_min - d`` (the pruning threshold), and the
pair is emitted iff it also passes the exact y-window test.  This kernel
reproduces the same pair *multiset in the same order* without any
per-event Python loop:

* For a pair ``(i, j)`` the scan that can emit it is the one at the
  *later* of the two events, and — because pruning thresholds are
  non-decreasing along the sweep — the pair is emitted iff
  ``earlier.x_max >= fl(later.x_min - d)``.  ``fl(x_min - d)`` is
  computed elementwise over the sorted ``x_min`` arrays; IEEE rounding
  is monotone, so the shifted arrays stay sorted and both endpoints of
  each candidate range are *exact* ``searchsorted`` lookups (no slack,
  no repair pass).
* Candidates therefore form one contiguous index range per event, which
  is expanded with ``repeat``/``cumsum`` — output-sensitive, never
  ``O(n_l * n_r)``.
* The scalar emission order (by event position in the merged sequence,
  then by the partner's arrival position) is restored with one
  ``lexsort`` over the merged-sequence ranks.

The y-window test is the scalar expression verbatim:
``later.y_min - d <= earlier.y_max and earlier.y_min - d <= later.y_max``.
"""

from __future__ import annotations

from repro.errors import JoinError
from repro.kernels import numpy_or_none
from repro.kernels.batch import RectBatch

__all__ = ["sweep_pairs_batch"]


def _expand_ranges(np, lo, hi):
    """Expand per-source index ranges ``[lo[k], hi[k])`` into flat
    ``(source, target)`` index arrays, sources in order."""
    cnt = hi - lo
    np.maximum(cnt, 0, out=cnt)
    total = int(cnt.sum())
    if not total:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    src = np.repeat(np.arange(len(lo), dtype=np.int64), cnt)
    starts = np.cumsum(cnt) - cnt
    tgt = np.arange(total, dtype=np.int64) - np.repeat(starts - lo, cnt)
    return src, tgt


def sweep_pairs_batch(left, right, d: float = 0.0, np=None):
    """All ``(left_id, right_id)`` pairs within distance ``d``, in the
    exact order :func:`repro.joins.sweep.sweep_pairs` yields them.

    ``left`` and ``right`` are sequences of ``(rid, Rect)`` pairs.
    Returns a list.  Falls back to the scalar sweep when numpy is
    unavailable.
    """
    if np is None:
        np = numpy_or_none()
    if np is None:  # pragma: no cover - numpy is present in CI
        from repro.joins.sweep import sweep_pairs

        return list(sweep_pairs(left, right, d))
    if d < 0:
        raise JoinError(f"distance must be non-negative, got {d}")
    left = list(left)
    right = list(right)
    if not left or not right:
        return []

    lb = RectBatch.from_pairs(np, left)
    rb = RectBatch.from_pairs(np, right)
    lorder = np.argsort(lb.x_min, kind="stable")
    rorder = np.argsort(rb.x_min, kind="stable")
    lx_min = lb.x_min[lorder]
    lx_max = lb.x_max[lorder]
    ly_max = lb.y_max[lorder]
    rx_min = rb.x_min[rorder]
    rx_max = rb.x_max[rorder]
    ry_max = rb.y_max[rorder]
    # Event-side y-window low edge (``y_min - d``), precomputed
    # elementwise: the same fl() value the scalar code derives per event.
    ly_lo = lb.y_min[lorder] - d
    ry_lo = rb.y_min[rorder] - d
    # Pruning thresholds ``fl(x_min - d)``; monotone rounding keeps
    # these sorted, which is what makes the searchsorted bounds exact.
    lshift = lx_min - d
    rshift = rx_min - d

    nl = len(left)
    nr = len(right)
    # Rank of each event in the merged sequence (ties: left first, as in
    # the scalar merge's ``ls[i][1] <= rs[j][1]`` tie-break).
    seq_l = np.arange(nl, dtype=np.int64) + np.searchsorted(rx_min, lx_min, side="left")
    seq_r = np.arange(nr, dtype=np.int64) + np.searchsorted(lx_min, rx_min, side="right")

    # Group A: left i is the earlier event, the pair is emitted at right
    # event j.  j ranges over rights at-or-after i in the merge
    # (``rx_min[j] >= lx_min[i]``) whose threshold keeps i
    # (``rshift[j] <= lx_max[i]``).
    a_lo = np.searchsorted(rx_min, lx_min, side="left")
    a_hi = np.searchsorted(rshift, lx_max, side="right")
    li_a, rj_a = _expand_ranges(np, a_lo, a_hi)
    # Group B: right j is strictly earlier, the pair is emitted at left
    # event i (``lx_min[i] > rx_min[j]`` and ``lshift[i] <= rx_max[j]``).
    b_lo = np.searchsorted(lx_min, rx_min, side="right")
    b_hi = np.searchsorted(lshift, rx_max, side="right")
    rj_b, li_b = _expand_ranges(np, b_lo, b_hi)

    # Exact y-window (symmetric in the two groups).
    mask_a = (ry_lo[rj_a] <= ly_max[li_a]) & (ly_lo[li_a] <= ry_max[rj_a])
    mask_b = (ry_lo[rj_b] <= ly_max[li_b]) & (ly_lo[li_b] <= ry_max[rj_b])
    li_a, rj_a = li_a[mask_a], rj_a[mask_a]
    li_b, rj_b = li_b[mask_b], rj_b[mask_b]

    li = np.concatenate([li_a, li_b])
    rj = np.concatenate([rj_a, rj_b])
    event = np.concatenate([seq_r[rj_a], seq_l[li_b]])
    partner = np.concatenate([seq_l[li_a], seq_r[rj_b]])
    order = np.lexsort((partner, event))

    # Map emitted rows (not whole sides) back to the original ids.
    li_orig = lorder[li[order]].tolist()
    rj_orig = rorder[rj[order]].tolist()
    return [(left[i][0], right[j][0]) for i, j in zip(li_orig, rj_orig)]
