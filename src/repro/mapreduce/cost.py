"""Analytic cost model translating job volumes into simulated wall-clock.

The reproduction runs in a single process, so end-to-end times cannot be
measured the way the paper measures them on its 16-core Hadoop cluster.
Instead every job records the volumes Hadoop's own cost is driven by —
bytes read, records mapped, bytes shuffled, reduce-side records/compute,
bytes written — and this model converts them into seconds on a modelled
cluster.  The model deliberately contains the two effects the paper's
analysis (Section 6.4) attributes the naive methods' slowness to:

* a **shuffle term** proportional to the intermediate key-value volume
  (what kills *All-Replicate*), and
* per-job **startup plus DFS read/write terms**, paid once per chained
  job and proportional to intermediate result size (what kills
  *2-way Cascade*).

Task placement uses the standard makespan approximation for ``t`` tasks
on ``s`` slots: ``max(sum(t_i)/s, max(t_i))`` — perfect packing bounded
below by the longest task, which also models reducer skew (a hot cell
makes its reducer the critical path, exactly like a real straggler).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["CostModel", "TaskStats", "JobCostBreakdown"]


@dataclass(frozen=True, slots=True)
class TaskStats:
    """Work volumes of one map or reduce task.

    ``attempts`` is the task's attempt history (a tuple of
    :class:`repro.mapreduce.faults.TaskAttempt`) when the job ran under
    recovery dispatch — empty on the seed fast path.  It is telemetry
    only: the cost model charges the *winning* attempt's volumes here
    and the wasted attempts through the job-level fault-overhead term.
    """

    input_records: int = 0
    input_bytes: int = 0
    output_records: int = 0
    output_bytes: int = 0
    compute_ops: int = 0
    attempts: tuple = ()


@dataclass(frozen=True, slots=True)
class JobCostBreakdown:
    """Per-phase simulated seconds of one job.

    ``fault_overhead_s`` charges the recovery machinery's wasted work —
    re-launched attempts, speculative losers, retry backoff — and is
    deliberately **excluded** from :attr:`total_s`.  The determinism
    contract of :mod:`repro.mapreduce.faults` promises that an absorbed
    fault plan leaves the canonical simulated seconds byte-identical to
    the fault-free run; the overhead is reported separately (and folded
    in by :attr:`total_with_faults_s`) so chaos runs remain comparable
    with clean ones.

    ``spill_overhead_s`` is the same idea for memory governance: the
    local-disk round-trip of map-side spill files.  A run under a memory
    budget must keep the canonical simulated seconds identical to the
    unbounded run (the spill is a *local* implementation detail, not a
    change in the job's DFS/shuffle volumes), so spill I/O lands in its
    own non-canonical bucket.

    ``recovery_overhead_s`` charges worker failure domains: map tasks
    re-executed because their worker died after committing output,
    in-flight attempts lost with their worker, and the heartbeat
    latency of detecting a silent death.  Like the other two buckets it
    never touches the canonical total — an absorbed worker loss leaves
    the fault-free simulated seconds byte-identical.

    ``network_overhead_s`` charges the durable-storage plane's wire
    traffic: remote reads by non-local map tasks (``LOCALITY_MISSES``)
    and block copies moved by re-replication after a worker death.
    Locality and durability are thereby *measurable* without breaking
    the determinism contract — a replicated run's canonical seconds
    stay byte-identical to the unreplicated run's.
    """

    startup_s: float
    map_s: float
    shuffle_s: float
    reduce_s: float
    fault_overhead_s: float = 0.0
    spill_overhead_s: float = 0.0
    recovery_overhead_s: float = 0.0
    network_overhead_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.startup_s + self.map_s + self.shuffle_s + self.reduce_s

    @property
    def total_with_faults_s(self) -> float:
        """End-to-end seconds including the non-canonical overhead terms."""
        return (
            self.total_s
            + self.fault_overhead_s
            + self.spill_overhead_s
            + self.recovery_overhead_s
            + self.network_overhead_s
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for metrics snapshots and dashboards."""
        return {
            "startup_s": self.startup_s,
            "map_s": self.map_s,
            "shuffle_s": self.shuffle_s,
            "reduce_s": self.reduce_s,
            "fault_overhead_s": self.fault_overhead_s,
            "spill_overhead_s": self.spill_overhead_s,
            "recovery_overhead_s": self.recovery_overhead_s,
            "network_overhead_s": self.network_overhead_s,
            "total_s": self.total_s,
        }


@dataclass(frozen=True)
class CostModel:
    """Rates of the modelled cluster.

    Defaults approximate the paper's testbed era (2012 Hadoop on SATA
    disks and 1GbE): tens of MB/s of per-task disk bandwidth, tens of
    MB/s of aggregate shuffle bandwidth, and a multi-second job startup.
    Absolute values only set the time scale; every conclusion checked in
    EXPERIMENTS.md is about ratios and orderings, which are insensitive
    to moderate changes of these rates (see the sensitivity test in
    ``tests/mapreduce/test_cost.py``).
    """

    job_startup_s: float = 8.0
    task_startup_s: float = 0.05
    dfs_read_bytes_per_s: float = 50e6
    dfs_write_bytes_per_s: float = 30e6
    map_records_per_s: float = 150_000.0
    shuffle_bytes_per_s: float = 25e6
    shuffle_record_overhead_s: float = 1e-6
    reduce_records_per_s: float = 200_000.0
    #: cheap geometric comparisons (rectangle intersection tests); fast
    #: relative to I/O — the paper's premise is that communication, not
    #: comparison work, decides run time
    compute_ops_per_s: float = 20_000_000.0
    map_slots: int = 16
    reduce_slots: int = 16
    #: local scratch-disk bandwidth for map-side spill files — spills
    #: never cross the network or the replicated DFS write path, so
    #: they get the raw single-disk rate (charged once for the write
    #: and once for the reduce-side read-back).
    spill_bytes_per_s: float = 60e6
    #: HDFS block replication factor — every byte written to the DFS is
    #: physically written this many times (Hadoop's dfs.replication=3).
    dfs_replication: float = 3.0
    #: point-to-point network bandwidth for storage-plane traffic
    #: (remote map reads, re-replication copies) — 1GbE of the paper's
    #: era, ~100 MB/s on the wire.
    network_bytes_per_s: float = 100e6

    @classmethod
    def scaled(cls, record_scale: float, **overrides) -> "CostModel":
        """A model where each record stands for ``record_scale`` records.

        The reproduction joins thousands of rectangles where the paper
        joins millions; dividing the throughput rates by the workload
        down-scaling factor makes one simulated record carry the cost of
        ``record_scale`` paper-scale records, so simulated durations land
        in the paper's regime while fixed costs (job/task startup) stay
        fixed.  ``overrides`` replace individual rates afterwards.
        """
        if record_scale <= 0:
            raise ValueError(f"record_scale must be positive, got {record_scale}")
        base = cls()
        scaled_fields = dict(
            dfs_read_bytes_per_s=base.dfs_read_bytes_per_s / record_scale,
            dfs_write_bytes_per_s=base.dfs_write_bytes_per_s / record_scale,
            map_records_per_s=base.map_records_per_s / record_scale,
            shuffle_bytes_per_s=base.shuffle_bytes_per_s / record_scale,
            shuffle_record_overhead_s=base.shuffle_record_overhead_s * record_scale,
            reduce_records_per_s=base.reduce_records_per_s / record_scale,
            compute_ops_per_s=base.compute_ops_per_s / record_scale,
        )
        scaled_fields.update(overrides)
        return cls(**scaled_fields)

    # ------------------------------------------------------------------
    def map_task_seconds(self, task: TaskStats) -> float:
        """Time of one map task: startup + read + per-record map work."""
        return (
            self.task_startup_s
            + task.input_bytes / self.dfs_read_bytes_per_s
            + task.input_records / self.map_records_per_s
            + task.compute_ops / self.compute_ops_per_s
        )

    def reduce_task_seconds(self, task: TaskStats) -> float:
        """Time of one reduce task: startup + reduce work + DFS write.

        ``task.input_bytes`` (the reduce task's share of the shuffled
        volume) is charged once, cluster-wide, by
        :meth:`shuffle_seconds`; charging it here again would
        double-count the shuffle, so the per-task term uses records and
        compute only.
        """
        return (
            self.task_startup_s
            + task.input_records / self.reduce_records_per_s
            + task.compute_ops / self.compute_ops_per_s
            + task.output_bytes * self.dfs_replication / self.dfs_write_bytes_per_s
        )

    def shuffle_seconds(self, records: int, nbytes: int) -> float:
        """Cluster-wide shuffle/sort time for the intermediate volume."""
        return (
            nbytes / self.shuffle_bytes_per_s
            + records * self.shuffle_record_overhead_s
        )

    def fault_overhead_seconds(self, wasted_attempts: int, backoff_s: float) -> float:
        """Simulated cost of recovery: wasted launches plus retry backoff.

        Each wasted attempt (a failed try, a discarded speculative
        loser, a failed part-file commit) burned at least its task
        startup; ``backoff_s`` is the already-simulated exponential
        backoff charged by the retry policy.  Reported on
        :attr:`JobCostBreakdown.fault_overhead_s`, outside the canonical
        total — see that field's docstring.
        """
        return wasted_attempts * self.task_startup_s + backoff_s

    def recovery_overhead_seconds(
        self,
        reexecution_s: float,
        detection_s: float,
        lost_attempts: int,
    ) -> float:
        """Simulated cost of worker loss: re-run maps, detection, waste.

        ``reexecution_s`` is the summed :meth:`map_task_seconds` of map
        tasks whose committed output died with its worker and had to be
        recomputed; ``detection_s`` is the heartbeat latency already
        simulated for silently-dead workers; each in-flight attempt
        that vanished with its worker burned at least a task startup.
        Reported on :attr:`JobCostBreakdown.recovery_overhead_s`,
        outside the canonical total — see that field's docstring.
        """
        return reexecution_s + detection_s + lost_attempts * self.task_startup_s

    def network_transfer_seconds(self, nbytes: int) -> float:
        """Simulated wire time of storage-plane traffic.

        Charged for the bytes a non-local map task pulls across the
        network (its split's blocks live on other workers) and for the
        block copies re-replication moves to heal a worker death.
        Reported on :attr:`JobCostBreakdown.network_overhead_s`,
        outside the canonical total — see that field's docstring.
        """
        return nbytes / self.network_bytes_per_s

    def spill_overhead_seconds(self, spill_bytes: int) -> float:
        """Simulated cost of memory-budget spills: write + read-back.

        Each spilled byte hits local scratch disk twice (the map side
        writes the sorted run, the reduce-side external merge reads it
        back).  Reported on :attr:`JobCostBreakdown.spill_overhead_s`,
        outside the canonical total — see that field's docstring.
        """
        return 2.0 * spill_bytes / self.spill_bytes_per_s

    @staticmethod
    def makespan(task_seconds: Sequence[float], slots: int) -> float:
        """Makespan of tasks greedily packed onto ``slots`` parallel slots."""
        if not task_seconds:
            return 0.0
        return max(sum(task_seconds) / slots, max(task_seconds))

    # ------------------------------------------------------------------
    def job_seconds(
        self,
        map_tasks: Sequence[TaskStats],
        reduce_tasks: Sequence[TaskStats],
        shuffle_records: int,
        shuffle_bytes: int,
    ) -> JobCostBreakdown:
        """Simulated end-to-end seconds of one job."""
        map_s = self.makespan(
            [self.map_task_seconds(t) for t in map_tasks], self.map_slots
        )
        reduce_s = self.makespan(
            [self.reduce_task_seconds(t) for t in reduce_tasks], self.reduce_slots
        )
        shuffle_s = self.shuffle_seconds(shuffle_records, shuffle_bytes)
        return JobCostBreakdown(
            startup_s=self.job_startup_s,
            map_s=map_s,
            shuffle_s=shuffle_s,
            reduce_s=reduce_s,
        )
