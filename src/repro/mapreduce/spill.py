"""Spill-run format and the reduce-side external merge.

Memory governance splits a map task's shuffle buffer into *runs*: when
the buffered bytes (measured by the job's :class:`ShuffleCodec` sizers,
the same accounting the canonical ``MAP_OUTPUT_BYTES`` counter uses)
exceed the task's budget, the buffered slice of every bucket is sorted
and written to the DFS as a side file; the final unspilled remainder
travels in the task result as before.

The determinism contract survives because of one invariant: the
unbounded reduce path orders a bucket by the stable sort
``(sort_key(key), global emission index)``, and within one map task the
bucket-local emission index ``seq`` is a monotone relabelling of the
global one.  Every run — spilled or resident — is therefore merged on
the key

    ``(sort_key(key), map_task_id, seq)``

which is unique per record (so heap comparisons never reach the key or
value objects) and reproduces the stable sort exactly.  Byte-for-byte
part files, identical counters, identical canonical simulated seconds.

Spill files serialize one record per line as
``base64(pickle((seq, key, value)))`` — pickling because shuffle records
are arbitrary Python objects on the typed path, base64 because DFS lines
must stay newline-free text.
"""

from __future__ import annotations

import base64
import heapq
import pickle
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SpillRun",
    "SpillStore",
    "encode_spill_record",
    "decode_spill_record",
    "merge_runs",
    "sort_run",
    "spill_dir",
]


def spill_dir(job_name: str) -> str:
    """DFS directory holding a job's spill runs."""
    return f"_spill/{job_name}"


def encode_spill_record(seq: int, key: Any, value: Any) -> str:
    """One spill-file line: newline-free text for a ``(seq, key, value)``."""
    blob = pickle.dumps((seq, key, value), protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(blob).decode("ascii")


def decode_spill_record(line: str) -> tuple[int, Any, Any]:
    """Inverse of :func:`encode_spill_record`."""
    return pickle.loads(base64.b64decode(line.encode("ascii")))


@dataclass(slots=True)
class SpillRun:
    """One sorted run of a reducer's input.

    Either a spilled side file (``path`` set, ``count`` records, already
    sorted when written) or the map task's resident remainder
    (``records`` set — raw ``(key, value)`` pairs in emission order
    whose bucket-local sequence numbers start at ``base``).
    """

    task: int
    path: str | None = None
    count: int = 0
    records: list = field(default_factory=list)
    base: int = 0


@dataclass(slots=True)
class SpillStore:
    """A read-only snapshot of one job's spill side files.

    The engine writes every run to the DFS (durability — the files are
    inspectable until the job commits) and hands reduce tasks this
    snapshot instead: it exposes the one method the merge needs,
    :meth:`read_side_file`, and pickles at the size of the spilled data
    alone, so process-pool workers never serialize the whole DFS.
    """

    files: dict[str, list[str]] = field(default_factory=dict)

    def read_side_file(self, path: str) -> list[str]:
        return self.files[path]


def _iter_run(run: SpillRun, dfs, sort_key):
    """Yield ``(skey, task, seq, key, value)`` in ascending merge order."""
    if run.path is not None:
        for line in dfs.read_side_file(run.path):
            seq, key, value = decode_spill_record(line)
            yield (sort_key(key), run.task, seq, key, value)
    else:
        # The resident remainder is in emission order; decorate-sort it
        # exactly like the unbounded path's stable sort.
        yield from sorted(
            (sort_key(key), run.task, run.base + i, key, value)
            for i, (key, value) in enumerate(run.records)
        )


def merge_runs(runs: list[SpillRun], dfs, sort_key) -> list[tuple[Any, Any]]:
    """K-way heap merge of sorted runs back into stable-sort order.

    Returns ``(key, value)`` pairs ordered exactly as
    ``_sorted_by_key`` would order the concatenated unbounded buckets —
    see the module docstring for why the merge key reproduces it.
    """
    merged = heapq.merge(*(_iter_run(run, dfs, sort_key) for run in runs))
    return [(key, value) for (__, __, __, key, value) in merged]


def sort_run(records: list, base: int, sort_key) -> list[tuple[int, Any, Any]]:
    """Sort one buffered bucket slice for spilling.

    ``records`` are ``(key, value)`` pairs in emission order whose
    bucket-local sequence numbers start at ``base``; the result is
    ``(seq, key, value)`` in ``(sort_key(key), seq)`` order, ready for
    :func:`encode_spill_record`.
    """
    decorated = sorted(
        (sort_key(key), base + i) for i, (key, __) in enumerate(records)
    )
    return [
        (seq, records[seq - base][0], records[seq - base][1])
        for __, seq in decorated
    ]
