"""Chained map-reduce jobs (a "round" of jobs in the paper's wording).

Controlled-Replicate is "a round of two map-reduce jobs" and the 2-way
Cascade is a chain of per-join jobs; :class:`Workflow` runs such chains
sequentially with a barrier between jobs (job N+1 only reads what job N
wrote to the DFS) and aggregates counters and simulated time.

The workflow also polices the typed-record handoff: when job N declares
an ``output_codec``, a later job reading N's output directory must
declare the same codec for that path (or none, falling back to raw
lines) — a *different* codec would silently decode one format's lines
through another format's parser, so it is rejected up front.

Checkpoint/resume (the fault-tolerance layer's chain-level recovery):
with a ``checkpoint_dir`` on the cluster, the workflow persists a JSONL
manifest — one record per *completed* job carrying its name, output
path, codec, counters, cost breakdown, task stats and an output
fingerprint (``(part file, size)`` pairs) — rewritten through the DFS
after every job.  A resumed workflow (``cluster.resume``, or
:meth:`Workflow.resume`) restores any job whose manifest record still
matches its durable output instead of re-executing it: job 1 of a
Controlled-Replicate round survives a crash in job 2, exactly as a
re-submitted Hadoop chain reuses intermediate HDFS directories.
Restored results carry the original counters and simulated seconds
(JSON floats round-trip exactly), so a resumed chain's totals match an
uninterrupted run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.data.io import RecordCodec
from repro.errors import DFSError, JobError
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.cost import JobCostBreakdown, TaskStats
from repro.mapreduce.engine import Cluster, JobResult
from repro.mapreduce.job import MapReduceJob

__all__ = ["Workflow", "WorkflowResult", "MANIFEST_FILE"]

#: manifest file name under the cluster's ``checkpoint_dir``
MANIFEST_FILE = "workflow-manifest.jsonl"


def _stats_dict(stats: TaskStats) -> dict[str, int]:
    """JSON form of one task's volumes (attempt telemetry is not
    persisted — a restored job reports the work, not the chaos)."""
    return {
        "input_records": stats.input_records,
        "input_bytes": stats.input_bytes,
        "output_records": stats.output_records,
        "output_bytes": stats.output_bytes,
        "compute_ops": stats.compute_ops,
    }


@dataclass
class WorkflowResult:
    """Aggregated outcome of a job chain."""

    job_results: list[JobResult] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Sum of the chained jobs' simulated durations (sequential barrier)."""
        return sum(r.simulated_seconds for r in self.job_results)

    @property
    def shuffled_records(self) -> int:
        """Total intermediate key-value pairs across all jobs."""
        return sum(r.shuffled_records for r in self.job_results)

    @property
    def wall_clock_seconds(self) -> float:
        """Measured host-machine duration of the chained jobs."""
        return sum(r.wall_clock_seconds for r in self.job_results)

    @property
    def counters(self) -> Counters:
        """Merged counters of every job."""
        merged = Counters()
        for r in self.job_results:
            merged.merge(r.counters)
        return merged

    @property
    def final_output_path(self) -> str:
        """Output directory of the last job in the chain."""
        if not self.job_results:
            raise ValueError("workflow ran no jobs")
        return self.job_results[-1].output_path

    def job(self, name: str) -> JobResult:
        """Look up a job result by name."""
        for r in self.job_results:
            if r.job_name == name:
                return r
        raise KeyError(f"no job named {name!r} in workflow")


class Workflow:
    """Run jobs sequentially on one cluster, collecting their results."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.result = WorkflowResult()
        #: output path -> output codec of jobs run so far (codec handoff)
        self._output_codecs: dict[str, RecordCodec | None] = {}
        #: manifest records of jobs completed *this* run, rewritten to
        #: the checkpoint file after each job
        self._manifest_records: list[dict] = []
        #: job name -> manifest record loaded from a previous run
        self._completed: dict[str, dict] = {}
        self._resuming = False
        if cluster.resume and cluster.checkpoint_dir is not None:
            self._load_manifest()

    # ------------------------------------------------------------------
    # Checkpoint manifest
    # ------------------------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return f"{self.cluster.checkpoint_dir}/{MANIFEST_FILE}"

    def _load_manifest(self) -> None:
        """Load a previous run's completion records (if any) for resume."""
        self._resuming = True
        dfs = self.cluster.dfs
        if not dfs.exists(self._manifest_path):
            return
        for lineno, line in enumerate(dfs.read_file(self._manifest_path)):
            try:
                record = json.loads(line)
                name = record["name"]
            except (ValueError, TypeError, KeyError) as exc:
                raise JobError(
                    f"corrupt workflow manifest {self._manifest_path!r} "
                    f"at line {lineno}: {exc}"
                ) from exc
            self._completed[name] = record

    def _checkpoint(self, job: MapReduceJob, result: JobResult, record=None) -> None:
        """Persist one completed job; the manifest is rewritten whole.

        Called after every job (executed or restored), so the manifest
        always fingerprints exactly the chain prefix completed so far.
        """
        if self.cluster.checkpoint_dir is None:
            return
        if record is None:
            record = {
                "name": job.name,
                "output_path": job.output_path,
                "codec": job.output_codec.name if job.output_codec else None,
                "counters": result.counters.as_dict(),
                "cost": result.cost.as_dict(),
                "output_records": result.output_records,
                "map_tasks": [_stats_dict(t) for t in result.map_tasks],
                "reduce_tasks": [_stats_dict(t) for t in result.reduce_tasks],
                "parts": self.cluster.dfs.dir_manifest(job.output_path),
            }
        self._manifest_records.append(record)
        self.cluster.dfs.write_file(
            self._manifest_path,
            [
                json.dumps(r, separators=(",", ":"), sort_keys=True)
                for r in self._manifest_records
            ],
        )
        led = self.cluster.ledger
        if led.enabled:
            # Checkpoint events carry an explicit job name: they fire
            # outside the job_start/job_commit bracket, so the ledger
            # reader cannot infer the job from position.
            led.event(
                "checkpoint_write",
                job=record["name"],
                path=self._manifest_path,
                jobs_completed=len(self._manifest_records),
            )

    def _try_restore(self, job: MapReduceJob) -> JobResult | None:
        """Rebuild a job's result from its checkpoint, or ``None``.

        A record only restores when it still describes this job (same
        output path and codec) *and* the durable output matches the
        checkpointed fingerprint file-for-file and byte-for-byte —
        anything else re-executes the job.
        """
        record = self._completed.get(job.name)
        if record is None:
            return None
        codec_name = job.output_codec.name if job.output_codec else None
        if record.get("output_path") != job.output_path:
            return None
        if record.get("codec") != codec_name:
            return None
        parts = [(f, size) for f, size in record.get("parts", [])]
        if not parts:
            return None  # every job writes >= 1 part; no fingerprint, no trust
        try:
            if self.cluster.dfs.dir_manifest(job.output_path) != parts:
                return None
        except DFSError:
            return None
        counters = Counters()
        for group, names in record["counters"].items():
            for name, value in names.items():
                counters.add(group, name, value)
        cost = record["cost"]
        return JobResult(
            job_name=job.name,
            output_path=job.output_path,
            counters=counters,
            map_tasks=[TaskStats(**t) for t in record["map_tasks"]],
            reduce_tasks=[TaskStats(**t) for t in record["reduce_tasks"]],
            cost=JobCostBreakdown(
                startup_s=cost["startup_s"],
                map_s=cost["map_s"],
                shuffle_s=cost["shuffle_s"],
                reduce_s=cost["reduce_s"],
                fault_overhead_s=cost.get("fault_overhead_s", 0.0),
                spill_overhead_s=cost.get("spill_overhead_s", 0.0),
                recovery_overhead_s=cost.get("recovery_overhead_s", 0.0),
            ),
            output_records=record["output_records"],
            resumed=True,
        )

    def _check_codec_handoff(self, job: MapReduceJob) -> None:
        for path in job.input_paths:
            if path not in self._output_codecs:
                continue
            produced = self._output_codecs[path]
            consumed = job.input_codec_for(path)
            if consumed is None or produced is None:
                continue  # raw-line reads are always valid
            if consumed.name != produced.name:
                raise JobError(
                    f"job {job.name!r} reads {path!r} with codec "
                    f"{consumed.name!r} but the upstream job wrote it "
                    f"with codec {produced.name!r}"
                )

    def run(self, job: MapReduceJob) -> JobResult:
        """Run one job and record its result.

        When the cluster carries a live trace recorder, each job also
        gets a chain-level span on the ``workflow`` track whose args are
        the job's counter deltas (its own counters *are* the deltas —
        every job runs against a fresh :class:`Counters`) plus the
        cumulative position in the chain, so a Perfetto timeline shows
        where each chained job's volume came from.
        """
        self._check_codec_handoff(job)
        rec = self.cluster.recorder
        if self._resuming:
            restored = self._try_restore(job)
            if restored is not None:
                led = self.cluster.ledger
                if led.enabled:
                    led.event(
                        "checkpoint_restore",
                        job=job.name,
                        simulated_s=restored.simulated_seconds,
                    )
                if rec.enabled:
                    rec.instant(
                        f"resume:{job.name}",
                        cat="workflow-job",
                        track="workflow",
                        args={
                            "chain_index": len(self.result.job_results),
                            "simulated_s": restored.simulated_seconds,
                        },
                    )
                self._output_codecs[job.output_path] = job.output_codec
                self.result.job_results.append(restored)
                self._checkpoint(job, restored, record=self._completed[job.name])
                return restored
            # Not restorable: any partial output of the crashed attempt
            # is stale — drop it so the re-run starts clean (the join
            # algorithms skip their own delete-preambles under resume).
            if self.cluster.dfs.exists(job.output_path):
                self.cluster.dfs.delete(job.output_path)
        with rec.span(job.name, cat="workflow-job", track="workflow") as span:
            job_result = self.cluster.run_job(job)
            span.set("chain_index", len(self.result.job_results))
            span.set("simulated_s", job_result.simulated_seconds)
            span.set(
                "cumulative_simulated_s",
                self.result.simulated_seconds + job_result.simulated_seconds,
            )
            eng = job_result.counters.engine
            span.set("map_output_records", eng(C.MAP_OUTPUT_RECORDS))
            span.set("reduce_input_records", eng(C.REDUCE_INPUT_RECORDS))
            span.set("reduce_output_records", eng(C.REDUCE_OUTPUT_RECORDS))
            span.set("dfs_bytes_read", eng(C.DFS_BYTES_READ))
            span.set("dfs_bytes_written", eng(C.DFS_BYTES_WRITTEN))
        self._output_codecs[job.output_path] = job.output_codec
        self.result.job_results.append(job_result)
        self._checkpoint(job, job_result)
        return job_result

    def run_all(self, jobs: list[MapReduceJob]) -> WorkflowResult:
        """Run a pre-built chain in order."""
        for job in jobs:
            self.run(job)
        return self.result

    def resume(self, jobs: list[MapReduceJob]) -> WorkflowResult:
        """Re-run a chain, skipping jobs checkpointed as complete.

        Explicit-resume form of ``cluster.resume``: loads the manifest
        (when not already loaded) and runs the chain — every job whose
        record still matches its durable output is restored, everything
        else (the failed suffix) executes normally.
        """
        if self.cluster.checkpoint_dir is None:
            raise JobError("Workflow.resume() needs a cluster checkpoint_dir")
        if not self._resuming:
            self._load_manifest()
        return self.run_all(jobs)
