"""Chained map-reduce jobs (a "round" of jobs in the paper's wording).

Controlled-Replicate is "a round of two map-reduce jobs" and the 2-way
Cascade is a chain of per-join jobs; :class:`Workflow` runs such chains
sequentially with a barrier between jobs (job N+1 only reads what job N
wrote to the DFS) and aggregates counters and simulated time.

The workflow also polices the typed-record handoff: when job N declares
an ``output_codec``, a later job reading N's output directory must
declare the same codec for that path (or none, falling back to raw
lines) — a *different* codec would silently decode one format's lines
through another format's parser, so it is rejected up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.io import RecordCodec
from repro.errors import JobError
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.engine import Cluster, JobResult
from repro.mapreduce.job import MapReduceJob

__all__ = ["Workflow", "WorkflowResult"]


@dataclass
class WorkflowResult:
    """Aggregated outcome of a job chain."""

    job_results: list[JobResult] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Sum of the chained jobs' simulated durations (sequential barrier)."""
        return sum(r.simulated_seconds for r in self.job_results)

    @property
    def shuffled_records(self) -> int:
        """Total intermediate key-value pairs across all jobs."""
        return sum(r.shuffled_records for r in self.job_results)

    @property
    def wall_clock_seconds(self) -> float:
        """Measured host-machine duration of the chained jobs."""
        return sum(r.wall_clock_seconds for r in self.job_results)

    @property
    def counters(self) -> Counters:
        """Merged counters of every job."""
        merged = Counters()
        for r in self.job_results:
            merged.merge(r.counters)
        return merged

    @property
    def final_output_path(self) -> str:
        """Output directory of the last job in the chain."""
        if not self.job_results:
            raise ValueError("workflow ran no jobs")
        return self.job_results[-1].output_path

    def job(self, name: str) -> JobResult:
        """Look up a job result by name."""
        for r in self.job_results:
            if r.job_name == name:
                return r
        raise KeyError(f"no job named {name!r} in workflow")


class Workflow:
    """Run jobs sequentially on one cluster, collecting their results."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.result = WorkflowResult()
        #: output path -> output codec of jobs run so far (codec handoff)
        self._output_codecs: dict[str, RecordCodec | None] = {}

    def _check_codec_handoff(self, job: MapReduceJob) -> None:
        for path in job.input_paths:
            if path not in self._output_codecs:
                continue
            produced = self._output_codecs[path]
            consumed = job.input_codec_for(path)
            if consumed is None or produced is None:
                continue  # raw-line reads are always valid
            if consumed.name != produced.name:
                raise JobError(
                    f"job {job.name!r} reads {path!r} with codec "
                    f"{consumed.name!r} but the upstream job wrote it "
                    f"with codec {produced.name!r}"
                )

    def run(self, job: MapReduceJob) -> JobResult:
        """Run one job and record its result.

        When the cluster carries a live trace recorder, each job also
        gets a chain-level span on the ``workflow`` track whose args are
        the job's counter deltas (its own counters *are* the deltas —
        every job runs against a fresh :class:`Counters`) plus the
        cumulative position in the chain, so a Perfetto timeline shows
        where each chained job's volume came from.
        """
        self._check_codec_handoff(job)
        rec = self.cluster.recorder
        with rec.span(job.name, cat="workflow-job", track="workflow") as span:
            job_result = self.cluster.run_job(job)
            span.set("chain_index", len(self.result.job_results))
            span.set("simulated_s", job_result.simulated_seconds)
            span.set(
                "cumulative_simulated_s",
                self.result.simulated_seconds + job_result.simulated_seconds,
            )
            eng = job_result.counters.engine
            span.set("map_output_records", eng(C.MAP_OUTPUT_RECORDS))
            span.set("reduce_input_records", eng(C.REDUCE_INPUT_RECORDS))
            span.set("reduce_output_records", eng(C.REDUCE_OUTPUT_RECORDS))
            span.set("dfs_bytes_read", eng(C.DFS_BYTES_READ))
            span.set("dfs_bytes_written", eng(C.DFS_BYTES_WRITTEN))
        self._output_codecs[job.output_path] = job.output_codec
        self.result.job_results.append(job_result)
        return job_result

    def run_all(self, jobs: list[MapReduceJob]) -> WorkflowResult:
        """Run a pre-built chain in order."""
        for job in jobs:
            self.run(job)
        return self.result
