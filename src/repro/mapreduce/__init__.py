"""The map-reduce substrate: DFS, jobs, engine, cost model, workflows."""

from repro.mapreduce.cost import CostModel, JobCostBreakdown, TaskStats
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.localfs import LocalFSDFS
from repro.mapreduce.engine import Cluster, JobResult
from repro.mapreduce.executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    TaskExecutor,
    ThreadExecutor,
    default_workers,
    make_executor,
)
from repro.mapreduce.job import (
    MapContext,
    MapReduceJob,
    ReduceContext,
    estimate_size,
    hash_partitioner,
    identity_partitioner,
)
from repro.mapreduce.workflow import Workflow, WorkflowResult

__all__ = [
    "C",
    "Counters",
    "InMemoryDFS",
    "LocalFSDFS",
    "CostModel",
    "TaskStats",
    "JobCostBreakdown",
    "MapReduceJob",
    "MapContext",
    "ReduceContext",
    "estimate_size",
    "identity_partitioner",
    "hash_partitioner",
    "Cluster",
    "JobResult",
    "EXECUTORS",
    "TaskExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "default_workers",
    "Workflow",
    "WorkflowResult",
]
