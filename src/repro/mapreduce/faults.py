"""Deterministic fault injection and task recovery (the Hadoop substrate).

The paper runs on Hadoop 0.20.2, whose defining runtime property the
plain engine lacks: *tasks fail and the job survives*.  A TaskTracker
that dies loses its attempts; the JobTracker re-schedules them up to
``mapred.map.max.attempts``; stragglers get speculative backup attempts;
and a chain of jobs resumes from durable intermediate output.  This
module supplies that machinery for the simulated cluster, built around
one headline guarantee:

    **Determinism contract.**  With any :class:`FaultPlan` the cluster
    absorbs (every task succeeds within ``max_attempts``), part files,
    counters (modulo the ``task_*``/``speculative_*`` telemetry) and
    simulated seconds are byte-identical to the fault-free run, on every
    executor.

The contract holds because task workers are pure functions of
``(payload, index)``: a retried or speculative attempt recomputes the
identical result, failed attempts have their counter shards discarded
wholesale, and retries re-use the already-materialized split rather
than re-reading the DFS (the simulated overhead term models the wasted
work instead — see :meth:`repro.mapreduce.cost.CostModel.fault_overhead_seconds`).

Pieces:

:class:`FaultPlan`
    A seeded, declarative chaos schedule — ``fail task (phase, index,
    attempt)``, ``delay task by X``, ``corrupt worker result``, ``fail
    DFS write`` — that wraps task workers, so every recovery path is
    reproducible byte-for-byte across serial/thread/process executors.
:class:`RetryPolicy`
    Bounded attempts with exponential *simulated* backoff, plus the
    speculative-execution knobs (completion threshold, slowdown factor).
:func:`run_phase_with_recovery`
    The dispatch wrapper the engine calls instead of
    ``executor.run_phase``: capture failures in envelopes, re-dispatch
    failed tasks in deterministic rounds, optionally race backup
    attempts against stragglers, and raise
    :class:`~repro.errors.TaskRetryExhausted` (with the full attempt
    log) only after a task burned every allowed attempt.

Injection semantics mirror what real clusters detect:

* ``fail`` — the attempt dies before producing a result (a lost
  TaskTracker);
* ``delay`` — the attempt sleeps first (a straggling node; this is what
  speculative execution races against);
* ``corrupt`` — the attempt completes but its result fails the
  (simulated) checksum, so the engine discards it and retries — Hadoop's
  shuffle/IFile checksum path;
* a ``fail`` spec on the ``write`` phase makes a part-file commit raise
  before any byte lands on the DFS (a failed output commit), retried by
  the engine's write stage;
* ``oom`` — the attempt dies with a memory-exhaustion diagnosis (a
  container killed by the memory cgroup); recovery-wise identical to
  ``fail`` but distinguishable in attempt logs and chaos assertions;
* ``hang`` — the attempt wedges for ``delay_s`` wall seconds and then
  dies.  Under a :attr:`RetryPolicy.task_timeout_s` watchdog the hung
  attempt is reclaimed *before* it unwedges: abandoned, logged with
  outcome ``"timeout"``, and re-dispatched through the normal retry
  path (Hadoop's ``mapred.task.timeout``);
* ``poison-record`` — map task ``index`` dies on split record
  ``record`` (a :class:`~repro.errors.BadRecordError`).  With
  :attr:`RetryPolicy.max_skipped_records` > 0 the retry *quarantines*
  exactly that record and skips it (Hadoop's skipping mode,
  ``mapred.skip.mode``): the skip is logged with outcome ``"skipped"``,
  does not burn a failure attempt, and the engine writes the
  quarantined records to a DFS side file and counts them under
  ``SKIPPED_RECORDS``;
* ``fail-worker`` — a *scheduler-level* fault: a named virtual worker
  (see :mod:`repro.mapreduce.workers`) dies, losing its in-flight
  attempts (outcome ``"worker_lost"``, never charged) **and** its
  committed map outputs, which Hadoop-style upstream re-execution
  recomputes; a ``silent`` death has no failure report and is caught
  by the heartbeat sweep instead;
* ``join-worker`` — a fresh worker joins the pool mid-job (elastic
  scale-up).  Both worker kinds are one-shot and coordinated by
  :class:`WorkerManager`; the attempt body ignores them.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any

from repro.errors import (
    BadRecordError,
    FaultPlanError,
    InjectedFault,
    JobError,
    TaskRetryExhausted,
)
from repro.mapreduce.executor import TaskExecutor, TaskWorker
from repro.mapreduce.workers import WorkerPool

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "TaskAttempt",
    "PhaseReport",
    "WorkerManager",
    "WorkerReport",
    "run_phase_with_recovery",
]

#: scheduler-level kinds targeting a *worker* rather than an attempt —
#: ``fail-worker`` kills a named (or the triggering attempt's) worker,
#: losing its in-flight attempts and committed map outputs;
#: ``join-worker`` adds a fresh worker to the pool mid-job.
WORKER_KINDS = ("fail-worker", "join-worker")
#: storage-plane kinds targeting a *block replica* rather than an
#: attempt — ``corrupt-block`` flips a replica's on-disk bytes (caught
#: by the checksum at the next read, which fails over), ``lose-replica``
#: deletes one outright.  Enacted at job start by the block plane; they
#: require ``Cluster(replication=N)``.
STORAGE_KINDS = ("corrupt-block", "lose-replica")
#: injection kinds and the execution phases they may target
KINDS = (
    ("fail", "delay", "corrupt", "oom", "hang", "poison-record")
    + WORKER_KINDS
    + STORAGE_KINDS
)
PHASES = ("map", "reduce", "write")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: *what* happens to *which* attempt.

    ``attempt=None`` hits every attempt (a permanent fault — the way to
    kill a job deliberately); ``job=None`` matches any job, otherwise
    the exact job name.  Instances are plain frozen data: picklable
    (they cross the fork boundary inside phase payloads) and JSON
    round-trippable (the CLI's ``--fault-plan`` file).
    """

    kind: str
    phase: str
    index: int
    attempt: int | None = 0
    job: str | None = None
    delay_s: float = 0.0
    #: split-record offset a ``poison-record`` spec poisons (map phase
    #: only): the 0-based position within the task's input split
    record: int | None = None
    #: worker-kind specs only: the named victim of a ``fail-worker``
    #: (``None``: whichever worker ran the triggering attempt) or the
    #: name a ``join-worker`` registers (``None``: auto ``w{N}``)
    worker: str | None = None
    #: ``fail-worker`` only: die without a failure report — detection
    #: falls to the heartbeat sweep, which charges its latency
    silent: bool = False
    #: worker-kind specs only: fire at the first phase boundary after
    #: the cluster's cumulative simulated clock passes this many
    #: seconds, instead of on a triggering attempt
    at_s: float | None = None
    #: storage-kind specs only: the DFS path whose replica is damaged
    path: str | None = None
    #: storage-kind specs only: block index within the file
    block: int = 0
    #: storage-kind specs only: replica index within the block's
    #: failover-ordered holder list
    replica: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise JobError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.phase not in PHASES:
            raise JobError(f"unknown fault phase {self.phase!r}; choose from {PHASES}")
        if self.index < 0:
            raise JobError(f"fault task index must be >= 0, got {self.index}")
        if self.kind in ("delay", "hang") and self.delay_s <= 0:
            raise JobError(f"{self.kind} faults need delay_s > 0")
        if self.kind == "poison-record":
            if self.phase != "map":
                raise JobError("poison-record faults only target the map phase")
            if self.record is None or self.record < 0:
                raise JobError(
                    "poison-record faults need record >= 0 (the split offset)"
                )
        elif self.record is not None:
            raise JobError(f"{self.kind} faults do not take a record offset")
        if self.kind in WORKER_KINDS:
            if self.phase == "write":
                raise JobError(
                    f"{self.kind} faults target the map or reduce phase, not write"
                )
            if self.delay_s:
                raise JobError(f"{self.kind} faults do not take delay_s")
            if self.at_s is not None:
                if self.at_s < 0:
                    raise JobError(f"at_s must be >= 0, got {self.at_s}")
                if self.kind == "fail-worker" and self.worker is None:
                    raise JobError(
                        "an at-time fail-worker needs an explicit worker "
                        "name (there is no triggering attempt to derive "
                        "the victim from)"
                    )
            if self.silent and self.kind != "fail-worker":
                raise JobError("only fail-worker faults can be silent")
        else:
            if self.worker is not None:
                raise JobError(f"{self.kind} faults do not take a worker name")
            if self.silent:
                raise JobError(f"{self.kind} faults cannot be silent")
            if self.at_s is not None:
                raise JobError(f"{self.kind} faults do not take an at_s trigger")
        if self.kind in STORAGE_KINDS:
            if not self.path:
                raise JobError(
                    f"{self.kind} faults need the DFS path of the file to damage"
                )
            if self.phase == "write":
                raise JobError(
                    f"{self.kind} faults target the map or reduce phase, not write"
                )
            if self.delay_s:
                raise JobError(f"{self.kind} faults do not take delay_s")
            if self.block < 0:
                raise JobError(f"fault block index must be >= 0, got {self.block}")
            if self.replica < 0:
                raise JobError(
                    f"fault replica index must be >= 0, got {self.replica}"
                )
        else:
            if self.path is not None:
                raise JobError(f"{self.kind} faults do not take a path")
            if self.block:
                raise JobError(f"{self.kind} faults do not take a block index")
            if self.replica:
                raise JobError(f"{self.kind} faults do not take a replica index")

    def matches(self, job: str, phase: str, index: int, attempt: int) -> bool:
        if self.at_s is not None:
            return False  # at-time specs fire at phase boundaries instead
        if self.kind in STORAGE_KINDS:
            return False  # storage specs are enacted at job start instead
        return (
            self.phase == phase
            and self.index == index
            and (self.attempt is None or self.attempt == attempt)
            and (self.job is None or self.job == job)
        )


#: the JSON field whitelist for fault-plan specs, derived from the
#: dataclass so schema validation can never drift from the schema
_SPEC_FIELDS = tuple(f.name for f in fields(FaultSpec))


@dataclass
class FaultPlan:
    """A declarative, reproducible chaos schedule for one run.

    Build plans with the fluent helpers (each returns ``self``)::

        plan = (FaultPlan()
                .fail_task("map", 0)                  # first attempt of map task 0 dies
                .fail_task("reduce", 2, attempt=0)    # reduce task 2, attempt 0
                .delay_task("map", 1, delay_s=0.5)    # a straggler for speculation
                .corrupt_result("reduce", 1)          # checksum failure -> retry
                .fail_dfs_write(0))                   # part-00000 commit fails once

    or generate one deterministically from a seed with :meth:`random`.
    Plans serialize to/from JSON (:meth:`to_dict`/:meth:`from_dict`,
    :meth:`dump`/:meth:`load`) for the CLI and CI chaos jobs.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    #: provenance of generated plans (``None`` for hand-built ones)
    seed: int | None = None

    # -- fluent builders ------------------------------------------------
    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def fail_task(
        self,
        phase: str,
        index: int,
        attempt: int | None = 0,
        job: str | None = None,
    ) -> "FaultPlan":
        """Kill one attempt of a task (``attempt=None``: every attempt)."""
        return self.add(FaultSpec("fail", phase, index, attempt, job))

    def delay_task(
        self,
        phase: str,
        index: int,
        delay_s: float,
        attempt: int | None = 0,
        job: str | None = None,
    ) -> "FaultPlan":
        """Make one attempt of a task straggle by ``delay_s`` wall seconds."""
        return self.add(FaultSpec("delay", phase, index, attempt, job, delay_s))

    def corrupt_result(
        self,
        phase: str,
        index: int,
        attempt: int | None = 0,
        job: str | None = None,
    ) -> "FaultPlan":
        """Complete the attempt but fail its result checksum (discard+retry)."""
        return self.add(FaultSpec("corrupt", phase, index, attempt, job))

    def fail_dfs_write(
        self, index: int, attempt: int | None = 0, job: str | None = None
    ) -> "FaultPlan":
        """Fail the DFS commit of part file ``index`` (before any byte lands)."""
        return self.add(FaultSpec("fail", "write", index, attempt, job))

    def oom_task(
        self,
        phase: str,
        index: int,
        attempt: int | None = 0,
        job: str | None = None,
    ) -> "FaultPlan":
        """Kill one attempt with a memory-exhaustion diagnosis."""
        return self.add(FaultSpec("oom", phase, index, attempt, job))

    def hang_task(
        self,
        phase: str,
        index: int,
        hang_s: float,
        attempt: int | None = 0,
        job: str | None = None,
    ) -> "FaultPlan":
        """Wedge one attempt for ``hang_s`` wall seconds, then kill it.

        The hang is finite so executors always drain; a watchdog with
        ``task_timeout_s < hang_s`` reclaims the attempt first.
        """
        return self.add(FaultSpec("hang", phase, index, attempt, job, hang_s))

    def poison_record(
        self,
        index: int,
        record: int,
        attempt: int | None = None,
        job: str | None = None,
    ) -> "FaultPlan":
        """Poison split record ``record`` of map task ``index``.

        Defaults to ``attempt=None`` (every attempt): a poison record is
        a property of the *data*, so it keeps killing retries until
        skipping mode quarantines it.
        """
        return self.add(
            FaultSpec("poison-record", "map", index, attempt, job, record=record)
        )

    def fail_worker(
        self,
        worker: str | None = None,
        phase: str = "map",
        index: int = 0,
        attempt: int | None = 0,
        job: str | None = None,
        *,
        silent: bool = False,
        at_s: float | None = None,
    ) -> "FaultPlan":
        """Kill a worker: in-flight attempts die, map outputs invalidate.

        Triggered when attempt ``(phase, index, attempt)`` reports in
        (``worker=None``: that attempt's own worker is the victim), or
        at the first phase boundary past ``at_s`` cumulative simulated
        seconds.  ``silent`` suppresses the failure report so the death
        is only caught by the heartbeat sweep.  One-shot: a spec fires
        at most once per cluster lifetime.
        """
        return self.add(
            FaultSpec(
                "fail-worker", phase, index, attempt, job,
                worker=worker, silent=silent, at_s=at_s,
            )
        )

    def join_worker(
        self,
        worker: str | None = None,
        phase: str = "map",
        index: int = 0,
        attempt: int | None = 0,
        job: str | None = None,
        *,
        at_s: float | None = None,
    ) -> "FaultPlan":
        """Add a fresh worker to the pool mid-job (``None``: auto-named).

        Same triggers as :meth:`fail_worker`; the new worker enters the
        assignment rotation immediately — an elastic scale-up riding
        the normal retry/speculation machinery.
        """
        return self.add(
            FaultSpec(
                "join-worker", phase, index, attempt, job,
                worker=worker, at_s=at_s,
            )
        )

    def corrupt_block(
        self,
        path: str,
        block: int = 0,
        replica: int = 0,
        job: str | None = None,
    ) -> "FaultPlan":
        """Flip replica ``replica`` of block ``block`` of ``path``.

        Enacted at job start by the storage plane (the disk rots before
        the job reads); the damage is *detected* at the first
        checksum-verified read, which drops the replica and fails over
        (``BLOCK_CORRUPTIONS``).  Requires ``Cluster(replication=N)``.
        One-shot; a spec whose path does not exist yet stays pending
        for a later job.
        """
        return self.add(
            FaultSpec(
                "corrupt-block", "map", 0, job=job,
                path=path, block=block, replica=replica,
            )
        )

    def lose_replica(
        self,
        path: str,
        block: int = 0,
        replica: int = 0,
        job: str | None = None,
    ) -> "FaultPlan":
        """Delete replica ``replica`` of block ``block`` of ``path``.

        A vanished disk rather than flipped bits: the loss is counted
        immediately (``REPLICAS_LOST``) and the end-of-job
        re-replication pass restores the target factor.  Same triggers
        and requirements as :meth:`corrupt_block`.
        """
        return self.add(
            FaultSpec(
                "lose-replica", "map", 0, job=job,
                path=path, block=block, replica=replica,
            )
        )

    # -- queries --------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.specs

    @property
    def has_worker_faults(self) -> bool:
        """Whether any spec targets a worker (engages the worker pool)."""
        return any(s.kind in WORKER_KINDS for s in self.specs)

    def worker_specs(self) -> list[FaultSpec]:
        """The worker-kind specs, in declaration order."""
        return [s for s in self.specs if s.kind in WORKER_KINDS]

    @property
    def has_storage_faults(self) -> bool:
        """Whether any spec targets a block replica (needs the plane)."""
        return any(s.kind in STORAGE_KINDS for s in self.specs)

    def storage_specs(self) -> list[FaultSpec]:
        """The storage-kind specs, in declaration order."""
        return [s for s in self.specs if s.kind in STORAGE_KINDS]

    def matching(
        self, job: str, phase: str, index: int, attempt: int
    ) -> list[FaultSpec]:
        """Every spec hitting this attempt, in declaration order."""
        return [s for s in self.specs if s.matches(job, phase, index, attempt)]

    # -- generation / serialization ------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_map_tasks: int,
        num_reduce_tasks: int,
        faults: int = 2,
        kinds: tuple[str, ...] = ("fail", "corrupt"),
        max_attempt: int = 0,
    ) -> "FaultPlan":
        """A deterministic plan drawn from ``seed`` — same seed, same chaos.

        Only first-``max_attempt`` attempts are targeted, so any policy
        with ``max_attempts > max_attempt + 1`` absorbs the plan.
        """
        rng = random.Random(seed)
        plan = cls(seed=seed)
        for __ in range(faults):
            phase = rng.choice(("map", "reduce"))
            limit = num_map_tasks if phase == "map" else num_reduce_tasks
            if limit <= 0:
                continue
            plan.add(
                FaultSpec(
                    kind=rng.choice(kinds),
                    phase=phase,
                    index=rng.randrange(limit),
                    attempt=rng.randint(0, max_attempt),
                )
            )
        return plan

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "specs": [asdict(s) for s in self.specs]}

    @classmethod
    def from_dict(
        cls, data: dict[str, Any], source: str | None = None
    ) -> "FaultPlan":
        """Validate and build a plan from its JSON form.

        Every schema violation — an unknown top-level key, spec field,
        ``kind`` or ``phase`` — raises a one-line
        :class:`~repro.errors.FaultPlanError` naming the source (the
        file path, when loaded from disk), the spec index and the
        offending key, instead of silently carrying a spec that never
        fires.
        """
        where = f"{source}: " if source else "fault plan: "
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"{where}expected a JSON object, got {type(data).__name__}"
            )
        for key in data:
            if key not in ("seed", "specs"):
                raise FaultPlanError(
                    f"{where}unknown top-level key {key!r} (known: seed, specs)"
                )
        raw_specs = data.get("specs", [])
        if not isinstance(raw_specs, list):
            raise FaultPlanError(
                f"{where}'specs' must be a list, got {type(raw_specs).__name__}"
            )
        specs = []
        for i, raw in enumerate(raw_specs):
            if not isinstance(raw, dict):
                raise FaultPlanError(
                    f"{where}spec #{i}: expected an object, "
                    f"got {type(raw).__name__}"
                )
            unknown = [k for k in raw if k not in _SPEC_FIELDS]
            if unknown:
                raise FaultPlanError(
                    f"{where}spec #{i}: unknown field {unknown[0]!r} "
                    f"(known: {', '.join(_SPEC_FIELDS)})"
                )
            try:
                specs.append(FaultSpec(**raw))
            except (JobError, TypeError) as exc:
                raise FaultPlanError(f"{where}spec #{i}: {exc}") from exc
        return cls(specs=specs, seed=data.get("seed"))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise JobError(f"cannot load fault plan {path!r}: {exc}") from exc
        return cls.from_dict(data, source=path)


@dataclass(frozen=True)
class RetryPolicy:
    """How much failure the cluster absorbs before giving up.

    ``max_attempts`` is Hadoop's ``mapred.{map,reduce}.max.attempts``:
    the number of times one task may *fail* before the job aborts.  The
    default of 1 keeps the seed's fail-fast behaviour (and its zero
    dispatch overhead); Hadoop 0.20's own default is 4.

    Backoff between attempts is **simulated**, not slept: retry ``k``
    charges ``backoff_base_s * 2**(k-1)`` simulated seconds to the job's
    fault-overhead term, keeping test wall time unaffected and the
    charge deterministic.

    Speculation (off by default) launches a backup attempt for a running
    task once the phase is at least ``speculation_threshold`` complete
    and the task has been running longer than ``speculation_factor``
    times the median completed-task duration (and at least
    ``speculation_min_runtime_s`` — sub-millisecond tasks never earn
    backups).  The first finisher wins; the loser's result and counter
    shard are discarded, so speculation can change *telemetry* but never
    output.

    ``task_timeout_s`` (off by default) arms the hung-task watchdog:
    an attempt running longer than this wall-clock bound is abandoned,
    logged with outcome ``"timeout"``, charged as a failure, and
    re-dispatched through the retry path — Hadoop's
    ``mapred.task.timeout``.  Like speculation it needs a streaming
    :class:`~repro.mapreduce.executor.PhaseSession`, so it is inert on
    the serial executor (a single-threaded runner cannot preempt its
    own task).

    ``max_skipped_records`` (0 = off) enables Hadoop-style skipping
    mode: a map attempt that dies on one identifiable record
    (:class:`~repro.errors.BadRecordError`) is retried with that record
    quarantined instead of burning a failure attempt, up to this many
    records per task.

    ``blacklist_after`` (0 = off) arms per-worker failure accounting:
    every charged task failure strikes the worker that ran the attempt,
    and a worker reaching this many strikes is blacklisted — no new
    assignments, its capacity removed from the pool — Hadoop's
    ``mapred.max.tracker.failures`` TaskTracker blacklist.  Setting it
    engages the worker pool even without a fault plan.

    ``heartbeat_interval_s`` is the *simulated* latency of detecting a
    silently-dead worker (one missed heartbeat), charged to the job's
    recovery-overhead term when a ``fail-worker`` spec is ``silent``;
    workers that die with a failure report are detected for free.
    """

    max_attempts: int = 1
    backoff_base_s: float = 1.0
    speculate: bool = False
    speculation_threshold: float = 0.75
    speculation_factor: float = 1.5
    speculation_min_runtime_s: float = 0.05
    task_timeout_s: float | None = None
    max_skipped_records: int = 0
    blacklist_after: int = 0
    heartbeat_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise JobError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 < self.speculation_threshold <= 1.0:
            raise JobError("speculation_threshold must be in (0, 1]")
        if self.speculation_factor <= 1.0:
            raise JobError("speculation_factor must be > 1")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise JobError("task_timeout_s must be > 0 (or None to disable)")
        if self.max_skipped_records < 0:
            raise JobError(
                f"max_skipped_records must be >= 0, got {self.max_skipped_records}"
            )
        if self.blacklist_after < 0:
            raise JobError(
                f"blacklist_after must be >= 0, got {self.blacklist_after}"
            )
        if self.heartbeat_interval_s <= 0:
            raise JobError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )

    def backoff_before(self, attempt: int) -> float:
        """Simulated seconds charged before launching retry ``attempt``."""
        if attempt <= 0:
            return 0.0
        return self.backoff_base_s * (2.0 ** (attempt - 1))

    @property
    def active(self) -> bool:
        """Whether recovery dispatch is needed at all."""
        return (
            self.max_attempts > 1
            or self.speculate
            or self.task_timeout_s is not None
            or self.max_skipped_records > 0
            or self.blacklist_after > 0
        )


@dataclass(frozen=True)
class TaskAttempt:
    """One attempt's outcome, as recorded in the task's attempt history.

    ``outcome`` is ``"ok"`` (the winning attempt), ``"failed"`` (raised),
    ``"corrupt"`` (completed but failed the simulated checksum),
    ``"lost"`` (completed fine but a sibling attempt had already won —
    a discarded speculative loser), ``"timeout"`` (abandoned by the
    hung-task watchdog), ``"worker_lost"`` (the attempt's worker died
    under it — never charged: the attempt did nothing wrong, so Hadoop
    reschedules it without burning one of the task's allowed failures)
    or ``"skipped"`` (died on one bad record that skipping mode
    quarantined — the follow-up dispatch does not count as a failure).
    ``backoff_s`` is the simulated backoff charged before this attempt
    launched.
    """

    attempt: int
    outcome: str
    speculative: bool = False
    error: str = ""
    duration_s: float = 0.0
    backoff_s: float = 0.0


@dataclass
class PhaseReport:
    """Recovery telemetry of one phase, merged into counters and cost."""

    attempts: list[list[TaskAttempt]]
    launched: int = 0
    failures: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0
    #: total simulated backoff charged across every retry
    backoff_s: float = 0.0
    #: attempts abandoned by the hung-task watchdog
    timeouts: int = 0
    #: per task: quarantined ``(offset, path, lineno, record_repr)``
    #: tuples, in skip order (empty when skipping mode never fired)
    skipped: list[list[tuple]] = field(default_factory=list)
    #: set when ``task_timeout_s`` was requested but the executor has
    #: no streaming session, so the watchdog degraded to retry rounds
    #: (``EFFECTIVE_WATCHDOG=off`` — hung attempts cannot be preempted)
    watchdog_degraded: bool = False

    @property
    def extra_attempts(self) -> int:
        """Attempts beyond the one-per-task minimum (retries + backups)."""
        return self.launched - len(self.attempts)

    @property
    def skipped_records(self) -> int:
        """Total records quarantined by skipping mode in this phase."""
        return sum(len(s) for s in self.skipped)


# ----------------------------------------------------------------------
# Worker failure domains: the per-job coordinator the dispatchers call
# into when the pool is engaged.
# ----------------------------------------------------------------------
@dataclass
class WorkerReport:
    """Worker-domain telemetry of one job, merged into counters/cost."""

    worker_failures: int = 0
    workers_blacklisted: int = 0
    workers_joined: int = 0
    map_output_lost: int = 0
    tasks_reexecuted: int = 0
    #: in-flight attempts that vanished with their worker (never
    #: charged as task failures — includes speculative losers)
    lost_attempts: int = 0
    #: simulated heartbeat latency of detecting silent deaths
    detection_s: float = 0.0
    #: map task ids whose committed output was recomputed (duplicates
    #: possible if a task's output is lost more than once)
    reexec_map_tasks: list[int] = field(default_factory=list)
    #: locality telemetry (block plane engaged): map tasks whose first
    #: attempt landed on a worker holding their split's blocks...
    locality_hits: int = 0
    #: ...and tasks that fell back rack-blind, pulling their split
    #: across the simulated network
    locality_misses: int = 0
    #: bytes those misses moved — charged to the network-overhead term
    remote_read_bytes: int = 0

    @property
    def engaged(self) -> bool:
        """Whether anything worker-related actually happened."""
        return bool(
            self.worker_failures
            or self.workers_blacklisted
            or self.workers_joined
            or self.map_output_lost
            or self.lost_attempts
        )


class WorkerManager:
    """Per-job coordinator of the worker failure domain.

    The engine creates one per job when the pool is engaged (the fault
    plan has worker specs, or ``policy.blacklist_after > 0``).  It owns
    the job-scoped state — which worker committed which map output,
    which deaths are queued for the liveness sweep, the telemetry
    report — while the :class:`~repro.mapreduce.workers.WorkerPool`
    itself lives for the whole cluster, so deaths and blacklists
    persist across the jobs of a chained workflow.

    Death protocol (mirrors a lost TaskTracker):

    1. a ``fail-worker`` spec fires — on a triggering attempt's
       completion report, or at a phase boundary for ``at_s`` specs —
       and the victim is *queued* (``queue_death``);
    2. the dispatcher's liveness sweep enacts it (``enact_pending``):
       the worker is marked dead, its in-flight attempts are recorded
       as ``worker_lost`` (uncharged) and re-dispatched, and every
       committed map output it owned is invalidated;
    3. invalidated map tasks re-execute — in-phase during the map
       phase, or (during the reduce phase) via the engine's deferred
       re-execution callback once the surviving reduce attempts drain,
       with the recomputed results discarded (map tasks are pure
       functions of ``(payload, index)``, so byte-identity holds).

    Detection is ``"report"`` for ordinary deaths (the failure report
    doubles as the death notice) and ``"heartbeat"`` for silent ones,
    which charge :attr:`RetryPolicy.heartbeat_interval_s` of simulated
    detection latency to the recovery-overhead term.
    """

    def __init__(
        self,
        pool: WorkerPool,
        plan: FaultPlan | None,
        job: str,
        policy: RetryPolicy,
        recorder=None,
        ledger=None,
        elapsed_s: float = 0.0,
    ) -> None:
        self.pool = pool
        self.job = job
        self.policy = policy
        self.recorder = (
            recorder if recorder is not None and recorder.enabled else None
        )
        self.ledger = ledger if ledger is not None and ledger.enabled else None
        #: cumulative simulated seconds at job start (at_s triggers)
        self.elapsed_s = elapsed_s
        self.report = WorkerReport()
        self.phase = ""
        #: committed map output ownership: task id -> worker name
        self.map_owners: dict[int, str] = {}
        self._specs = plan.worker_specs() if plan is not None else []
        self._pending_deaths: list[tuple[str, FaultSpec | None]] = []
        self._dying: set[str] = set()
        self._reexec = None
        self._deferred_reexec: list[int] = []
        #: split locality from the block plane: task -> (preferred
        #: workers in failover order, split bytes); empty unless the
        #: engine threads it in for a map phase
        self._localities: dict[int, tuple[tuple[str, ...], int]] = {}
        #: tasks whose locality was already scored (hit/miss counts
        #: once per task, on the first attempt's assignment)
        self._locality_scored: set[int] = set()

    # -- phase lifecycle -----------------------------------------------
    def begin_phase(self, phase: str, reexec=None, localities=None) -> None:
        """Enter a phase; ``reexec`` re-runs map tasks (reduce phase).

        ``localities`` (map phase, block plane engaged) maps task index
        to ``(preferred workers, split bytes)`` — the scheduler's
        data-local placement hints.

        Fires any pending at-time specs: the phase boundary is where
        the scheduler consults the simulated clock.
        """
        self.phase = phase
        self._reexec = reexec
        self._localities = dict(localities) if localities else {}
        self._locality_scored = set()
        for spec in self._specs:
            if spec.at_s is None or spec in self.pool.fired:
                continue
            if spec.job is not None and spec.job != self.job:
                continue
            if self.elapsed_s < spec.at_s:
                continue
            self.pool.fired.add(spec)
            if spec.kind == "join-worker":
                self.enact_join(spec)
            else:
                self.queue_death(spec.worker, spec)
        # No attempts are in flight at a boundary, so enacting here
        # only kills workers and invalidates prior-phase map outputs.
        self.enact_pending()

    def assign(self, index: int, attempt: int) -> str:
        """The worker for this attempt — data-local when possible.

        With locality hints present, the first attempt of a map task
        prefers a live holder of its split's blocks; the hit or miss is
        scored exactly once per task (on that first assignment) so the
        ``LOCALITY_HITS``/``LOCALITY_MISSES`` counters reconcile 1:1
        with the ledger's ``locality`` events, and a miss charges the
        split's bytes as a remote read.
        """
        hint = self._localities.get(index)
        if hint is None:
            return self.pool.assign(index, attempt)
        preferred, nbytes = hint
        worker = self.pool.assign_preferring(index, attempt, preferred)
        if index not in self._locality_scored:
            self._locality_scored.add(index)
            hit = worker in preferred
            if hit:
                self.report.locality_hits += 1
            else:
                self.report.locality_misses += 1
                self.report.remote_read_bytes += nbytes
            if self.ledger is not None:
                self.ledger.event(
                    "locality",
                    task=index,
                    worker=worker,
                    hit=hit,
                    bytes=0 if hit else nbytes,
                )
        return worker

    def task_completed(self, index: int, worker: str | None) -> None:
        """Record the winning attempt's worker as the output's owner."""
        if self.phase == "map" and worker is not None:
            self.map_owners[index] = worker

    # -- triggers ------------------------------------------------------
    def worker_events_for(self, index: int, attempt: int) -> list[FaultSpec]:
        """Worker specs this attempt triggers (consumed: one-shot)."""
        hits = []
        for spec in self._specs:
            if spec.at_s is not None or spec in self.pool.fired:
                continue
            if spec.matches(self.job, self.phase, index, attempt):
                self.pool.fired.add(spec)
                hits.append(spec)
        return hits

    def queue_death(self, victim: str | None, spec: FaultSpec | None) -> None:
        """Schedule a worker death for the next liveness sweep."""
        if victim is None:
            return
        self._pending_deaths.append((victim, spec))
        self._dying.add(victim)

    @property
    def has_pending_deaths(self) -> bool:
        return bool(self._pending_deaths)

    def is_lost_worker(self, name: str | None) -> bool:
        """Whether results from ``name`` must be discarded (dead/dying)."""
        if name is None:
            return False
        return name in self._dying or not self.pool.state(name).alive

    def enact_join(self, spec: FaultSpec) -> None:
        joined = self.pool.join(spec.worker)
        if joined is None:
            return  # the name already exists — a node cannot join twice
        self.report.workers_joined += 1
        if self.ledger is not None:
            self.ledger.event("worker_joined", worker=joined, phase=self.phase)
        if self.recorder is not None:
            self.recorder.instant(
                "worker-joined",
                cat="worker",
                track="workers",
                args={"worker": joined, "active": len(self.pool.active())},
            )

    # -- enactment -----------------------------------------------------
    def enact_pending(self) -> tuple[list[str], list[int]]:
        """Kill queued workers; returns (victims, in-phase re-runs).

        The second element lists map task ids whose committed output
        the *current map phase* must re-dispatch; reduce-phase
        invalidations are deferred to the engine callback instead
        (re-entering the executor mid-session is not safe).
        """
        victims: list[str] = []
        invalidated: list[int] = []
        while self._pending_deaths:
            victim, spec = self._pending_deaths.pop(0)
            self._dying.discard(victim)
            if not self.pool.kill(victim):
                continue  # already dead: nothing new to lose
            silent = spec is not None and spec.silent
            detected = "heartbeat" if silent else "report"
            self.report.worker_failures += 1
            if silent:
                self.report.detection_s += self.policy.heartbeat_interval_s
            if self.ledger is not None:
                self.ledger.event(
                    "worker_lost",
                    worker=victim,
                    phase=self.phase,
                    detected=detected,
                )
            if self.recorder is not None:
                self.recorder.instant(
                    "worker-lost",
                    cat="worker",
                    track="workers",
                    args={
                        "worker": victim,
                        "detected": detected,
                        "active": len(self.pool.active()),
                    },
                )
            victims.append(victim)
            invalidated.extend(self._invalidate(victim))
        return victims, invalidated

    def _invalidate(self, victim: str) -> list[int]:
        """Lose every committed map output the victim owned."""
        lost = sorted(t for t, w in self.map_owners.items() if w == victim)
        if not lost:
            return []
        for t in lost:
            del self.map_owners[t]
        self.report.map_output_lost += len(lost)
        self.report.tasks_reexecuted += len(lost)
        self.report.reexec_map_tasks.extend(lost)
        if self.ledger is not None:
            self.ledger.event(
                "output_invalidated",
                worker=victim,
                phase=self.phase,
                tasks=lost,
                reexecuted=len(lost),
            )
        if self.recorder is not None:
            self.recorder.instant(
                "output-invalidated",
                cat="worker",
                track="workers",
                args={"worker": victim, "tasks": lost},
            )
        if self.phase == "map":
            return lost
        self._deferred_reexec.extend(lost)
        return []

    def run_deferred_reexecution(self) -> None:
        """Re-run map tasks invalidated during the reduce phase.

        Called by the engine after the reduce dispatch drains; the
        recomputed results are discarded (the tasks are pure, so they
        are identical to the lost originals) — only the simulated
        recovery-overhead charge and the telemetry remain.
        """
        if not self._deferred_reexec or self._reexec is None:
            return
        tasks = sorted(set(self._deferred_reexec))
        self._deferred_reexec.clear()
        self._reexec(tasks)

    # -- failure accounting --------------------------------------------
    def strike(self, worker: str | None) -> None:
        """Charge one task failure against ``worker`` (may blacklist)."""
        if worker is None or self.policy.blacklist_after <= 0:
            return
        state = self.pool.state(worker)
        if not state.alive or state.blacklisted:
            return
        strikes = self.pool.strike(worker)
        if strikes < self.policy.blacklist_after:
            return
        self.pool.blacklist(worker)
        self.report.workers_blacklisted += 1
        if self.ledger is not None:
            self.ledger.event(
                "worker_blacklisted",
                worker=worker,
                strikes=strikes,
                phase=self.phase,
            )
        if self.recorder is not None:
            self.recorder.instant(
                "worker-blacklisted",
                cat="worker",
                track="workers",
                args={
                    "worker": worker,
                    "strikes": strikes,
                    "active": len(self.pool.active()),
                },
            )


def _mark_worker_lost(
    report: PhaseReport,
    workers: "WorkerManager",
    index: int,
    attempt: int,
    speculative: bool,
    duration_s: float,
    worker_name: str,
    recorder,
    phase: str,
    ledger=None,
) -> None:
    """An attempt vanished with its worker: log it, charge nothing."""
    report.attempts[index].append(
        TaskAttempt(
            attempt=attempt,
            outcome="worker_lost",
            speculative=speculative,
            error=f"worker {worker_name} died with the attempt in flight",
            duration_s=duration_s,
        )
    )
    report.launched += 1
    workers.report.lost_attempts += 1
    if ledger is not None:
        ledger.event(
            "task_attempt",
            phase=phase,
            task=index,
            attempt=attempt,
            outcome="worker_lost",
            speculative=speculative,
            charged=False,
            duration_s=round(duration_s, 6),
            worker=worker_name,
        )
    if recorder is not None and recorder.enabled:
        recorder.instant(
            "worker-lost-attempt",
            cat="attempt",
            track=f"{phase} attempts",
            args={"task": index, "attempt": attempt, "worker": worker_name},
        )


# ----------------------------------------------------------------------
# The attempt envelope: recovery-dispatched workers never raise across
# the executor boundary — they capture success/failure in an _Outcome so
# the engine can retry per task instead of aborting the whole phase.
# ----------------------------------------------------------------------
@dataclass
class _AttemptPhase:
    """Payload wrapper carrying the real worker plus the slot table.

    Batch rounds address tasks by *slot* (an index into ``slots``);
    session dispatch passes the ``(index, attempt, speculative, skips,
    worker_name)`` tag directly.  ``skips`` is the tuple of quarantined
    split offsets a skipping-mode retry must not touch; ``worker_name``
    is the virtual worker the scheduler assigned the attempt to
    (``None`` when the pool is disengaged) — it rides the tag through
    every executor so worker-loss bookkeeping is identical on all of
    them, but the attempt body itself never consults it (workers are
    virtual).  Everything here is fork-inherited or picklable.
    """

    inner: Any
    worker: TaskWorker
    slots: tuple[tuple[int, int, bool, tuple[int, ...], str | None], ...]
    plan: FaultPlan | None
    job: str
    phase: str


@dataclass
class _Outcome:
    """What one attempt hands back (picklable; ``value`` only when ok)."""

    index: int
    attempt: int
    speculative: bool
    ok: bool
    value: Any = None
    corrupt: bool = False
    error: str = ""
    t_start: float = 0.0
    t_end: float = 0.0
    #: set when the failure was a BadRecordError — the skipping-mode
    #: quarantine entry ``(offset, path, lineno, record_repr)``
    bad_record: tuple | None = None

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    @property
    def outcome_name(self) -> str:
        if self.ok:
            return "ok"
        return "corrupt" if self.corrupt else "failed"


def _run_attempt(phase: _AttemptPhase, slot: Any) -> _Outcome:
    """One fault-instrumented attempt: inject, run, capture.

    ``slot`` is an int (batch rounds: index into the slot table) or the
    ``(index, attempt, speculative, skips, worker_name)`` tag itself
    (session dispatch).  Worker-kind specs are scheduler-level faults:
    they match attempts (as triggers) but inject nothing here.
    """
    index, attempt, speculative, skips, __ = (
        phase.slots[slot] if isinstance(slot, int) else slot
    )
    t_start = time.perf_counter()
    specs = (
        phase.plan.matching(phase.job, phase.phase, index, attempt)
        if phase.plan is not None
        else ()
    )
    try:
        for spec in specs:
            if spec.kind == "delay":
                time.sleep(spec.delay_s)
            elif spec.kind == "hang":
                time.sleep(spec.delay_s)
                raise InjectedFault(
                    f"injected hang: {phase.phase} task {index} attempt "
                    f"{attempt} of job {phase.job!r} wedged for "
                    f"{spec.delay_s}s and died"
                )
        for spec in specs:
            if spec.kind == "fail":
                raise InjectedFault(
                    f"injected failure: {phase.phase} task {index} attempt "
                    f"{attempt} of job {phase.job!r}"
                )
            if spec.kind == "oom":
                raise InjectedFault(
                    f"injected OOM: {phase.phase} task {index} attempt "
                    f"{attempt} of job {phase.job!r} exceeded its container "
                    "memory limit"
                )
        if getattr(phase.worker, "supports_record_skipping", False):
            poison = tuple(
                spec.record for spec in specs if spec.kind == "poison-record"
            )
            value = phase.worker(phase.inner, index, skips=skips, poison=poison)
        else:
            value = phase.worker(phase.inner, index)
    except BadRecordError as exc:
        return _Outcome(
            index,
            attempt,
            speculative,
            ok=False,
            error=str(exc),
            t_start=t_start,
            t_end=time.perf_counter(),
            bad_record=(exc.offset, exc.path, exc.lineno, exc.record),
        )
    except Exception as exc:  # noqa: BLE001 - captured, not propagated
        return _Outcome(
            index,
            attempt,
            speculative,
            ok=False,
            error=str(exc),
            t_start=t_start,
            t_end=time.perf_counter(),
        )
    if any(spec.kind == "corrupt" for spec in specs):
        return _Outcome(
            index,
            attempt,
            speculative,
            ok=False,
            corrupt=True,
            error=(
                f"injected corruption: {phase.phase} task {index} attempt "
                f"{attempt} of job {phase.job!r} failed its result checksum"
            ),
            t_start=t_start,
            t_end=time.perf_counter(),
        )
    return _Outcome(
        index,
        attempt,
        speculative,
        ok=True,
        value=value,
        t_start=t_start,
        t_end=time.perf_counter(),
    )


# ----------------------------------------------------------------------
# Recovery dispatch
# ----------------------------------------------------------------------
def run_phase_with_recovery(
    executor: TaskExecutor,
    worker: TaskWorker,
    num_tasks: int,
    payload: Any,
    *,
    job: str,
    phase: str,
    policy: RetryPolicy,
    plan: FaultPlan | None = None,
    recorder=None,
    ledger=None,
    workers: WorkerManager | None = None,
) -> tuple[list, PhaseReport | None]:
    """Run a phase with retry/speculation; returns (results, report).

    The fast path — no fault plan, ``max_attempts == 1``, no speculation
    — is a direct ``executor.run_phase`` call: byte-for-byte the seed
    dispatch, no envelopes, no telemetry (``report`` is ``None``).
    Otherwise tasks run inside attempt envelopes: failures are captured
    and re-dispatched (fresh attempt id, simulated backoff) until they
    succeed or burn ``policy.max_attempts`` failures, at which point
    :class:`~repro.errors.TaskRetryExhausted` carries the task's full
    attempt log out of the phase.  With ``policy.speculate`` and a
    parallel executor, a straggler monitor races backup attempts against
    slow tasks and keeps whichever finishes first.

    ``ledger`` (a :class:`repro.obs.ledger.NullLedger`-compatible
    object, or ``None``) receives one ``task_attempt`` event per
    recorded attempt — carrying an explicit ``charged`` flag, since an
    attempt can log outcome ``"failed"`` without being charged as a
    task failure (a speculative loser that raised after its sibling
    won) — plus ``task_retry``, ``task_skip`` and
    ``speculation_launch`` events from the paths that emit them.

    ``workers`` (a :class:`WorkerManager`, engine-built when the pool
    is engaged) threads the named-worker assignment through every
    attempt tag and lets the dispatch loops enact worker deaths,
    output invalidation and blacklisting; ``None`` leaves behaviour
    bit-for-bit unchanged.
    """
    if ledger is not None and not ledger.enabled:
        ledger = None
    if (plan is None or plan.is_empty) and not policy.active and workers is None:
        return executor.run_phase(worker, num_tasks, payload), None
    if num_tasks == 0:
        return [], PhaseReport(attempts=[], skipped=[])
    env = _AttemptPhase(
        inner=payload, worker=worker, slots=(), plan=plan, job=job, phase=phase
    )
    degraded = False
    if policy.speculate or policy.task_timeout_s is not None:
        # Both speculation and the watchdog need streaming completions;
        # a serial executor has no session, so they degrade to rounds.
        session = executor.open_session(_run_attempt, env)
        if session is not None:
            with session:
                return _run_session(
                    session, env, num_tasks, policy, recorder, ledger, workers
                )
        if policy.task_timeout_s is not None:
            # Satellite fix: a silently-toothless watchdog (1-CPU boxes,
            # serial executor) now announces itself instead of letting
            # hung tasks run to completion unremarked.
            _warn_watchdog_degraded(job, phase, policy, recorder, ledger)
            degraded = True
    results, report = _run_retry_rounds(
        executor, env, num_tasks, policy, recorder, ledger, workers
    )
    if degraded:
        report.watchdog_degraded = True
    return results, report


def _warn_watchdog_degraded(
    job: str, phase: str, policy: RetryPolicy, recorder, ledger
) -> None:
    """Announce EFFECTIVE_WATCHDOG=off in the ledger and the trace."""
    detail = (
        f"EFFECTIVE_WATCHDOG=off: task_timeout_s={policy.task_timeout_s} "
        "degrades to retry rounds because the executor has no streaming "
        "session (serial, or a single worker) — hung attempts cannot be "
        "preempted"
    )
    if ledger is not None:
        ledger.event(
            "warning",
            kind="watchdog_degraded",
            job=job,
            phase=phase,
            detail=detail,
        )
    if recorder is not None and recorder.enabled:
        recorder.instant(
            "watchdog-degraded",
            cat="attempt",
            track=f"{phase} attempts",
            args={"job": job, "detail": detail},
        )


def _record_attempt(
    report: PhaseReport,
    out: _Outcome,
    backoff_s: float,
    recorder,
    phase: str,
    outcome: str | None = None,
    ledger=None,
) -> TaskAttempt:
    """File one outcome into the report (and the trace/ledger, if on).

    ``outcome`` overrides the outcome name for dispositions the outcome
    object cannot know about (``"skipped"``: the failure was one bad
    record that skipping mode quarantines, so it does not count as a
    task failure).
    """
    attempt = TaskAttempt(
        attempt=out.attempt,
        outcome=outcome or out.outcome_name,
        speculative=out.speculative,
        error=out.error,
        duration_s=out.duration_s,
        backoff_s=backoff_s,
    )
    report.attempts[out.index].append(attempt)
    report.launched += 1
    charged = not out.ok and attempt.outcome != "skipped"
    if charged:
        report.failures += 1
    if ledger is not None:
        ledger.event(
            "task_attempt",
            phase=phase,
            task=out.index,
            attempt=out.attempt,
            outcome=attempt.outcome,
            speculative=out.speculative,
            charged=charged,
            duration_s=round(out.duration_s, 6),
            **({"error": out.error} if out.error else {}),
        )
    if recorder is not None and recorder.enabled:
        recorder.add_span(
            f"{phase}-{out.index}-a{out.attempt}",
            cat="attempt",
            track=f"{phase} attempts",
            start=out.t_start,
            end=out.t_end,
            args={
                "task": out.index,
                "attempt": out.attempt,
                "outcome": attempt.outcome,
                "speculative": out.speculative,
                **({"error": out.error} if out.error else {}),
            },
        )
    return attempt


def _mark_lost(
    report: PhaseReport, out: _Outcome, recorder, phase: str, ledger=None
) -> None:
    """A sibling attempt already won; this one is a discarded loser."""
    out = _Outcome(
        index=out.index,
        attempt=out.attempt,
        speculative=out.speculative,
        ok=False,
        error="" if out.ok else out.error,
        t_start=out.t_start,
        t_end=out.t_end,
    )
    attempt = TaskAttempt(
        attempt=out.attempt,
        outcome="lost" if not out.error else "failed",
        speculative=out.speculative,
        error=out.error,
        duration_s=out.duration_s,
    )
    report.attempts[out.index].append(attempt)
    report.launched += 1
    if ledger is not None:
        # A loser never charges a failure, even when it logs "failed".
        ledger.event(
            "task_attempt",
            phase=phase,
            task=out.index,
            attempt=out.attempt,
            outcome=attempt.outcome,
            speculative=out.speculative,
            charged=False,
            duration_s=round(out.duration_s, 6),
            **({"error": out.error} if out.error else {}),
        )
    if recorder is not None and recorder.enabled:
        recorder.add_span(
            f"{phase}-{out.index}-a{out.attempt}",
            cat="attempt",
            track=f"{phase} attempts",
            start=out.t_start,
            end=out.t_end,
            args={
                "task": out.index,
                "attempt": out.attempt,
                "outcome": attempt.outcome,
                "speculative": out.speculative,
            },
        )


def _exhausted_error(
    job: str, phase: str, index: int, attempts: list[TaskAttempt], last_error: str
) -> TaskRetryExhausted:
    n = sum(1 for a in attempts if a.outcome in ("failed", "corrupt", "timeout"))
    log = "; ".join(
        f"attempt {a.attempt}{' (speculative)' if a.speculative else ''}: "
        f"{a.outcome}{f' - {a.error}' if a.error else ''}"
        for a in attempts
    )
    return TaskRetryExhausted(
        f"{last_error} [{phase} task {index} of job {job!r} failed "
        f"{n} attempt(s); log: {log}]",
        attempts=tuple(attempts),
    )


def _retry_backoff(
    report: PhaseReport,
    policy: RetryPolicy,
    index: int,
    attempt: int,
    recorder,
    phase: str,
    ledger=None,
) -> float:
    """Charge (and trace) the simulated backoff before retry ``attempt``."""
    backoff = policy.backoff_before(attempt)
    report.backoff_s += backoff
    if ledger is not None:
        ledger.event(
            "task_retry",
            phase=phase,
            task=index,
            attempt=attempt,
            backoff_s=backoff,
        )
    if recorder is not None and recorder.enabled:
        recorder.instant(
            "retry-backoff",
            cat="attempt",
            track=f"{phase} attempts",
            args={"task": index, "attempt": attempt, "backoff_simulated_s": backoff},
        )
    return backoff


def _run_retry_rounds(
    executor: TaskExecutor,
    env: _AttemptPhase,
    num_tasks: int,
    policy: RetryPolicy,
    recorder,
    ledger=None,
    workers: WorkerManager | None = None,
) -> tuple[list, PhaseReport]:
    """Deterministic round-based retries (the non-speculative path).

    Round 0 runs every task at attempt 0; round ``k`` re-dispatches the
    tasks that failed round ``k-1`` in task-id order.  Results, attempt
    logs and the raising task (the lowest exhausted id of the earliest
    failing round) are therefore identical on every executor.

    Skipping mode rides the same rounds: an attempt that died on one
    bad record re-dispatches with the record quarantined instead of
    charging a failure, bounded per task by
    ``policy.max_skipped_records`` (past the bound the bad record is an
    ordinary failure again).

    With an engaged ``workers`` manager, every slot carries its
    assigned worker name, and the between-rounds step doubles as the
    liveness sweep: worker faults triggered by this round's attempts
    are enacted before any of the round's results are accepted, so an
    attempt that was in flight on a dying worker loses its result
    (outcome ``"worker_lost"``, uncharged) and invalidated committed
    map outputs rejoin the pending set — the round boundary is the
    simulated heartbeat.
    """
    results: list[Any] = [None] * num_tasks
    report = PhaseReport(
        attempts=[[] for __ in range(num_tasks)],
        skipped=[[] for __ in range(num_tasks)],
    )
    failed_counts = [0] * num_tasks
    launch_counts = [0] * num_tasks  # next attempt id (skips included)
    skips: list[tuple[int, ...]] = [() for __ in range(num_tasks)]
    next_backoff = [0.0] * num_tasks
    pending = list(range(num_tasks))
    supports_skip = getattr(env.worker, "supports_record_skipping", False)
    while pending:
        slots = []
        for i in pending:
            assigned = (
                workers.assign(i, launch_counts[i])
                if workers is not None
                else None
            )
            slots.append((i, launch_counts[i], False, skips[i], assigned))
            launch_counts[i] += 1
        round_env = _AttemptPhase(
            inner=env.inner,
            worker=env.worker,
            slots=tuple(slots),
            plan=env.plan,
            job=env.job,
            phase=env.phase,
        )
        outcomes = executor.run_phase(_run_attempt, len(slots), round_env)
        lost_workers: set[str] = set()
        invalidated: list[int] = []
        if workers is not None:
            # Scheduler-side pass first: worker faults trigger as the
            # round's attempts report in (slot order), then the sweep
            # enacts every queued death before results are accepted.
            for out, slot in zip(outcomes, slots):
                for spec in workers.worker_events_for(out.index, out.attempt):
                    if spec.kind == "join-worker":
                        workers.enact_join(spec)
                    else:
                        workers.queue_death(spec.worker or slot[4], spec)
            victims, invalidated = workers.enact_pending()
            lost_workers = set(victims)
        retry: list[int] = []
        for out, slot in zip(outcomes, slots):  # slot order == task-id order
            i = out.index
            if slot[4] is not None and slot[4] in lost_workers:
                # The attempt was in flight on the dying worker: its
                # result died with the node — not charged, re-run.
                _mark_worker_lost(
                    report, workers, i, out.attempt, out.speculative,
                    out.duration_s, slot[4], recorder, env.phase, ledger,
                )
                retry.append(i)
                continue
            if out.ok:
                _record_attempt(
                    report, out, next_backoff[i], recorder, env.phase,
                    ledger=ledger,
                )
                results[i] = out.value
                if workers is not None:
                    workers.task_completed(i, slot[4])
                continue
            if (
                out.bad_record is not None
                and supports_skip
                and policy.max_skipped_records > 0
                and len(report.skipped[i]) < policy.max_skipped_records
            ):
                # One bad record, quarantine budget left: log the
                # attempt as "skipped" and re-dispatch without it — no
                # failure charged, no backoff (the record is gone, the
                # retry is expected to work).
                _record_attempt(
                    report, out, next_backoff[i], recorder, env.phase,
                    outcome="skipped", ledger=ledger,
                )
                report.skipped[i].append(out.bad_record)
                skips[i] = skips[i] + (out.bad_record[0],)
                if ledger is not None:
                    offset, path, lineno, __ = out.bad_record
                    ledger.event(
                        "task_skip",
                        phase=env.phase,
                        task=i,
                        offset=offset,
                        path=path,
                        lineno=lineno,
                    )
                retry.append(i)
                continue
            _record_attempt(
                report, out, next_backoff[i], recorder, env.phase, ledger=ledger
            )
            failed_counts[i] += 1
            if workers is not None:
                workers.strike(slot[4])
            if failed_counts[i] >= policy.max_attempts:
                raise _exhausted_error(
                    env.job, env.phase, i, report.attempts[i], out.error
                )
            next_backoff[i] = _retry_backoff(
                report, policy, i, failed_counts[i], recorder, env.phase, ledger
            )
            retry.append(i)
        for t in invalidated:
            # Committed output from an earlier round died with its
            # worker: the task runs again (fresh attempt id, uncharged).
            results[t] = None
            retry.append(t)
        pending = sorted(set(retry))
    return results, report


class _SessionState:
    """Book-keeping of one streaming phase run (parent-side only)."""

    __slots__ = (
        "results",
        "done",
        "launched_ids",
        "failed_counts",
        "running",
        "abandoned",
        "skips",
        "has_backup",
        "pending_backoff",
        "winner_speculative",
    )

    def __init__(self, num_tasks: int) -> None:
        self.results: list[Any] = [None] * num_tasks
        self.done = [False] * num_tasks
        self.launched_ids = [0] * num_tasks  # next attempt id per task
        self.failed_counts = [0] * num_tasks
        #: attempt id -> (submit wall-stamp, speculative), per task
        self.running: list[dict[int, tuple[float, bool]]] = [
            {} for __ in range(num_tasks)
        ]
        #: attempt ids the watchdog declared dead — late arrivals from
        #: these are dropped on the floor (their replacement already
        #: owns the task)
        self.abandoned: list[set[int]] = [set() for __ in range(num_tasks)]
        #: quarantined split offsets per task (skipping mode)
        self.skips: list[tuple[int, ...]] = [() for __ in range(num_tasks)]
        self.has_backup = [False] * num_tasks
        self.pending_backoff: list[float] = [0.0] * num_tasks
        self.winner_speculative = [False] * num_tasks


def _run_session(
    session,
    env: _AttemptPhase,
    num_tasks: int,
    policy: RetryPolicy,
    recorder,
    ledger=None,
    workers: WorkerManager | None = None,
) -> tuple[list, PhaseReport]:
    """Event-loop dispatch: speculation and/or watchdog (thread/process).

    Tags are ``(index, attempt, speculative, skips, worker_name)``.
    First successful finisher per task wins; siblings are discarded as
    ``lost``.  With ``policy.task_timeout_s`` set, a watchdog sweep
    abandons any attempt past the wall-clock bound (outcome
    ``"timeout"``, charged as a failure) and re-dispatches the task
    through the retry path; a result that straggles in from an
    abandoned attempt is ignored.  Output stays byte-identical to the
    batch path because every clean attempt of a task computes the
    identical result — only the telemetry (attempt counts, speculative
    wins, timeouts) depends on timing.

    With an engaged ``workers`` manager the loop also runs a liveness
    sweep each iteration (the simulated heartbeat, distinct from the
    per-task watchdog): queued worker deaths are enacted, in-flight
    attempts on the victim are written off as ``worker_lost``
    (uncharged — including speculative losers), committed map outputs
    it owned rejoin the pending set, and a completion report arriving
    from a dead or dying worker is withheld rather than accepted.
    """
    report = PhaseReport(
        attempts=[[] for __ in range(num_tasks)],
        skipped=[[] for __ in range(num_tasks)],
    )
    state = _SessionState(num_tasks)
    supports_skip = getattr(env.worker, "supports_record_skipping", False)
    completed_durations: list[float] = []
    done_count = 0
    #: worker assigned to each launched attempt: (index, attempt) -> name
    tag_workers: dict[tuple[int, int], str | None] = {}

    def launch(index: int, speculative: bool) -> None:
        attempt = state.launched_ids[index]
        state.launched_ids[index] += 1
        assigned = (
            workers.assign(index, attempt) if workers is not None else None
        )
        tag_workers[(index, attempt)] = assigned
        state.running[index][attempt] = (time.monotonic(), speculative)
        session.submit(
            (index, attempt, speculative, state.skips[index], assigned)
        )
        if speculative:
            report.speculative_launched += 1
            state.has_backup[index] = True
            if ledger is not None:
                ledger.event(
                    "speculation_launch",
                    phase=env.phase,
                    task=index,
                    attempt=attempt,
                )
            if recorder is not None and recorder.enabled:
                recorder.instant(
                    "speculative-launch",
                    cat="attempt",
                    track=f"{env.phase} attempts",
                    args={"task": index, "attempt": attempt},
                )

    def monitor() -> None:
        """Launch backups for stragglers once the phase is mostly done."""
        if not policy.speculate:
            return
        if done_count < max(1, int(num_tasks * policy.speculation_threshold)):
            return
        if not completed_durations:
            return
        ordered = sorted(completed_durations)
        median = ordered[len(ordered) // 2]
        threshold = max(
            policy.speculation_factor * median, policy.speculation_min_runtime_s
        )
        now = time.monotonic()
        for index in range(num_tasks):
            if state.done[index] or state.has_backup[index]:
                continue
            if len(state.running[index]) != 1:
                continue  # nothing running (about to retry) or already racing
            started, __ = next(iter(state.running[index].values()))
            if now - started > threshold:
                launch(index, speculative=True)

    def reap_timeouts() -> None:
        """Abandon attempts past the watchdog bound and re-dispatch."""
        if policy.task_timeout_s is None:
            return
        now = time.monotonic()
        for index in range(num_tasks):
            if state.done[index]:
                continue
            for attempt, (started, speculative) in list(
                state.running[index].items()
            ):
                if now - started <= policy.task_timeout_s:
                    continue
                del state.running[index][attempt]
                state.abandoned[index].add(attempt)
                if speculative:
                    state.has_backup[index] = False
                report.attempts[index].append(
                    TaskAttempt(
                        attempt=attempt,
                        outcome="timeout",
                        speculative=speculative,
                        error=(
                            f"watchdog: attempt exceeded task_timeout_s="
                            f"{policy.task_timeout_s}"
                        ),
                        duration_s=now - started,
                        backoff_s=state.pending_backoff[index],
                    )
                )
                report.launched += 1
                report.failures += 1
                report.timeouts += 1
                state.pending_backoff[index] = 0.0
                if ledger is not None:
                    ledger.event(
                        "task_attempt",
                        phase=env.phase,
                        task=index,
                        attempt=attempt,
                        outcome="timeout",
                        speculative=speculative,
                        charged=True,
                        duration_s=round(now - started, 6),
                        error=(
                            f"watchdog: attempt exceeded task_timeout_s="
                            f"{policy.task_timeout_s}"
                        ),
                    )
                if recorder is not None and recorder.enabled:
                    recorder.instant(
                        "watchdog-timeout",
                        cat="attempt",
                        track=f"{env.phase} attempts",
                        args={
                            "task": index,
                            "attempt": attempt,
                            "task_timeout_s": policy.task_timeout_s,
                        },
                    )
                state.failed_counts[index] += 1
                if workers is not None:
                    workers.strike(tag_workers.get((index, attempt)))
                if state.failed_counts[index] >= policy.max_attempts:
                    if state.running[index]:
                        continue  # a sibling may yet win
                    raise _exhausted_error(
                        env.job,
                        env.phase,
                        index,
                        report.attempts[index],
                        "task timed out",
                    )
                if not state.running[index]:
                    state.pending_backoff[index] = _retry_backoff(
                        report,
                        policy,
                        index,
                        state.failed_counts[index],
                        recorder,
                        env.phase,
                        ledger,
                    )
                    launch(index, speculative=False)

    def worker_sweep() -> None:
        """The liveness sweep: enact queued deaths, re-dispatch lost work.

        This is the simulated heartbeat scan — it runs every loop
        iteration, independent of task completions, which is how a
        *silent* death (no failure report) still gets detected.
        """
        nonlocal done_count
        if workers is None or not workers.has_pending_deaths:
            return
        victims, invalidated = workers.enact_pending()
        vic = set(victims)
        now = time.monotonic()
        for index in range(num_tasks):
            if state.done[index]:
                continue
            for attempt, (started, speculative) in list(
                state.running[index].items()
            ):
                if tag_workers.get((index, attempt)) not in vic:
                    continue
                del state.running[index][attempt]
                state.abandoned[index].add(attempt)
                if speculative:
                    state.has_backup[index] = False
                _mark_worker_lost(
                    report, workers, index, attempt, speculative,
                    now - started, tag_workers[(index, attempt)],
                    recorder, env.phase, ledger,
                )
        for t in invalidated:
            # Committed map output died with its worker: the task is
            # no longer done and must run again (fresh attempt id).
            if state.done[t]:
                state.done[t] = False
                state.results[t] = None
                done_count -= 1
        for index in range(num_tasks):
            if not state.done[index] and not state.running[index]:
                launch(index, speculative=False)

    for index in range(num_tasks):
        launch(index, speculative=False)

    while done_count < num_tasks or (
        workers is not None and workers.has_pending_deaths
    ):
        worker_sweep()
        if done_count >= num_tasks:
            continue  # the sweep drained the queue or undid some tasks
        item = session.next_done(timeout=0.01)
        reap_timeouts()
        if item is None:
            monitor()
            continue
        (index, attempt, speculative, __, wname), out = item
        if attempt in state.abandoned[index]:
            continue  # the watchdog already wrote this attempt off
        if workers is not None:
            for spec in workers.worker_events_for(index, attempt):
                if spec.kind == "join-worker":
                    workers.enact_join(spec)
                else:
                    workers.queue_death(spec.worker or wname, spec)
            if workers.is_lost_worker(wname):
                # The worker died before delivering this result: the
                # report is withheld — the next sweep enacts the death
                # and re-dispatches the task (nothing charged).
                state.running[index].pop(attempt, None)
                state.abandoned[index].add(attempt)
                if speculative:
                    state.has_backup[index] = False
                _mark_worker_lost(
                    report, workers, index, attempt, speculative,
                    out.duration_s, wname, recorder, env.phase, ledger,
                )
                continue
        state.running[index].pop(attempt, None)
        if state.done[index]:
            _mark_lost(report, out, recorder, env.phase, ledger)
            continue
        if out.ok:
            _record_attempt(
                report, out, state.pending_backoff[index], recorder, env.phase,
                ledger=ledger,
            )
            state.pending_backoff[index] = 0.0
            state.results[index] = out.value
            state.done[index] = True
            state.winner_speculative[index] = out.speculative
            if workers is not None:
                workers.task_completed(index, wname)
            if out.speculative:
                report.speculative_wins += 1
            done_count += 1
            completed_durations.append(out.duration_s)
            monitor()
            continue
        if (
            out.bad_record is not None
            and supports_skip
            and policy.max_skipped_records > 0
            and out.bad_record[0] not in state.skips[index]
            and len(report.skipped[index]) < policy.max_skipped_records
        ):
            # Skipping mode: quarantine the record, re-dispatch at once.
            _record_attempt(
                report,
                out,
                state.pending_backoff[index],
                recorder,
                env.phase,
                outcome="skipped",
                ledger=ledger,
            )
            state.pending_backoff[index] = 0.0
            report.skipped[index].append(out.bad_record)
            state.skips[index] = state.skips[index] + (out.bad_record[0],)
            if ledger is not None:
                offset, path, lineno, __ = out.bad_record
                ledger.event(
                    "task_skip",
                    phase=env.phase,
                    task=index,
                    offset=offset,
                    path=path,
                    lineno=lineno,
                )
            if not state.running[index]:
                launch(index, speculative=False)
            continue
        # A failure (raised or corrupt).
        _record_attempt(
            report, out, state.pending_backoff[index], recorder, env.phase,
            ledger=ledger,
        )
        state.pending_backoff[index] = 0.0
        state.failed_counts[index] += 1
        if workers is not None:
            workers.strike(wname)
        if state.failed_counts[index] >= policy.max_attempts:
            if state.running[index]:
                # A sibling attempt is still in flight; it may yet win.
                continue
            raise _exhausted_error(
                env.job, env.phase, index, report.attempts[index], out.error
            )
        if not state.running[index]:
            state.pending_backoff[index] = _retry_backoff(
                report,
                policy,
                index,
                state.failed_counts[index],
                recorder,
                env.phase,
                ledger,
            )
            launch(index, speculative=False)
        monitor()
    return state.results, report
