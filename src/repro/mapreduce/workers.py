"""Named virtual workers: the cluster's failure domains.

Real Hadoop loses work at *node* granularity: a TaskTracker death takes
down every in-flight attempt on the node **and** every committed map
output stored on its local disks, forcing upstream re-execution before
reducers can fetch.  The executors in :mod:`repro.mapreduce.executor`
model only anonymous pool slots, so this module supplies the missing
identity layer: a :class:`WorkerPool` of named workers (``w0..wN``)
with a deterministic task→worker assignment that the recovery
dispatcher threads through every attempt it launches.

Workers are *virtual* — no thread or process is pinned to a name.  The
pool is pure bookkeeping: which names are alive, which are blacklisted,
how many strikes each has accumulated.  That keeps every executor
(serial, thread, process) on the identical assignment schedule, which
is what makes worker loss absorbable without perturbing canonical
outputs: the same attempts run on the same virtual workers everywhere,
so the same failure plan kills the same work everywhere.

The pool outlives a single job (the engine keeps one per cluster), so
blacklists and deaths persist across the jobs of a chained workflow —
like a real cluster, a node that died in job 1 is still dead in job 2
unless a replacement joined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import JobError, NoActiveWorkersError

__all__ = ["WorkerPool", "WorkerState"]


@dataclass(slots=True)
class WorkerState:
    """Liveness and failure accounting of one named worker."""

    name: str
    alive: bool = True
    blacklisted: bool = False
    strikes: int = 0


@dataclass(slots=True)
class WorkerPool:
    """Registry of named virtual workers with deterministic assignment.

    ``assign`` is a pure function of ``(task index, attempt number)``
    over the name-ordered active set, so the schedule is reproducible
    on any executor and at any completion order.  Mutations (``kill``,
    ``blacklist``, ``join``) are driven exclusively by declarative
    fault specs and charged task failures, both of which are themselves
    deterministic — the pool never consults wall clock or randomness.
    """

    size: int = 0
    workers: dict[str, WorkerState] = field(default_factory=dict)
    #: monotonically increasing id for join() names — a joined worker
    #: never reuses a dead worker's name.
    next_id: int = 0
    #: one-shot fault specs already consumed (opaque to the pool; the
    #: manager records fired ``FaultSpec`` objects here so a wildcard
    #: ``join-worker`` does not re-fire in every job of a workflow).
    fired: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise JobError(f"worker pool needs at least 1 worker, got {self.size}")
        if not self.workers:
            self.workers = {f"w{i}": WorkerState(f"w{i}") for i in range(self.size)}
            self.next_id = self.size

    # ------------------------------------------------------------------
    def active(self) -> list[str]:
        """Names able to take new assignments, in creation order."""
        return [
            w.name
            for w in self.workers.values()
            if w.alive and not w.blacklisted
        ]

    def dead(self) -> list[str]:
        return [w.name for w in self.workers.values() if not w.alive]

    def blacklisted(self) -> list[str]:
        return [
            w.name for w in self.workers.values() if w.alive and w.blacklisted
        ]

    def state(self, name: str) -> WorkerState:
        try:
            return self.workers[name]
        except KeyError:
            raise JobError(f"unknown worker {name!r}") from None

    def require_active(self) -> None:
        """Raise :class:`NoActiveWorkersError` when nothing can run."""
        if not self.active():
            raise NoActiveWorkersError(
                "job failed: every worker is dead or blacklisted "
                f"(dead: {self.dead()}, blacklisted: {self.blacklisted()})"
            )

    def assign(self, index: int, attempt: int) -> str:
        """The worker that runs attempt ``attempt`` of task ``index``.

        Round-robin over the active set keyed by ``index + attempt``:
        consecutive tasks spread across workers, and a retry of the
        same task moves to the *next* worker — Hadoop's scheduler
        avoiding the node that just failed the task.
        """
        names = self.active()
        if not names:
            self.require_active()
        return names[(index + attempt) % len(names)]

    def assign_preferring(
        self, index: int, attempt: int, preferred: tuple[str, ...]
    ) -> str:
        """Locality-aware assignment: prefer workers holding the data.

        On the *first* attempt, a live non-blacklisted worker from
        ``preferred`` (the split's block holders, in failover order)
        wins, indexed round-robin so co-located splits still spread.
        Retries and an empty live preference fall back to the blind
        :meth:`assign` schedule — the caller counts that fallback as a
        ``LOCALITY_MISSES`` remote read.
        """
        if attempt == 0 and preferred:
            active = set(self.active())
            live = [w for w in preferred if w in active]
            if live:
                return live[index % len(live)]
        return self.assign(index, attempt)

    # ------------------------------------------------------------------
    def kill(self, name: str) -> bool:
        """Mark ``name`` dead; True when it was alive until now."""
        state = self.state(name)
        if not state.alive:
            return False
        state.alive = False
        return True

    def strike(self, name: str) -> int:
        """Record one charged failure against ``name``; new strike count."""
        state = self.state(name)
        state.strikes += 1
        return state.strikes

    def blacklist(self, name: str) -> bool:
        """Remove ``name`` from rotation; True when newly blacklisted."""
        state = self.state(name)
        if state.blacklisted:
            return False
        state.blacklisted = True
        return True

    def join(self, name: str | None = None) -> str | None:
        """Add a fresh worker (``w{next_id}`` unless ``name`` given).

        Returns the new worker's name, or ``None`` when ``name`` is
        already registered (joining an existing worker is a no-op — a
        node cannot join twice, and a dead name stays dead).
        """
        if name is None:
            name = f"w{self.next_id}"
        if name in self.workers:
            return None
        self.workers[name] = WorkerState(name)
        self.next_id += 1
        return name

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view for ledger manifests and dashboards."""
        return {
            "total": len(self.workers),
            "active": self.active(),
            "dead": self.dead(),
            "blacklisted": self.blacklisted(),
        }
