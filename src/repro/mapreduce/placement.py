"""Block placement: which named workers hold which block replicas.

The durable-storage plane (:mod:`repro.mapreduce.blocks`) chunks every
DFS file into line-range blocks and stores ``replication`` checksummed
copies of each block on distinct workers from the cluster's
:class:`~repro.mapreduce.workers.WorkerPool`.  This module is the pure
bookkeeping half: :class:`BlockMeta` describes one block (line range,
byte size, CRC32C, replica holders in failover order) and
:class:`PlacementMap` is the namenode-style table mapping file paths to
their block lists.

Placement is deterministic — the first replica offset is derived from a
CRC of the path (never ``hash()``, which is salted per process), and
further replicas walk the active worker list — so identical runs place
identical replicas on every executor, which is what lets the chaos
golden tests assert byte-identical telemetry.

The map serializes to a single JSON line and persists as a DFS *side
file* (``_blocks/placement.json``), so a ``LocalFSDFS`` root carries its
placement across processes and ``python -m repro fsck`` can audit a
store long after the cluster object is gone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DFSError

__all__ = ["BlockMeta", "PlacementMap", "PLACEMENT_PATH", "REPLICA_ROOT"]

#: DFS namespace prefix holding every replica copy and the placement
#: map itself; the block plane ignores reads/writes under it so replica
#: traffic can never recursively re-enter the plane.
REPLICA_ROOT = "_blocks"
#: side-file path of the persisted placement map (one JSON line)
PLACEMENT_PATH = f"{REPLICA_ROOT}/placement.json"


@dataclass
class BlockMeta:
    """One block of one file: a line range plus its replica set.

    ``replicas`` lists worker names in failover order — a reader tries
    them first to last, so dropping a corrupt replica from the front
    is exactly HDFS's "switch to the next DataNode".
    """

    index: int
    start: int
    count: int
    nbytes: int
    crc: int
    replicas: list[str] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Last line number covered by this block (inclusive)."""
        return self.start + self.count - 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "count": self.count,
            "nbytes": self.nbytes,
            "crc": self.crc,
            "replicas": list(self.replicas),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BlockMeta":
        return cls(
            index=int(data["index"]),
            start=int(data["start"]),
            count=int(data["count"]),
            nbytes=int(data["nbytes"]),
            crc=int(data["crc"]),
            replicas=[str(w) for w in data.get("replicas", [])],
        )


class PlacementMap:
    """The namenode table: file path -> ordered block list.

    Also records the target ``replication`` factor and every worker
    name that ever held a replica, so an *offline* auditor (``fsck`` in
    a fresh process, with no live pool) still knows what "fully
    replicated" means and which workers it may repair onto.
    """

    def __init__(self, replication: int) -> None:
        if replication < 1:
            raise DFSError(
                f"replication factor must be >= 1, got {replication}"
            )
        self.replication = replication
        self.files: dict[str, list[BlockMeta]] = {}
        #: every worker name placement has ever used, in first-seen
        #: order — the offline repair candidate set
        self.workers: list[str] = []

    # ------------------------------------------------------------------
    def tracks(self, path: str) -> bool:
        return path in self.files

    def blocks(self, path: str) -> list[BlockMeta]:
        return self.files.get(path, [])

    def set_file(self, path: str, blocks: list[BlockMeta]) -> None:
        self.files[path] = blocks
        for block in blocks:
            for worker in block.replicas:
                if worker not in self.workers:
                    self.workers.append(worker)

    def drop_file(self, path: str) -> list[BlockMeta]:
        return self.files.pop(path, [])

    def note_worker(self, worker: str) -> None:
        if worker not in self.workers:
            self.workers.append(worker)

    def holders(self, path: str, start: int, end: int) -> tuple[str, ...]:
        """Workers holding the line range ``[start, end]`` of ``path``.

        Prefers workers holding *every* overlapping block (full
        locality); when no single worker covers the whole range, falls
        back to the union (partial locality beats a blind pick).  Order
        is deterministic: replica order of the first overlapping block,
        then first-seen order for the rest.
        """
        overlapping = [
            b for b in self.blocks(path) if b.start <= end and b.end >= start
        ]
        if not overlapping:
            return ()
        full: list[str] = []
        for worker in overlapping[0].replicas:
            if all(worker in b.replicas for b in overlapping):
                full.append(worker)
        if full:
            return tuple(full)
        union: list[str] = []
        for block in overlapping:
            for worker in block.replicas:
                if worker not in union:
                    union.append(worker)
        return tuple(union)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Single-line JSON form (side files reject embedded newlines)."""
        return json.dumps(
            {
                "replication": self.replication,
                "workers": list(self.workers),
                "files": {
                    path: [b.as_dict() for b in blocks]
                    for path, blocks in sorted(self.files.items())
                },
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "PlacementMap":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise DFSError(f"corrupt placement map: {exc}") from exc
        if not isinstance(data, dict) or "replication" not in data:
            raise DFSError("corrupt placement map: missing 'replication'")
        pmap = cls(int(data["replication"]))
        pmap.workers = [str(w) for w in data.get("workers", [])]
        for path, blocks in data.get("files", {}).items():
            pmap.files[path] = [BlockMeta.from_dict(b) for b in blocks]
        return pmap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nblocks = sum(len(b) for b in self.files.values())
        return (
            f"PlacementMap({len(self.files)} files, {nblocks} blocks, "
            f"replication={self.replication})"
        )
