"""Map-reduce job specification and task contexts (Section 2).

A job is the classic two-function program::

    map:    (k1, v1)   -> [(k2, v2)]
    reduce: (k2, [v2]) -> [k3/v3 output records]

Map input records are ``(line_number, record)`` pairs read from DFS
files; reduce output records are written back to DFS.  By default both
sides are text lines, but a job may declare record codecs
(:class:`~repro.data.io.RecordCodec`):

* ``input_codec`` — map input crosses as typed records (decoded once at
  split time, or handed over decoded from the upstream job's reduce);
  a mapping assigns a codec per declared input path for jobs mixing
  record formats.
* ``output_codec`` — reduce emissions are typed records; the engine
  encodes each exactly once when writing the part file (byte accounting
  and durability) and keeps the objects for the next job in the chain.

The intermediate keys of every join job in this library are
partition-cell ids (ints) and the intermediate values are small tuples;
their shuffle size is charged through the job's :class:`ShuffleCodec`,
which defaults to the generic :func:`estimate_size` walk.  Typed jobs
install O(1) sizers that reproduce the exact byte counts the string
path would report, so the cost model sees identical volumes either way.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.data.io import RecordCodec
from repro.errors import JobError
from repro.kernels import numpy_or_none
from repro.mapreduce.counters import C, Counters

__all__ = [
    "MapReduceJob",
    "MapContext",
    "SpillingMapContext",
    "ReduceContext",
    "ShuffleCodec",
    "BucketSegment",
    "DEFAULT_SHUFFLE_CODEC",
    "estimate_size",
    "default_sort_key",
    "identity_partitioner",
    "hash_partitioner",
]

#: map(key, value, context) -> None; emits via ``context.emit``.
Mapper = Callable[[Any, str, "MapContext"], None]
#: reduce(key, values, context) -> None; emits via ``context.emit``.
Reducer = Callable[[Any, Sequence[Any], "ReduceContext"], None]


def estimate_size(obj: Any) -> int:
    """Deterministic serialized-size estimate of an intermediate record.

    Strings count their length; numbers count 8 bytes; containers count
    their elements plus 2 bytes of framing.  Exact wire formats do not
    matter — the cost model only needs sizes that scale with the data.
    """
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bool) or obj is None:
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, (tuple, list)):
        return 2 + sum(estimate_size(o) for o in obj)
    if isinstance(obj, dict):
        return 2 + sum(
            estimate_size(k) + estimate_size(v) for k, v in obj.items()
        )
    return 16  # conservative default for exotic values


@dataclass(frozen=True)
class ShuffleCodec:
    """Per-job byte sizing of intermediate ``(key, value)`` pairs.

    ``key_size``/``value_size`` return the charged serialized size of one
    key/value.  The default walks the object with :func:`estimate_size`;
    typed jobs install constant-time sizers that reproduce the byte
    counts of their string-era value layout, keeping MAP_OUTPUT_BYTES —
    and everything the cost model derives from it — unchanged.
    """

    key_size: Callable[[Any], int]
    value_size: Callable[[Any], int]


#: the seed behaviour: generic structural size estimate on both parts
DEFAULT_SHUFFLE_CODEC = ShuffleCodec(estimate_size, estimate_size)


def default_sort_key(key: Any) -> Any:
    """Identity ordering of intermediate keys — the job default.

    A named function (not a lambda) so the engine can *recognise* the
    default by identity: the columnar reduce path replaces the Python
    stable sort with a numpy stable argsort only when it can prove the
    sort key is the key itself.
    """
    return key


def identity_partitioner(key: Any, num_reducers: int) -> int:
    """Route integer keys directly: reducer ``key % num_reducers``.

    With one reducer per partition-cell and cell ids as keys this is the
    paper's routing rule "pair ``(c_i, u)`` is routed to reducer ``c_i``".
    """
    return int(key) % num_reducers


def hash_partitioner(key: Any, num_reducers: int) -> int:
    """Hadoop-style hash partitioning for non-integer keys."""
    return hash(key) % num_reducers


class BucketSegment:
    """One map task's emissions to one reducer bucket, stored columnar.

    The columnar twin of a ``list[(key, value)]`` bucket slice: ``keys``
    is an int64 array and ``values`` the parallel list of emitted
    values, both in emission order.  Segments are what
    :meth:`MapContext.emit_batch` produces and what the engine's numpy
    shuffle merge consumes — per-reducer segments concatenated in map
    task order, then stably argsorted by key, reproduce the scalar
    path's ``(sort_key(key), map_task, seq)`` order exactly.

    ``keys`` ships across process boundaries as raw bytes
    (``__getstate__`` packs ``tobytes()``), which is both smaller and
    pickle-protocol-5 friendly compared to per-pair key objects.
    """

    __slots__ = ("keys", "values")

    def __init__(self, keys, values: list) -> None:
        self.keys = keys
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def pairs(self) -> list[tuple[Any, Any]]:
        """The row form: ``(key, value)`` pairs in emission order."""
        return list(zip(self.keys.tolist(), self.values))

    def __getstate__(self):
        return (self.keys.tobytes(), self.values)

    def __setstate__(self, state) -> None:
        np = numpy_or_none()
        raw, self.values = state
        self.keys = np.frombuffer(raw, dtype=np.int64)


class MapContext:
    """Per-map-task emission context."""

    def __init__(
        self,
        counters: Counters,
        num_reducers: int,
        partitioner,
        shuffle_codec: ShuffleCodec = DEFAULT_SHUFFLE_CODEC,
        columnar: bool = True,
    ) -> None:
        self._counters = counters
        self._num_reducers = num_reducers
        self._partitioner = partitioner
        # Bound once: emit() is the hottest call in a map task.
        self._key_size = shuffle_codec.key_size
        self._value_size = shuffle_codec.value_size
        self._columnar = columnar
        self.buckets: list[list[tuple[Any, Any]]] = [[] for __ in range(num_reducers)]
        #: estimated bytes per bucket — the reduce task that merges
        #: bucket ``r`` of every map task charges these as input bytes
        self.bucket_bytes: list[int] = [0] * num_reducers
        #: columnar buckets (one list of :class:`BucketSegment` per
        #: reducer), created by the first :meth:`emit_batch` call; a
        #: batch mapper must emit through exactly one of the two APIs
        self.segments: list[list[BucketSegment]] | None = None
        self.input_records = 0
        self.output_records = 0
        self.output_bytes = 0
        self.compute_ops = 0

    def emit(self, key: Any, value: Any) -> None:
        """Emit one intermediate ``(k2, v2)`` pair."""
        r = self._partitioner(key, self._num_reducers)
        if not 0 <= r < self._num_reducers:
            raise JobError(
                f"partitioner routed key {key!r} to invalid reducer {r}"
            )
        self.buckets[r].append((key, value))
        nbytes = self._key_size(key) + self._value_size(value)
        self.bucket_bytes[r] += nbytes
        self.output_records += 1
        self.output_bytes += nbytes
        self._counters.add(C.GROUP_ENGINE, C.MAP_OUTPUT_RECORDS)
        self._counters.add(C.GROUP_ENGINE, C.MAP_OUTPUT_BYTES, nbytes)

    def pair_nbytes(self, key: Any, value: Any) -> int:
        """Estimated shuffle bytes of one ``(key, value)`` pair.

        Exposed for batch mappers, which append to :attr:`buckets` /
        :attr:`bucket_bytes` directly and settle the emission counters
        in one :meth:`account_emissions` call.
        """
        return self._key_size(key) + self._value_size(value)

    def account_emissions(self, records: int, nbytes: int) -> None:
        """Bulk-settle the counters for emissions a batch mapper has
        already appended to the buckets.

        Equivalent to ``records`` individual :meth:`emit` calls totalling
        ``nbytes`` (counters are additive, so one bulk add produces the
        same final values).
        """
        self.output_records += records
        self.output_bytes += nbytes
        self._counters.add(C.GROUP_ENGINE, C.MAP_OUTPUT_RECORDS, records)
        self._counters.add(C.GROUP_ENGINE, C.MAP_OUTPUT_BYTES, nbytes)

    def add_compute(self, ops: int) -> None:
        """Report CPU work (e.g. candidate-pair checks) to the cost model."""
        self.compute_ops += ops
        self._counters.add(C.GROUP_ENGINE, C.MAP_COMPUTE_OPS, ops)

    def counter(self, group: str, name: str, amount: int = 1) -> None:
        """Increment a user counter."""
        self._counters.add(group, name, amount)

    def emit_batch(self, keys, counts, values, sizes) -> None:
        """Bulk-emit: group ``g`` sends ``values[g]`` to every key of its
        slice of ``keys``.

        Parameters
        ----------
        keys:
            Flattened integer target keys, group-major: group ``g``'s
            targets occupy the next ``counts[g]`` entries.  An int64
            numpy array on the columnar path (a list also works on the
            fallback paths).
        counts:
            Per-group target count, parallel to ``values``.
        values:
            One emitted value per group.
        sizes:
            Per-group charged bytes of one ``(key, value)`` pair — what
            :meth:`pair_nbytes` returns for that group.  Requires the
            job's key sizer to be constant per key (true for every
            integer-cell-keyed join job).

        Semantically equivalent to the nested scalar loop
        ``for g: for key in targets(g): emit(key, values[g])`` — same
        pairs, same per-bucket order, same counter totals.  On the
        columnar path the emissions are routed with one vectorized
        partition + stable argsort and stored as per-bucket
        :class:`BucketSegment` runs instead of ``(key, value)`` pairs.
        """
        np = numpy_or_none()
        num_reducers = self._num_reducers
        if np is None or not self._columnar:
            # Row fallback (``columnar_shuffle=False`` baseline): the
            # same direct bucket appends a hand-written batch mapper
            # would do, settled with one bulk accounting call.
            buckets = self.buckets
            bucket_bytes = self.bucket_bytes
            partitioner = self._partitioner
            identity = partitioner is identity_partitioner
            if np is not None and not isinstance(keys, list):
                keys = keys.tolist()
            total = 0
            tbytes = 0
            pos = 0
            for g, value in enumerate(values):
                cnt = counts[g]
                nb = sizes[g]
                for key in keys[pos : pos + cnt]:
                    r = key % num_reducers if identity else partitioner(
                        key, num_reducers
                    )
                    if not 0 <= r < num_reducers:
                        raise JobError(
                            f"partitioner routed key {key!r} to invalid "
                            f"reducer {r}"
                        )
                    buckets[r].append((key, value))
                    bucket_bytes[r] += nb
                pos += cnt
                total += cnt
                tbytes += cnt * nb
            self.account_emissions(total, tbytes)
            return
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if self._partitioner is identity_partitioner:
            routed = keys % num_reducers  # non-negative, like Python's %
        else:
            routed = np.fromiter(
                (self._partitioner(int(k), num_reducers) for k in keys),
                dtype=np.int64,
                count=len(keys),
            )
            bad = (routed < 0) | (routed >= num_reducers)
            if bad.any():
                k = int(keys[int(np.flatnonzero(bad)[0])])
                raise JobError(
                    f"partitioner routed key {k!r} to invalid reducer "
                    f"{self._partitioner(k, num_reducers)}"
                )
        # Group index and per-pair size of every flattened emission.
        group_of = np.repeat(np.arange(len(values), dtype=np.int64), counts)
        pair_sizes = np.repeat(np.asarray(sizes, dtype=np.int64), counts)
        # Stable sort by reducer: within one bucket the emissions stay
        # in flattened (group, target) order — the scalar emission order.
        order = np.argsort(routed, kind="stable")
        sorted_keys = keys[order]
        sorted_buckets = routed[order]
        sorted_groups = group_of[order]
        sorted_sizes = pair_sizes[order]
        if self.segments is None:
            self.segments = [[] for __ in range(num_reducers)]
        segments = self.segments
        bucket_bytes = self.bucket_bytes
        n = len(sorted_buckets)
        if n:
            bounds = np.flatnonzero(sorted_buckets[1:] != sorted_buckets[:-1]) + 1
            starts = np.concatenate(([0], bounds))
            seg_bytes = np.add.reduceat(sorted_sizes, starts)
            ends = np.append(bounds, n)
            for i, (lo, hi) in enumerate(zip(starts.tolist(), ends.tolist())):
                r = int(sorted_buckets[lo])
                members = sorted_groups[lo:hi].tolist()
                segments[r].append(
                    BucketSegment(
                        sorted_keys[lo:hi], [values[g] for g in members]
                    )
                )
                bucket_bytes[r] += int(seg_bytes[i])
        self.account_emissions(n, int(pair_sizes.sum()))


class SpillingMapContext(MapContext):
    """A :class:`MapContext` with a per-task memory budget.

    ``budget`` bounds the estimated bytes of *buffered* emissions (the
    same :class:`ShuffleCodec` sizing the canonical ``MAP_OUTPUT_BYTES``
    counter charges, so accounting is free on the typed path).  Crossing
    the budget spills every bucket's buffered slice as a sorted run —
    the engine writes the runs to the DFS and the reduce side merges
    them back with :func:`repro.mapreduce.spill.merge_runs`.

    Spill points are a pure function of the emission sequence, so they
    are identical on the serial, thread and process executors; the only
    observable difference of a budgeted run is the ``spill*`` telemetry.
    """

    def __init__(
        self,
        counters: Counters,
        num_reducers: int,
        partitioner,
        shuffle_codec: ShuffleCodec = DEFAULT_SHUFFLE_CODEC,
        *,
        budget: int,
        sort_key,
    ) -> None:
        super().__init__(counters, num_reducers, partitioner, shuffle_codec)
        if budget <= 0:
            raise JobError(f"memory budget must be positive, got {budget}")
        self._budget = budget
        self._sort_key = sort_key
        self._flushed_bytes = 0
        #: serialized sorted runs per bucket, in spill order
        self.spill_runs: list[list[list[str]]] = [[] for __ in range(num_reducers)]
        #: bucket-local sequence number of the first *buffered* record
        self.spill_base: list[int] = [0] * num_reducers

    @property
    def spilled(self) -> bool:
        return any(self.spill_runs)

    def emit(self, key: Any, value: Any) -> None:
        super().emit(key, value)
        if self.output_bytes - self._flushed_bytes > self._budget:
            self._spill()

    def emit_batch(self, keys, counts, values, sizes) -> None:
        """Batch emission under a budget: replay the scalar sequence.

        Spill points are a pure function of the emission sequence, so a
        budgeted task must observe every emission individually — the
        batch collapses to the equivalent :meth:`emit` loop (identical
        spill files, ``SPILL*`` counters and byte accounting), while the
        *mapper* still gets to compute its routing columnarly.
        """
        if not isinstance(keys, list):
            keys = keys.tolist()
        emit = self.emit
        pos = 0
        for g, value in enumerate(values):
            cnt = counts[g]
            for key in keys[pos : pos + cnt]:
                emit(key, value)
            pos += cnt

    def _spill(self) -> None:
        from repro.mapreduce.spill import encode_spill_record, sort_run

        counters = self._counters
        for r, bucket in enumerate(self.buckets):
            if not bucket:
                continue
            base = self.spill_base[r]
            lines = [
                encode_spill_record(seq, key, value)
                for seq, key, value in sort_run(bucket, base, self._sort_key)
            ]
            self.spill_runs[r].append(lines)
            self.spill_base[r] = base + len(bucket)
            self.buckets[r] = []
            counters.add(C.GROUP_ENGINE, C.SPILLED_RECORDS, len(lines))
            counters.add(C.GROUP_ENGINE, C.SPILL_FILES)
            counters.add(
                C.GROUP_ENGINE,
                C.SPILL_BYTES,
                sum(len(line) + 1 for line in lines),
            )
        self._flushed_bytes = self.output_bytes

    def unspill(self) -> None:
        """Rebuild full in-memory buckets in original emission order.

        Used before a combiner runs: the combiner contract is whole-
        bucket grouping, so the engine restores the unbounded bucket
        shape (the spill telemetry stays — the spills did happen).
        """
        from repro.mapreduce.spill import decode_spill_record

        for r, runs in enumerate(self.spill_runs):
            if not runs:
                continue
            base = self.spill_base[r]
            records = [
                decode_spill_record(line) for run in runs for line in run
            ]
            records.extend(
                (base + i, key, value)
                for i, (key, value) in enumerate(self.buckets[r])
            )
            records.sort(key=lambda rec: rec[0])
            self.buckets[r] = [(key, value) for __, key, value in records]
            self.spill_runs[r] = []
            self.spill_base[r] = 0


class ReduceContext:
    """Per-reduce-task emission context."""

    def __init__(self, counters: Counters, reducer_id: int) -> None:
        self._counters = counters
        self.reducer_id = reducer_id
        #: emitted output records: text lines, or typed records when the
        #: job declares an ``output_codec`` (encoded once at write time)
        self.output_lines: list[Any] = []
        self.input_records = 0
        self.compute_ops = 0

    def emit(self, record: Any) -> None:
        """Emit one output record for this task's part file.

        A text line for codec-less jobs; a typed record (encoded exactly
        once by the engine when the part file is written) for jobs with
        an ``output_codec``.
        """
        self.output_lines.append(record)
        self._counters.add(C.GROUP_ENGINE, C.REDUCE_OUTPUT_RECORDS)

    def emit_all(self, records) -> None:
        """Bulk :meth:`emit`: append ``records`` in order, count once.

        Counters are additive, so one bulk add equals the per-record
        increments; output order is the extend order.
        """
        lines = self.output_lines
        before = len(lines)
        lines.extend(records)
        self._counters.add(
            C.GROUP_ENGINE, C.REDUCE_OUTPUT_RECORDS, len(lines) - before
        )

    def add_compute(self, ops: int) -> None:
        """Report CPU work (e.g. join comparisons) to the cost model."""
        self.compute_ops += ops
        self._counters.add(C.GROUP_ENGINE, C.REDUCE_COMPUTE_OPS, ops)

    def counter(self, group: str, name: str, amount: int = 1) -> None:
        """Increment a user counter."""
        self._counters.add(group, name, amount)


@dataclass
class MapReduceJob:
    """Specification of one map-reduce job.

    Parameters
    ----------
    name:
        Human-readable job name (appears in reports).
    input_paths:
        DFS files or directories read as map input.
    output_path:
        DFS directory the reduce part files are written under.
    mapper, reducer:
        The two user functions.  ``reducer=None`` runs a map-only job
        whose emissions are written out partitioned but unsorted (used
        for selection/filter steps of the 2-way Cascade).
    num_reducers:
        Number of reduce tasks; the join jobs use one per partition-cell.
    partitioner:
        ``(key, num_reducers) -> reducer index``.
    sort_key:
        Ordering applied to intermediate keys within a reduce task.
    combiner:
        Optional map-side pre-aggregation ``(key, values) -> [values]``,
        applied per map task and per reducer bucket before the shuffle —
        Hadoop's combiner.  Must be semantically idempotent with the
        reducer's aggregation (sums, counts, maxima...).
    input_codec:
        ``None`` (map input is raw text lines, the seed behaviour), one
        :class:`~repro.data.io.RecordCodec` applied to every input path,
        or a mapping ``declared input path -> codec`` for jobs whose
        inputs mix record formats (the Cascade steps read partially
        joined tuples on one side and base rectangles on the other).
    output_codec:
        ``None`` (reduce emissions are text lines) or the codec of the
        typed records the reducer emits.  The engine encodes each record
        exactly once when writing the part file and hands the objects to
        the next job in the chain.
    shuffle_codec:
        Byte sizing of intermediate pairs; see :class:`ShuffleCodec`.
    batch_mapper:
        Optional columnar twin of ``mapper``: called once per map split
        as ``batch_mapper(split, ctx, batch)`` with the full list of
        ``(path, lineno, record, nbytes)`` entries and, when the split
        reads a rectangle-codec file, the split's cached
        :class:`~repro.kernels.batch.RectBatch` (``None`` otherwise).
        Must produce the exact emissions (same pairs, same per-bucket
        order) and counter totals as running ``mapper`` over the split
        record by record — emitting through
        :meth:`MapContext.emit_batch` guarantees this by construction.
        The engine only uses it when the resolved kernel is ``numpy``
        and neither fault injection nor retry recovery is active (their
        skipping/poison hooks are per-record); under a ``memory_budget``
        it runs with batch emissions replayed record by record so spill
        points are unchanged.  The scalar ``mapper`` remains the
        reference implementation and must always be provided.
    """

    name: str
    input_paths: list[str]
    output_path: str
    mapper: Mapper
    reducer: Reducer | None
    num_reducers: int
    partitioner: Callable[[Any, int], int] = identity_partitioner
    sort_key: Callable[[Any], Any] = field(default=default_sort_key)
    combiner: Callable[[Any, list], list] | None = None
    input_codec: RecordCodec | Mapping[str, RecordCodec] | None = None
    output_codec: RecordCodec | None = None
    shuffle_codec: ShuffleCodec = DEFAULT_SHUFFLE_CODEC
    batch_mapper: Callable | None = None

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise JobError(f"job {self.name!r} needs >= 1 reducers")
        if not self.input_paths:
            raise JobError(f"job {self.name!r} has no input paths")
        if not self.output_path:
            raise JobError(f"job {self.name!r} has no output path")
        if isinstance(self.input_codec, Mapping):
            unknown = set(self.input_codec) - set(self.input_paths)
            if unknown:
                raise JobError(
                    f"job {self.name!r} assigns codecs to non-input "
                    f"paths: {sorted(unknown)}"
                )

    def input_codec_for(self, input_path: str) -> RecordCodec | None:
        """The codec decoding records of one *declared* input path."""
        if isinstance(self.input_codec, Mapping):
            return self.input_codec.get(input_path)
        return self.input_codec


def format_output(key: Any, value: Any) -> str:
    """Default k3/v3 text encoding used by map-only jobs."""
    return f"{key}\t{value}"
