"""Pluggable task executors: how the simulated cluster runs its tasks.

The engine models a k-reducer Hadoop cluster; this module decides how
much *actual* hardware parallelism backs that model.  A phase (all map
tasks, or all reduce tasks, of one job) is a list of independent task
invocations ``worker(payload, index)`` where

* ``payload`` is the phase-wide immutable state (the job plus the task
  inputs), shared by reference in-process and inherited by forked
  workers, and
* ``index`` is the task id (split index or reducer id).

Three back-ends are provided:

``serial``
    Run tasks one after another in the calling thread (the seed
    behaviour, and the default).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Python threads
    only overlap during C-level work, but the back-end exercises the
    same task isolation as processes and is cheap to spin up.
``process``
    A ``fork``-based :class:`multiprocessing.pool.Pool`.  Workers
    inherit the payload through copy-on-write memory, so job closures
    (mappers capturing grids, marking engines, joiners) need not be
    picklable; only task *results* cross the process boundary.  On
    platforms without ``fork`` the back-end degrades to threads.

Determinism contract: ``run_phase`` returns results indexed by task id
regardless of completion order, and workers must be pure functions of
``(payload, index)``.  The engine merges results in task-id order, so a
job produces byte-identical output at every worker count.

Timing contract (observability): executors do not time tasks — the task
functions stamp ``time.perf_counter()`` at entry and exit *inside the
worker* and ship the stamps back in their result objects.  That way the
per-task durations the dashboard and trace report are true worker-side
durations on every back-end: thread-pool queueing shows up as a gap
between dispatch and ``t_start``, not as inflated task time, and forked
workers' stamps are directly comparable with the parent's because
``perf_counter`` is the system-wide CLOCK_MONOTONIC on Linux.  Back-ends
that fall back (``process`` without ``fork`` support degrades to
threads) therefore keep honest timelines with no executor cooperation.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.errors import JobError

__all__ = [
    "EXECUTORS",
    "TaskExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "default_workers",
]

#: worker(payload, task_index) -> task result
TaskWorker = Callable[[Any, int], Any]


def default_workers() -> int:
    """Worker count when the caller does not pick one: usable CPUs."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class TaskExecutor(abc.ABC):
    """Runs one phase of independent tasks, preserving task-id order."""

    name: str = "abstract"

    @abc.abstractmethod
    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        """Run ``worker(payload, i)`` for ``i in range(num_tasks)``.

        Returns the results ordered by task id.  A task exception
        aborts the phase and propagates to the caller.
        """


class SerialExecutor(TaskExecutor):
    """Tasks run inline, one after another — the seed engine behaviour."""

    name = "serial"

    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        return [worker(payload, i) for i in range(num_tasks)]


class ThreadExecutor(TaskExecutor):
    """Tasks run on a thread pool sharing the payload by reference."""

    name = "thread"

    def __init__(self, num_workers: int | None = None) -> None:
        self.num_workers = num_workers if num_workers else default_workers()

    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        if num_tasks <= 1 or self.num_workers <= 1:
            return SerialExecutor().run_phase(worker, num_tasks, payload)
        with ThreadPoolExecutor(
            max_workers=min(self.num_workers, num_tasks)
        ) as pool:
            futures = [
                pool.submit(worker, payload, i) for i in range(num_tasks)
            ]
            # Collect in submission order: results land at their task id
            # and the lowest failing task id is the one that raises.
            return [f.result() for f in futures]


# Payload handoff for forked workers.  Set in the parent immediately
# before the pool forks; children inherit it through copy-on-write, so
# nothing here is ever pickled.
_FORK_STATE: tuple[TaskWorker, Any] | None = None


def _run_forked_task(index: int):
    worker, payload = _FORK_STATE  # type: ignore[misc] - set before fork
    return worker(payload, index)


class ProcessExecutor(TaskExecutor):
    """Tasks run on forked worker processes (true multi-core execution)."""

    name = "process"

    def __init__(self, num_workers: int | None = None) -> None:
        self.num_workers = num_workers if num_workers else default_workers()

    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        global _FORK_STATE
        if num_tasks <= 1 or self.num_workers <= 1:
            return SerialExecutor().run_phase(worker, num_tasks, payload)
        if "fork" not in multiprocessing.get_all_start_methods():
            # No copy-on-write payload inheritance without fork (e.g.
            # Windows); threads keep the same semantics and determinism.
            return ThreadExecutor(self.num_workers).run_phase(
                worker, num_tasks, payload
            )
        ctx = multiprocessing.get_context("fork")
        _FORK_STATE = (worker, payload)
        try:
            with ctx.Pool(processes=min(self.num_workers, num_tasks)) as pool:
                # imap (not map) so the lowest failing task id raises
                # first, matching the serial error behaviour.
                return list(
                    pool.imap(_run_forked_task, range(num_tasks), chunksize=1)
                )
        finally:
            _FORK_STATE = None


EXECUTORS: dict[str, type[TaskExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def make_executor(name: str, num_workers: int | None = None) -> TaskExecutor:
    """Build the named executor (``serial`` ignores ``num_workers``)."""
    cls = EXECUTORS.get(name)
    if cls is None:
        raise JobError(
            f"unknown executor {name!r}; choose one of {sorted(EXECUTORS)}"
        )
    if cls is SerialExecutor:
        return cls()
    return cls(num_workers)
