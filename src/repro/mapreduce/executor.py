"""Pluggable task executors: how the simulated cluster runs its tasks.

The engine models a k-reducer Hadoop cluster; this module decides how
much *actual* hardware parallelism backs that model.  A phase (all map
tasks, or all reduce tasks, of one job) is a list of independent task
invocations ``worker(payload, index)`` where

* ``payload`` is the phase-wide immutable state (the job plus the task
  inputs), shared by reference in-process and inherited by forked
  workers, and
* ``index`` is the task id (split index or reducer id).

Three back-ends are provided:

``serial``
    Run tasks one after another in the calling thread (the seed
    behaviour, and the default).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Python threads
    only overlap during C-level work, but the back-end exercises the
    same task isolation as processes and is cheap to spin up.
``process``
    A ``fork``-based :class:`multiprocessing.pool.Pool`.  Workers
    inherit the payload through copy-on-write memory, so job closures
    (mappers capturing grids, marking engines, joiners) need not be
    picklable; only task *results* cross the process boundary.  On
    platforms without ``fork`` the back-end degrades to threads.

Determinism contract: ``run_phase`` returns results indexed by task id
regardless of completion order, and workers must be pure functions of
``(payload, index)``.  The engine merges results in task-id order, so a
job produces byte-identical output at every worker count.

Timing contract (observability): executors do not time tasks — the task
functions stamp ``time.perf_counter()`` at entry and exit *inside the
worker* and ship the stamps back in their result objects.  That way the
per-task durations the dashboard and trace report are true worker-side
durations on every back-end: thread-pool queueing shows up as a gap
between dispatch and ``t_start``, not as inflated task time, and forked
workers' stamps are directly comparable with the parent's because
``perf_counter`` is the system-wide CLOCK_MONOTONIC on Linux.  Back-ends
that fall back (``process`` without ``fork`` support degrades to
threads) therefore keep honest timelines with no executor cooperation.

Result contract: everything a task hands back must be **picklable** —
the process back-end ships results through a pipe.  That includes the
observability payloads riding in result objects: worker-side time
stamps, counter shards, and (under ``--profile``) the raw cProfile
stats dict ``{(file, line, func): (cc, nc, tt, ct, callers)}``, which
is plain tuples/dicts/strings by construction.

Worker identity: executors know nothing about the *named* virtual
workers of :mod:`repro.mapreduce.workers` — pool slots here are
anonymous interchangeable capacity.  The recovery dispatcher assigns
each attempt a worker name parent-side and threads it through the
opaque session tag (the 5-tuple ``(index, attempt, speculative, skips,
worker_name)``), so failure domains are identical on every back-end
without the back-ends cooperating: killing virtual worker ``w2`` loses
the same attempts and the same committed map outputs whether the tasks
physically ran on one thread or sixteen forks.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import pickle
import threading
import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Any

from repro.errors import JobError

__all__ = [
    "EXECUTORS",
    "TaskExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PhaseSession",
    "make_executor",
    "default_workers",
]

#: worker(payload, task_index) -> task result
TaskWorker = Callable[[Any, int], Any]


def default_workers() -> int:
    """Worker count when the caller does not pick one: usable CPUs."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class PhaseSession(abc.ABC):
    """Streaming task dispatch: submit tagged invocations, await completions.

    The recovery layer (:mod:`repro.mapreduce.faults`) uses sessions for
    speculative execution, where the task population grows *while* the
    phase runs — a straggler gets a backup attempt submitted mid-flight
    and the first finisher wins — and for the hung-task watchdog, which
    sweeps between completions and re-dispatches any attempt past its
    wall-clock bound (an abandoned attempt keeps occupying its pool slot
    until it returns or the session closes; its late result is dropped
    by the caller).  ``run_phase`` cannot express either (its task list
    is fixed up front), so parallel back-ends expose this lower-level
    API as well:

    * :meth:`submit` enqueues ``worker(payload, tag)`` where ``tag`` is
      an arbitrary (picklable) value identifying the invocation — the
      recovery layer uses ``(task index, attempt id, speculative)``
      tuples;
    * :meth:`next_done` blocks until any submitted invocation finishes
      and returns ``(tag, result)``, or ``None`` on timeout so the
      caller can run its straggler monitor and watchdog sweep between
      completions.

    Sessions are context managers; leaving the ``with`` block releases
    the pool, abandoning invocations that are still running (their
    results are discarded — exactly the semantics a speculative loser
    needs).
    """

    @abc.abstractmethod
    def submit(self, tag: Any) -> None:
        """Enqueue one ``worker(payload, tag)`` invocation."""

    @abc.abstractmethod
    def next_done(self, timeout: float | None = None):
        """``(tag, result)`` of the next finished invocation, or ``None``.

        Raises the invocation's exception if it raised.  ``None`` is
        returned only on timeout; with no timeout the call blocks until
        a completion arrives (calling with nothing outstanding is a
        caller bug and raises :class:`~repro.errors.JobError`).
        """

    def __enter__(self) -> "PhaseSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @abc.abstractmethod
    def close(self) -> None:
        """Release the pool, discarding unfinished invocations."""


class TaskExecutor(abc.ABC):
    """Runs one phase of independent tasks, preserving task-id order."""

    name: str = "abstract"

    @abc.abstractmethod
    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        """Run ``worker(payload, i)`` for ``i in range(num_tasks)``.

        Returns the results ordered by task id.  A task exception
        aborts the phase and propagates to the caller.
        """

    def open_session(self, worker: TaskWorker, payload: Any) -> PhaseSession | None:
        """A streaming :class:`PhaseSession`, or ``None`` when the
        back-end has no useful concurrency to offer (serial execution,
        or a single worker).  Callers must fall back to :meth:`run_phase`
        on ``None``."""
        return None


class SerialExecutor(TaskExecutor):
    """Tasks run inline, one after another — the seed engine behaviour."""

    name = "serial"

    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        return [worker(payload, i) for i in range(num_tasks)]


class ThreadExecutor(TaskExecutor):
    """Tasks run on a thread pool sharing the payload by reference."""

    name = "thread"

    def __init__(self, num_workers: int | None = None) -> None:
        self.num_workers = num_workers if num_workers else default_workers()

    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        if num_tasks <= 1 or self.num_workers <= 1:
            return SerialExecutor().run_phase(worker, num_tasks, payload)
        with ThreadPoolExecutor(
            max_workers=min(self.num_workers, num_tasks)
        ) as pool:
            futures = [
                pool.submit(worker, payload, i) for i in range(num_tasks)
            ]
            # Wait until everything finished or something failed; a
            # failure cancels the still-queued tail instead of running
            # every remaining task to completion first (the pool starts
            # tasks in submission order, so cancelled futures are always
            # a suffix and never hide a lower failing task id).
            wait(futures, return_when=FIRST_EXCEPTION)
            if any(f.done() and not f.cancelled() and f.exception() for f in futures):
                for f in futures:
                    f.cancel()
            # Collect in submission order: results land at their task id
            # and the lowest failing task id is the one that raises.
            return [f.result() for f in futures if not f.cancelled()]

    def open_session(self, worker: TaskWorker, payload: Any) -> PhaseSession | None:
        if self.num_workers <= 1:
            return None
        return _ThreadSession(worker, payload, self.num_workers)


class _ThreadSession(PhaseSession):
    """Thread-pool session: payload shared by reference, tags by value."""

    def __init__(self, worker: TaskWorker, payload: Any, num_workers: int) -> None:
        self._pool = ThreadPoolExecutor(max_workers=num_workers)
        self._worker = worker
        self._payload = payload
        self._pending: dict[Any, Any] = {}  # future -> tag

    def submit(self, tag: Any) -> None:
        self._pending[self._pool.submit(self._worker, self._payload, tag)] = tag

    def next_done(self, timeout: float | None = None):
        if not self._pending:
            raise JobError("next_done called with no outstanding invocations")
        done, __ = wait(self._pending, timeout=timeout, return_when=FIRST_COMPLETED)
        if not done:
            return None
        future = next(iter(done))
        tag = self._pending.pop(future)
        return tag, future.result()

    def close(self) -> None:
        # Unstarted invocations are dropped; running ones finish in the
        # background with their results discarded (speculative losers).
        for future in self._pending:
            future.cancel()
        self._pool.shutdown(wait=False)
        self._pending.clear()


# Payload handoff for forked workers.  Set in the parent immediately
# before the pool forks; children inherit it through copy-on-write, so
# nothing here is ever pickled.  The lock serializes the set-fork-restore
# window so nested or concurrent ``run_phase`` calls (retry rounds
# re-dispatching a phase, two clusters on two threads) can never fork a
# pool against another call's payload; save-and-restore (instead of
# resetting to ``None``) keeps an outer call's state intact across an
# inner one.
_FORK_STATE: tuple[TaskWorker, Any] | None = None
_FORK_LOCK = threading.Lock()


def pack_task_result(result) -> tuple[bytes, list[bytes]]:
    """Serialize a task result for the pipe: protocol 5, out-of-band.

    The worker serializes once with pickle protocol 5, exporting large
    contiguous buffers (numpy key arrays of columnar bucket segments,
    spill-run frames) out-of-band via ``buffer_callback`` instead of
    re-framing them inside the stream.  The pool then ships
    ``(data, buffers)`` — two flat byte payloads — rather than
    re-pickling the whole object graph at the transport's default
    protocol 4.  Combined with the compact ``__getstate__`` forms of
    ``Rect``/``TaggedRect`` this measurably shrinks per-task IPC (see
    the regression test in ``tests/mapreduce/test_executor.py``).
    """
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(result, protocol=5, buffer_callback=buffers.append)
    return data, [b.raw().tobytes() for b in buffers]


def unpack_task_result(packed: tuple[bytes, list[bytes]]):
    """Inverse of :func:`pack_task_result`."""
    data, buffers = packed
    return pickle.loads(data, buffers=buffers)


def _run_forked_task(index: int):
    worker, payload = _FORK_STATE  # type: ignore[misc] - set before fork
    return pack_task_result(worker(payload, index))


class ProcessExecutor(TaskExecutor):
    """Tasks run on forked worker processes (true multi-core execution)."""

    name = "process"

    def __init__(self, num_workers: int | None = None) -> None:
        self.num_workers = num_workers if num_workers else default_workers()

    @staticmethod
    def _fork_pool(ctx, worker: TaskWorker, payload: Any, processes: int):
        """Fork a pool whose workers inherit ``(worker, payload)``.

        The global is published only for the duration of the fork and
        restored to whatever it held before, under the module lock.
        """
        global _FORK_STATE
        with _FORK_LOCK:
            saved = _FORK_STATE
            _FORK_STATE = (worker, payload)
            try:
                return ctx.Pool(processes=processes)
            finally:
                _FORK_STATE = saved

    def run_phase(self, worker: TaskWorker, num_tasks: int, payload: Any) -> list:
        if num_tasks <= 1 or self.num_workers <= 1:
            return SerialExecutor().run_phase(worker, num_tasks, payload)
        if "fork" not in multiprocessing.get_all_start_methods():
            # No copy-on-write payload inheritance without fork (e.g.
            # Windows); threads keep the same semantics and determinism.
            return ThreadExecutor(self.num_workers).run_phase(
                worker, num_tasks, payload
            )
        ctx = multiprocessing.get_context("fork")
        pool = self._fork_pool(ctx, worker, payload, min(self.num_workers, num_tasks))
        with pool:
            # imap (not map) so the lowest failing task id raises
            # first, matching the serial error behaviour.
            return [
                unpack_task_result(packed)
                for packed in pool.imap(
                    _run_forked_task, range(num_tasks), chunksize=1
                )
            ]

    def open_session(self, worker: TaskWorker, payload: Any) -> PhaseSession | None:
        if self.num_workers <= 1:
            return None
        if "fork" not in multiprocessing.get_all_start_methods():
            return ThreadExecutor(self.num_workers).open_session(worker, payload)
        ctx = multiprocessing.get_context("fork")
        pool = self._fork_pool(ctx, worker, payload, self.num_workers)
        return _ProcessSession(pool)


class _ProcessSession(PhaseSession):
    """Forked-pool session: workers inherited the payload at fork time;
    each submit ships only the (small, picklable) tag."""

    #: polling interval for completion checks (``AsyncResult`` has no
    #: select()-style multiplexed wait)
    _POLL_S = 0.002

    def __init__(self, pool) -> None:
        self._pool = pool
        self._pending: list[tuple[Any, Any]] = []  # (tag, AsyncResult)

    def submit(self, tag: Any) -> None:
        self._pending.append((tag, self._pool.apply_async(_run_forked_task, (tag,))))

    def next_done(self, timeout: float | None = None):
        if not self._pending:
            raise JobError("next_done called with no outstanding invocations")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for i, (tag, ar) in enumerate(self._pending):
                if ar.ready():
                    del self._pending[i]
                    return tag, unpack_task_result(ar.get())
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(self._POLL_S)

    def close(self) -> None:
        # terminate (not close): running losers are killed, not awaited.
        self._pool.terminate()
        self._pool.join()
        self._pending.clear()


EXECUTORS: dict[str, type[TaskExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def make_executor(name: str, num_workers: int | None = None) -> TaskExecutor:
    """Build the named executor (``serial`` ignores ``num_workers``)."""
    cls = EXECUTORS.get(name)
    if cls is None:
        raise JobError(
            f"unknown executor {name!r}; choose one of {sorted(EXECUTORS)}"
        )
    if cls is SerialExecutor:
        return cls()
    return cls(num_workers)
