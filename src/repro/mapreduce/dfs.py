"""An in-memory distributed file system with I/O accounting.

The paper's cluster stores inputs and intermediate results on HDFS; the
reproduction replaces it with an in-process store that keeps the two
properties the evaluation depends on:

* files are line-oriented text (records cross job boundaries as parsed
  text, never as shared Python objects), and
* every byte read or written is accounted, because the read/write volume
  of the 2-way Cascade is one of the paper's two cost stories.

Paths behave like HDFS paths: plain strings with ``/`` separators.  A job
writes one ``part-NNNNN`` file per reducer under its output directory and
downstream jobs read the directory back via :meth:`InMemoryDFS.read_dir`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import DFSError

__all__ = ["InMemoryDFS"]


def _normalize(path: str) -> str:
    if not path or path.startswith("/") and len(path) == 1:
        raise DFSError(f"invalid DFS path {path!r}")
    return path.strip("/")


class InMemoryDFS:
    """A minimal HDFS stand-in: named immutable line files plus accounting."""

    def __init__(self) -> None:
        self._files: dict[str, list[str]] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------
    def write_file(self, path: str, lines: Iterable[str]) -> int:
        """Create (or replace) a file; returns the number of bytes written.

        Each line is stored without a trailing newline but accounted with
        one, matching text-file sizes on a real DFS.
        """
        path = _normalize(path)
        stored = []
        nbytes = 0
        for line in lines:
            if "\n" in line:
                raise DFSError(f"record contains a newline: {line!r}")
            stored.append(line)
            nbytes += len(line) + 1
        self._files[path] = stored
        self.bytes_written += nbytes
        return nbytes

    def read_file(self, path: str) -> list[str]:
        """All lines of a file; accounts the read volume."""
        path = _normalize(path)
        if path not in self._files:
            raise DFSError(f"no such file: {path!r}")
        lines = self._files[path]
        self.bytes_read += self.file_size(path)
        return list(lines)

    def iter_records(self, path: str) -> Iterator[tuple[int, str]]:
        """Yield ``(line_number, line)`` pairs, the map-input record form."""
        for i, line in enumerate(self.read_file(path)):
            yield (i, line)

    # ------------------------------------------------------------------
    # Directory-ish operations
    # ------------------------------------------------------------------
    def list_dir(self, path: str) -> list[str]:
        """All file paths under a directory prefix, sorted."""
        prefix = _normalize(path) + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def read_dir(self, path: str) -> list[str]:
        """Concatenated lines of every file under a directory, part order."""
        files = self.list_dir(path)
        if not files:
            raise DFSError(f"no files under directory {path!r}")
        out: list[str] = []
        for f in files:
            out.extend(self.read_file(f))
        return out

    def resolve(self, path: str) -> list[str]:
        """Expand a path to input files: itself if a file, else a directory."""
        norm = _normalize(path)
        if norm in self._files:
            return [norm]
        files = self.list_dir(norm)
        if not files:
            raise DFSError(f"no such file or directory: {path!r}")
        return files

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether the path is a file or a non-empty directory."""
        norm = _normalize(path)
        return norm in self._files or bool(self.list_dir(norm))

    def file_size(self, path: str) -> int:
        """Size of one file in bytes (line lengths + newlines)."""
        path = _normalize(path)
        if path not in self._files:
            raise DFSError(f"no such file: {path!r}")
        return sum(len(line) + 1 for line in self._files[path])

    def dir_size(self, path: str) -> int:
        """Total size of every file under a directory."""
        return sum(self.file_size(f) for f in self.list_dir(path))

    def num_records(self, path: str) -> int:
        """Record (line) count of a file or directory."""
        norm = _normalize(path)
        if norm in self._files:
            return len(self._files[norm])
        return sum(len(self._files[f]) for f in self.list_dir(norm))

    def delete(self, path: str) -> int:
        """Delete a file or directory subtree; returns #files removed."""
        norm = _normalize(path)
        doomed = [norm] if norm in self._files else self.list_dir(norm)
        for f in doomed:
            del self._files[f]
        return len(doomed)

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryDFS({len(self._files)} files)"
