"""An in-memory distributed file system with I/O accounting.

The paper's cluster stores inputs and intermediate results on HDFS; the
reproduction replaces it with an in-process store that keeps the two
properties the evaluation depends on:

* every file has a canonical line-oriented text form — sizes, the final
  join output and externally-visible reads are always the encoded
  lines — and
* every byte read or written is accounted, because the read/write volume
  of the 2-way Cascade is one of the paper's two cost stories.

Since PR 2 a file may additionally carry its *typed records*: when a
reduce phase writes through a :class:`~repro.data.io.RecordCodec`, each
record is encoded exactly once (the lines above — that write is what the
byte accounting charges) and the decoded objects are kept alongside.  A
downstream job that declares a matching input codec reads the objects
back without re-parsing; byte accounting is unchanged because reads are
still charged at the encoded size.  Rewriting or deleting a path drops
its typed records, so lines stay the source of truth.

Paths behave like HDFS paths: plain strings with ``/`` separators.  A job
writes one ``part-NNNNN`` file per reducer under its output directory and
downstream jobs read the directory back via :meth:`InMemoryDFS.read_dir`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import DFSError

__all__ = ["InMemoryDFS"]


def _normalize(path: str) -> str:
    if not path or path.startswith("/") and len(path) == 1:
        raise DFSError(f"invalid DFS path {path!r}")
    return path.strip("/")


class InMemoryDFS:
    """A minimal HDFS stand-in: named immutable line files plus accounting."""

    def __init__(self) -> None:
        self._files: dict[str, list[str]] = {}
        #: typed-record shadow of ``_files`` (only codec-written paths):
        #: path -> (codec name, records); the codec name guards against
        #: reading one format's objects through another format's codec
        self._records: dict[str, tuple[str, list[Any]]] = {}
        #: per-file-version derived artifacts (split-entry rows, columnar
        #: rect batches): path -> tag -> value, dropped whenever the path
        #: is rewritten or deleted — exactly like ``_records``
        self._derived: dict[str, dict[str, Any]] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        #: the durable-storage plane (:class:`repro.mapreduce.blocks
        #: .BlockPlane`) when ``Cluster(replication=N)`` engaged it;
        #: ``None`` means every hook below is a single identity check —
        #: the unreplicated store behaves byte-for-byte as before
        self.block_plane = None

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------
    def write_file(self, path: str, lines: Iterable[str]) -> int:
        """Create (or replace) a file; returns the number of bytes written.

        Each line is stored without a trailing newline but accounted with
        one, matching text-file sizes on a real DFS.
        """
        path = _normalize(path)
        stored = []
        nbytes = 0
        for line in lines:
            if "\n" in line:
                raise DFSError(f"record contains a newline: {line!r}")
            stored.append(line)
            nbytes += len(line) + 1
        self._files[path] = stored
        self._records.pop(path, None)
        self._derived.pop(path, None)
        self.bytes_written += nbytes
        if self.block_plane is not None:
            self.block_plane.on_write(path, stored)
        return nbytes

    def write_records(self, path: str, records: Sequence[Any], codec) -> int:
        """Create (or replace) a file from typed records — encode once.

        Each record is serialized through ``codec`` exactly here: the
        lines are the durable, accounted form (identical bytes to a
        string-path writer), and the objects are kept so a downstream
        job reading with the same codec skips the parse entirely.
        """
        records = list(records)
        nbytes = self.write_file(path, codec.encode_lines(records))
        self._records[_normalize(path)] = (codec.name, records)
        return nbytes

    def typed_records(self, path: str, codec) -> list[Any] | None:
        """The typed records of a codec-written file, or ``None``.

        Returns the resident objects only when they were produced by the
        same codec (matched by registry name) — a format mismatch falls
        back to ``None`` and the caller decodes the lines, which raises
        the usual malformed-record error.

        Does **not** account a read: callers pair this with
        :meth:`read_file` (or :meth:`file_size`) so the charged volume is
        exactly the encoded size, typed or not.  The returned list is
        shared — records are treated as immutable by convention (the
        engine never mutates shuffled values).
        """
        cached = self._records.get(_normalize(path))
        if cached is None or cached[0] != codec.name:
            return None
        return cached[1]

    def cache_records(self, path: str, records: Sequence[Any], codec) -> None:
        """Attach decoded records to an existing line file (decode once).

        Used by the engine after lazily decoding a file that was written
        as plain lines (e.g. externally staged input), so repeated reads
        — the Cascade re-reads base relations at every step — parse each
        line at most once per file version.
        """
        norm = _normalize(path)
        if norm not in self._files:
            raise DFSError(f"no such file: {path!r}")
        records = list(records)
        if len(records) != len(self._files[norm]):
            raise DFSError(
                f"typed record count {len(records)} does not match the "
                f"{len(self._files[norm])} lines of {path!r}"
            )
        self._records[norm] = (codec.name, records)

    def derived_get(self, path: str, tag: str) -> Any | None:
        """A derived artifact of the *current* version of ``path``.

        Derived artifacts (split-entry rows, columnar rect batches) are
        pure functions of a file's content; rewriting or deleting the
        file drops them, so a hit is always consistent.  Like
        :meth:`typed_records` this never accounts a read — callers pair
        it with :meth:`charge_read` so byte accounting is unchanged.
        """
        cached = self._derived.get(_normalize(path))
        return None if cached is None else cached.get(tag)

    def derived_put(self, path: str, tag: str, value: Any) -> None:
        """Attach a derived artifact to the current version of ``path``."""
        norm = _normalize(path)
        if norm not in self._files:
            raise DFSError(f"no such file: {path!r}")
        self._derived.setdefault(norm, {})[tag] = value

    def charge_read(self, path: str) -> None:
        """Account one full read of ``path`` without materialising lines.

        The byte-accounting half of :meth:`read_file`, for callers that
        already hold the file's records (typed or derived caches): the
        canonical ``DFS_BYTES_READ`` volume stays exactly what a line
        read would have charged.
        """
        if self.block_plane is not None:
            # Cache hits still verify checksums end to end, so corrupt
            # replicas are detected at identical points whether or not
            # the lines materialise.
            self.block_plane.verify(path)
        self.bytes_read += self.file_size(path)

    def write_side_file(self, path: str, lines: Iterable[str]) -> int:
        """Create (or replace) a task side file — durable but unaccounted.

        Side files are the engine's scratch artifacts (map-side spill
        runs, bad-record quarantines): they must survive like any other
        file — reduce tasks and post-mortems read them back — but they
        are *not* job I/O, so they bypass the ``bytes_written`` ledger
        the canonical ``DFS_BYTES_WRITTEN`` counter is derived from.
        Returns the byte size the file would account at.
        """
        path = _normalize(path)
        stored = []
        nbytes = 0
        for line in lines:
            if "\n" in line:
                raise DFSError(f"record contains a newline: {line!r}")
            stored.append(line)
            nbytes += len(line) + 1
        self._files[path] = stored
        self._records.pop(path, None)
        self._derived.pop(path, None)
        return nbytes

    def read_side_file(self, path: str) -> list[str]:
        """All lines of a task side file — no read accounting.

        The unaccounted twin of :meth:`read_file`, used by the
        reduce-side external merge to stream spill runs back without
        disturbing the canonical ``DFS_BYTES_READ`` counter.
        """
        path = _normalize(path)
        if path not in self._files:
            raise DFSError(f"no such file: {path!r}")
        return list(self._files[path])

    def read_file(self, path: str) -> list[str]:
        """All lines of a file; accounts the read volume.

        With the storage plane engaged, tracked files are reassembled
        from checksummed block replicas (failing over past corrupt or
        lost copies); the charged volume is identical either way, since
        verified replicas hold exactly the primary bytes.
        """
        path = _normalize(path)
        if path not in self._files:
            raise DFSError(f"no such file: {path!r}")
        if self.block_plane is not None:
            served = self.block_plane.read(path)
            if served is not None:
                self.bytes_read += sum(len(line) + 1 for line in served)
                return served
        lines = self._files[path]
        self.bytes_read += self.file_size(path)
        return list(lines)

    def iter_records(self, path: str) -> Iterator[tuple[int, str]]:
        """Yield ``(line_number, line)`` pairs, the map-input record form."""
        for i, line in enumerate(self.read_file(path)):
            yield (i, line)

    # ------------------------------------------------------------------
    # Directory-ish operations
    # ------------------------------------------------------------------
    def list_dir(self, path: str) -> list[str]:
        """All file paths under a directory prefix, sorted."""
        prefix = _normalize(path) + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def read_dir(self, path: str) -> list[str]:
        """Concatenated lines of every file under a directory, part order."""
        files = self.list_dir(path)
        if not files:
            raise DFSError(f"no files under directory {path!r}")
        out: list[str] = []
        for f in files:
            out.extend(self.read_file(f))
        return out

    def resolve(self, path: str) -> list[str]:
        """Expand a path to input files: itself if a file, else a directory."""
        norm = _normalize(path)
        if norm in self._files:
            return [norm]
        files = self.list_dir(norm)
        if not files:
            raise DFSError(f"no such file or directory: {path!r}")
        return files

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether the path is a file or a non-empty directory."""
        norm = _normalize(path)
        return norm in self._files or bool(self.list_dir(norm))

    @property
    def is_empty(self) -> bool:
        """``True`` when the store holds no files at all.

        Used by the cluster's resume guard: an *empty* in-memory DFS has
        nothing a resumed workflow could possibly restore.
        """
        return not self._files

    def file_size(self, path: str) -> int:
        """Size of one file in bytes (line lengths + newlines)."""
        path = _normalize(path)
        if path not in self._files:
            raise DFSError(f"no such file: {path!r}")
        return sum(len(line) + 1 for line in self._files[path])

    def dir_size(self, path: str) -> int:
        """Total size of every file under a directory."""
        return sum(self.file_size(f) for f in self.list_dir(path))

    def dir_manifest(self, path: str) -> list[tuple[str, int]]:
        """Sorted ``(file, size)`` pairs under a directory — no read charge.

        The completeness fingerprint workflow checkpoints store and
        verify on resume: a job output whose manifest matches was fully
        committed (part files are written atomically, last file last).
        """
        return [(f, self.file_size(f)) for f in self.list_dir(path)]

    def num_records(self, path: str) -> int:
        """Record (line) count of a file or directory."""
        norm = _normalize(path)
        if norm in self._files:
            return len(self._files[norm])
        return sum(len(self._files[f]) for f in self.list_dir(norm))

    def delete(self, path: str) -> int:
        """Delete a file or directory subtree; returns #files removed."""
        norm = _normalize(path)
        doomed = [norm] if norm in self._files else self.list_dir(norm)
        for f in doomed:
            del self._files[f]
            self._records.pop(f, None)
            self._derived.pop(f, None)
        if self.block_plane is not None:
            for f in doomed:
                self.block_plane.on_delete(f)
        return len(doomed)

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryDFS({len(self._files)} files)"
