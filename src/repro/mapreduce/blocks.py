"""The durable storage plane: replicated, checksummed DFS blocks.

The paper's cluster assumes a GFS/HDFS-style store — files chunked into
blocks, each block replicated on several DataNodes with end-to-end
checksums, reads failing over between replicas and a namenode
re-replicating when a node dies.  This module supplies that layer under
both DFS backends:

* every tracked file is chunked into line-range blocks of
  ``block_records`` records, each with a CRC32C checksum over its
  encoded bytes;
* each block is copied onto ``replication`` distinct workers from the
  cluster's :class:`~repro.mapreduce.workers.WorkerPool` — replica
  copies live in the DFS's *side-file* namespace under ``_blocks/``
  (durable, never charged to the canonical byte counters);
* every read reassembles the file from replicas, verifying each
  block's checksum: a corrupt replica is dropped and the read fails
  over to the next holder (counted as ``BLOCK_CORRUPTIONS``); a block
  with no healthy replica raises — data loss is loud, never silent;
* worker death marks its replicas lost, and the end-of-job
  re-replication pass copies from surviving holders until the target
  factor is restored (``BLOCKS_REREPLICATED``, with the copied bytes
  charged to the cost model's non-canonical network-overhead term);
* :meth:`BlockPlane.fsck` audits the whole placement — the offline
  ``python -m repro fsck`` walks it in a fresh process via the
  placement map persisted at ``_blocks/placement.json``.

The plane engages only when ``Cluster(replication=N)`` is set; a DFS
without a plane attached behaves byte-for-byte as before.  Replica
content always equals the primary content, so serving reads through the
plane never changes canonical bytes, counters or simulated seconds —
corruption and loss move *telemetry* (counters, ledger events, the
non-canonical overhead buckets), exactly like the fault-tolerance
layers before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DFSError
from repro.mapreduce.placement import (
    PLACEMENT_PATH,
    REPLICA_ROOT,
    BlockMeta,
    PlacementMap,
)

__all__ = [
    "crc32c",
    "block_payload",
    "chunk_blocks",
    "BlockPlane",
    "StorageReport",
    "FsckReport",
]

# ----------------------------------------------------------------------
# CRC32C (Castagnoli) — pure python, no external deps.  zlib.crc32 is
# plain CRC32 (IEEE); HDFS checksums blocks with CRC32C, so we match.
# ----------------------------------------------------------------------
_CRC32C_POLY = 0x82F63B78  # Castagnoli polynomial, reversed form


def _build_table() -> list[int]:
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _build_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``; chainable via ``crc``.

    Standard test vector: ``crc32c(b"123456789") == 0xE3069283``.
    """
    crc ^= 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def block_payload(lines: list[str]) -> bytes:
    """The encoded bytes a block checksums: lines + trailing newlines."""
    return "".join(line + "\n" for line in lines).encode("utf-8")


def chunk_blocks(lines: list[str], block_records: int) -> list[tuple[int, list[str]]]:
    """Chunk a file's lines into ``(start_line, block_lines)`` pairs.

    An empty file has zero blocks; blocks never span files (like HDFS
    blocks, which is what makes split↔block locality exact when the
    split size equals the block size).
    """
    if block_records < 1:
        raise DFSError(f"block_records must be >= 1, got {block_records}")
    return [
        (lo, lines[lo : lo + block_records])
        for lo in range(0, len(lines), block_records)
    ]


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
@dataclass
class StorageReport:
    """Per-job storage-plane telemetry, merged into counters and cost."""

    block_corruptions: int = 0
    replicas_lost: int = 0
    blocks_rereplicated: int = 0
    #: bytes copied across the (simulated) network by re-replication —
    #: charged to the cost breakdown's non-canonical network overhead
    rereplicated_bytes: int = 0
    #: blocks still below the target factor after re-replication (the
    #: pool is too small) — surfaced loudly, never silently absorbed
    under_replicated: int = 0


@dataclass
class FsckReport:
    """One placement audit: block health plus one line per problem."""

    blocks: int = 0
    healthy: int = 0
    under_replicated: int = 0
    corrupt: int = 0
    problems: list[str] = field(default_factory=list)
    repaired: int = 0

    @property
    def exit_code(self) -> int:
        """0 healthy / 1 under-replicated (recoverable) / 2 corrupt."""
        if self.corrupt:
            return 2
        if self.under_replicated:
            return 1
        return 0

    def lines(self) -> list[str]:
        """One line per problem, then the summary — the CLI output."""
        out = list(self.problems)
        status = ("HEALTHY", "UNDER-REPLICATED", "CORRUPT")[self.exit_code]
        out.append(
            f"fsck: {self.blocks} block(s): {self.healthy} healthy, "
            f"{self.under_replicated} under-replicated, "
            f"{self.corrupt} corrupt"
            + (f", {self.repaired} repaired" if self.repaired else "")
            + f" -- {status}"
        )
        return out


# ----------------------------------------------------------------------
# The plane
# ----------------------------------------------------------------------
class BlockPlane:
    """Replication, checksumming and placement under one DFS instance.

    The engine attaches one plane per cluster (``dfs.block_plane``)
    when ``Cluster(replication=N)`` is set; the DFS write/read/delete
    paths call the ``on_write``/``read``/``verify``/``on_delete`` hooks.
    ``pool`` may be ``None`` for offline audits (``fsck`` in a fresh
    process) — placement then comes entirely from the persisted map —
    and ``replication`` may be ``None`` there too, deferring to the
    factor the persisted map was written with.
    """

    def __init__(
        self,
        dfs,
        pool,
        replication: int | None,
        block_records: int,
        ledger=None,
    ) -> None:
        if replication is not None and replication < 1:
            raise DFSError(f"replication factor must be >= 1, got {replication}")
        self.dfs = dfs
        self.pool = pool
        self.block_records = block_records
        self.ledger = (
            ledger if ledger is not None and getattr(ledger, "enabled", False)
            else None
        )
        self.report = StorageReport()
        self.placement = self._load_placement(replication)
        if pool is not None:
            for name in pool.workers:
                self.placement.note_worker(name)

    @property
    def replication(self) -> int:
        return self.placement.replication

    # -- persistence ---------------------------------------------------
    def _load_placement(self, replication: int | None) -> PlacementMap:
        """Restore a persisted map (fresh process over a LocalFS root)."""
        try:
            lines = self.dfs.read_side_file(PLACEMENT_PATH)
        except DFSError:
            # No persisted map: an offline audit (replication=None) sees
            # an empty-but-healthy store rather than an error.
            return PlacementMap(replication if replication is not None else 1)
        pmap = PlacementMap.from_json("\n".join(lines))
        # An explicit factor wins over the persisted one (re-attaching
        # with a different target re-replicates toward the new factor).
        if replication is not None:
            pmap.replication = replication
        return pmap

    def _persist(self) -> None:
        self.dfs.write_side_file(PLACEMENT_PATH, [self.placement.to_json()])

    # -- replica addressing --------------------------------------------
    @staticmethod
    def _replica_path(worker: str, path: str, index: int) -> str:
        # '/' -> '#' keeps every mangled path one directory level per
        # worker; '#' is inside the LocalFS-safe segment charset.
        return f"{REPLICA_ROOT}/{worker}/{path.replace('/', '#')}/b-{index:05d}"

    @staticmethod
    def _is_internal(path: str) -> bool:
        return path == REPLICA_ROOT or path.startswith(REPLICA_ROOT + "/")

    def _alive(self, worker: str) -> bool:
        if self.pool is None:
            return True  # offline: liveness unknown, trust placement
        state = self.pool.workers.get(worker)
        return state is not None and state.alive

    def _active_workers(self) -> list[str]:
        if self.pool is not None:
            return self.pool.active()
        return list(self.placement.workers)

    # -- write path ----------------------------------------------------
    def on_write(self, path: str, lines: list[str]) -> None:
        """(Re)place every block of a freshly written file."""
        if self._is_internal(path):
            return
        self._drop_replicas(path)
        blocks: list[BlockMeta] = []
        active = self._active_workers()
        for index, (start, chunk) in enumerate(
            chunk_blocks(lines, self.block_records)
        ):
            payload = block_payload(chunk)
            meta = BlockMeta(
                index=index,
                start=start,
                count=len(chunk),
                nbytes=len(payload),
                crc=crc32c(payload),
            )
            if active:
                # Deterministic placement: first replica offset from a
                # CRC of the path (process-salted hash() would break
                # replays), subsequent replicas walk the active list.
                offset = (crc32c(path.encode("utf-8")) + index) % len(active)
                for k in range(min(self.replication, len(active))):
                    worker = active[(offset + k) % len(active)]
                    self.dfs.write_side_file(
                        self._replica_path(worker, path, index), chunk
                    )
                    meta.replicas.append(worker)
            blocks.append(meta)
        self.placement.set_file(path, blocks)
        self._persist()

    def ensure(self, path: str) -> bool:
        """Lazily ingest a pre-existing file (staged before the plane).

        Returns ``True`` when the path is tracked afterwards.  Content
        is read through the unaccounted side-file path, so ingestion
        never disturbs the canonical byte counters.
        """
        if self._is_internal(path):
            return False
        if self.placement.tracks(path):
            return True
        try:
            lines = self.dfs.read_side_file(path)
        except DFSError:
            return False
        self.on_write(path, lines)
        return True

    def on_delete(self, path: str) -> None:
        if self._is_internal(path) or not self.placement.tracks(path):
            return
        self._drop_replicas(path)
        self.placement.drop_file(path)
        self._persist()

    def _drop_replicas(self, path: str) -> None:
        for block in self.placement.blocks(path):
            for worker in block.replicas:
                self.dfs.delete(self._replica_path(worker, path, block.index))

    # -- read path -----------------------------------------------------
    def read(self, path: str) -> list[str] | None:
        """Reassemble ``path`` from replicas, verifying every checksum.

        Returns ``None`` for untracked paths (the DFS falls back to its
        primary store).  A corrupt replica is dropped with a counted
        ledger event and the read fails over to the next holder; a
        block with no healthy replica raises :class:`DFSError`.
        """
        if not self.ensure(path):
            return None
        out: list[str] = []
        for block in list(self.placement.blocks(path)):
            out.extend(self._read_block(path, block))
        return out

    def verify(self, path: str) -> None:
        """Checksum-verify every replica a read of ``path`` would use.

        The :meth:`read` loop without materialising the result — the
        DFS ``charge_read`` cache-hit path calls this so corruption is
        detected at identical points whether or not lines materialise.
        """
        if not self.ensure(path):
            return
        for block in list(self.placement.blocks(path)):
            self._read_block(path, block)

    def _read_block(self, path: str, block: BlockMeta) -> list[str]:
        """One block's lines from its first healthy replica (failover)."""
        for worker in list(block.replicas):
            if not self._alive(worker):
                continue  # the sweep will count the node's losses
            rpath = self._replica_path(worker, path, block.index)
            try:
                lines = self.dfs.read_side_file(rpath)
            except DFSError:
                self._lose(path, block, worker, reason="missing")
                continue
            if crc32c(block_payload(lines)) != block.crc:
                self.report.block_corruptions += 1
                if self.ledger is not None:
                    self.ledger.event(
                        "block_corruption",
                        path=path,
                        block=block.index,
                        worker=worker,
                    )
                block.replicas.remove(worker)
                self.dfs.delete(rpath)
                self._persist()
                continue
            return lines
        raise DFSError(
            f"block lost: {path!r} block {block.index} has no healthy "
            f"replica (holders tried: {block.replicas})"
        )

    # -- fault enactment -----------------------------------------------
    def enact_faults(self, plan, job: str) -> None:
        """Fire pending ``corrupt-block``/``lose-replica`` specs.

        Called at job start, before the split phase reads inputs, so
        detection (and its counters) happens deterministically during
        this job's reads.  One-shot per cluster lifetime, tracked in
        the pool's fired set like worker specs; a spec whose path does
        not exist yet stays pending for a later job.
        """
        if plan is None or self.pool is None:
            return
        for spec in plan.storage_specs():
            if spec in self.pool.fired:
                continue
            if spec.job is not None and spec.job != job:
                continue
            if not self.ensure(spec.path):
                continue  # path not written yet: try again next job
            if spec.kind == "corrupt-block":
                if self._corrupt_replica(spec.path, spec.block, spec.replica):
                    self.pool.fired.add(spec)
            else:  # lose-replica
                if self._lose_replica(spec.path, spec.block, spec.replica):
                    self.pool.fired.add(spec)

    def _located(self, path: str, block: int, replica: int):
        blocks = self.placement.blocks(path)
        if block >= len(blocks):
            return None, None
        meta = blocks[block]
        if replica >= len(meta.replicas):
            return None, None
        return meta, meta.replicas[replica]

    def _corrupt_replica(self, path: str, block: int, replica: int) -> bool:
        """Flip a replica's bytes on disk; detection happens at read."""
        meta, worker = self._located(path, block, replica)
        if meta is None:
            return False
        self.dfs.write_side_file(
            self._replica_path(worker, path, meta.index),
            ["#corrupted-by-fault-injection"],
        )
        return True

    def _lose_replica(self, path: str, block: int, replica: int) -> bool:
        """Drop a replica outright (a vanished disk, not flipped bits)."""
        meta, worker = self._located(path, block, replica)
        if meta is None:
            return False
        self.dfs.delete(self._replica_path(worker, path, meta.index))
        self._lose(path, meta, worker, reason="fault")
        return True

    def _lose(self, path: str, block: BlockMeta, worker: str, reason: str) -> None:
        if worker in block.replicas:
            block.replicas.remove(worker)
        self.report.replicas_lost += 1
        if self.ledger is not None:
            self.ledger.event(
                "replica_lost",
                path=path,
                block=block.index,
                worker=worker,
                reason=reason,
            )
        self._persist()

    # -- self-healing --------------------------------------------------
    def sweep_dead_workers(self) -> None:
        """Mark every replica held by a dead worker as lost."""
        if self.pool is None:
            return
        dead = {w.name for w in self.pool.workers.values() if not w.alive}
        if not dead:
            return
        for path, blocks in self.placement.files.items():
            for block in blocks:
                for worker in [w for w in block.replicas if w in dead]:
                    self.dfs.delete(self._replica_path(worker, path, block.index))
                    self._lose(path, block, worker, reason="worker_lost")

    def rereplicate(self) -> None:
        """Restore the target factor from surviving replicas.

        The end-of-job "background" pass: runs after the job's phases
        drain (before the next job's barrier), copying each
        under-replicated block from a healthy holder onto active
        workers not yet holding it.  Copied bytes land in the report
        (charged to the non-canonical network-overhead cost term); a
        block the pool is too small to restore counts as
        under-replicated and is surfaced loudly.
        """
        self.sweep_dead_workers()
        active = self._active_workers()
        for path, blocks in self.placement.files.items():
            for block in blocks:
                if len(block.replicas) >= self.replication:
                    continue
                lines = self._healthy_copy(path, block)
                if lines is None:
                    # No healthy source: the next read raises data loss.
                    self.report.under_replicated += 1
                    self._warn_under_replicated(path, block)
                    continue
                candidates = [w for w in active if w not in block.replicas]
                while len(block.replicas) < self.replication and candidates:
                    worker = candidates.pop(0)
                    self.dfs.write_side_file(
                        self._replica_path(worker, path, block.index), lines
                    )
                    block.replicas.append(worker)
                    self.placement.note_worker(worker)
                    self.report.blocks_rereplicated += 1
                    self.report.rereplicated_bytes += block.nbytes
                    if self.ledger is not None:
                        self.ledger.event(
                            "block_rereplicated",
                            path=path,
                            block=block.index,
                            worker=worker,
                            bytes=block.nbytes,
                        )
                if len(block.replicas) < self.replication:
                    self.report.under_replicated += 1
                    self._warn_under_replicated(path, block)
        self._persist()

    def _healthy_copy(self, path: str, block: BlockMeta) -> list[str] | None:
        """The block's lines from any checksum-clean replica, or None."""
        for worker in list(block.replicas):
            try:
                lines = self.dfs.read_side_file(
                    self._replica_path(worker, path, block.index)
                )
            except DFSError:
                continue
            if crc32c(block_payload(lines)) == block.crc:
                return lines
        return None

    def _warn_under_replicated(self, path: str, block: BlockMeta) -> None:
        if self.ledger is not None:
            self.ledger.event(
                "warning",
                kind="under_replicated",
                path=path,
                block=block.index,
                replicas=len(block.replicas),
                target=self.replication,
            )

    def drain_report(self) -> StorageReport:
        """This job's storage telemetry; resets for the next job."""
        report, self.report = self.report, StorageReport()
        return report

    # -- locality ------------------------------------------------------
    def split_localities(
        self, splits: list[list[tuple[str, int, object, int]]]
    ) -> dict[int, tuple[tuple[str, ...], int]]:
        """Preferred workers per map split: ``{task: (workers, bytes)}``.

        A split's entries are ``(path, lineno, record, nbytes)`` rows of
        one file (splits never span files), so the holders of the
        overlapping blocks are the workers that can run the map task
        without a remote read.  Splits of untracked files are omitted
        (the scheduler falls back rack-blind without counting a miss).
        """
        localities: dict[int, tuple[tuple[str, ...], int]] = {}
        for i, split in enumerate(splits):
            if not split:
                continue
            path = split[0][0]
            if not self.placement.tracks(path):
                continue
            holders = self.placement.holders(
                path, split[0][1], split[-1][1]
            )
            nbytes = sum(entry[3] for entry in split)
            localities[i] = (holders, nbytes)
        return localities

    # -- audit ---------------------------------------------------------
    def fsck(self, repair: bool = False) -> FsckReport:
        """Audit every replica of every block; optionally repair.

        With ``repair=True``, checksum-bad and missing replicas are
        dropped and each damaged-but-recoverable block is re-replicated
        from a healthy copy; the returned report is a fresh *post*-repair
        audit (problems are what remains wrong) carrying the count of
        replicas restored, so a fully healed store exits 0 immediately.
        """
        report = FsckReport()
        for path in sorted(self.placement.files):
            for block in self.placement.files[path]:
                report.blocks += 1
                healthy: list[str] = []
                bad: list[str] = []
                for worker in list(block.replicas):
                    rpath = self._replica_path(worker, path, block.index)
                    try:
                        lines = self.dfs.read_side_file(rpath)
                    except DFSError:
                        report.problems.append(
                            f"missing: {path} block {block.index} replica "
                            f"on {worker} is gone"
                        )
                        bad.append(worker)
                        continue
                    if crc32c(block_payload(lines)) != block.crc:
                        report.problems.append(
                            f"corrupt: {path} block {block.index} replica "
                            f"on {worker} fails its checksum"
                        )
                        bad.append(worker)
                        continue
                    healthy.append(worker)
                if not healthy:
                    report.corrupt += 1
                    report.problems.append(
                        f"lost: {path} block {block.index} has no healthy "
                        "replica (data loss)"
                    )
                    continue
                if bad or len(healthy) < self.replication:
                    report.under_replicated += 1
                    if len(healthy) < self.replication:
                        report.problems.append(
                            f"under-replicated: {path} block {block.index} "
                            f"has {len(healthy)}/{self.replication} healthy "
                            "replica(s)"
                        )
                    if repair:
                        report.repaired += self._repair_block(
                            path, block, healthy, bad
                        )
                else:
                    report.healthy += 1
        if repair:
            self._persist()
            # The verdict (and exit code) must describe the store as
            # repaired, so audit again and carry the repair count over.
            fixed = self.fsck(repair=False)
            fixed.repaired = report.repaired
            return fixed
        return report

    def _repair_block(
        self, path: str, block: BlockMeta, healthy: list[str], bad: list[str]
    ) -> int:
        """Drop bad replicas, restore the factor from a healthy copy."""
        for worker in bad:
            self.dfs.delete(self._replica_path(worker, path, block.index))
            if worker in block.replicas:
                block.replicas.remove(worker)
        lines = self._healthy_copy(path, block)
        if lines is None:
            return 0
        repaired = 0
        candidates = [
            w for w in self._active_workers() if w not in block.replicas
        ]
        while len(block.replicas) < self.replication and candidates:
            worker = candidates.pop(0)
            self.dfs.write_side_file(
                self._replica_path(worker, path, block.index), lines
            )
            block.replicas.append(worker)
            repaired += 1
        return repaired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockPlane(replication={self.replication}, "
            f"{len(self.placement.files)} files)"
        )
