"""A file-system-backed DFS: the in-memory store's persistent sibling.

``LocalFSDFS`` implements the same interface as
:class:`~repro.mapreduce.dfs.InMemoryDFS` on top of a real directory
tree, so workloads and results survive the process — useful for
inspecting intermediate job outputs, resuming long experiment sessions,
or feeding externally-produced rectangle files straight into the join
algorithms.  The engine is backend-agnostic (it only calls the shared
interface), which the substitution test-suite verifies by running whole
joins on both backends and comparing outputs byte for byte.

DFS paths map to paths under the root directory; path components are
restricted to a safe character set so a DFS path can never escape the
root.
"""

from __future__ import annotations

import os
import re
import shutil
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path
from typing import Any

from repro.errors import DFSError

__all__ = ["LocalFSDFS"]

_SEGMENT_RE = re.compile(r"^[A-Za-z0-9._#=-]+$")


class LocalFSDFS:
    """Line-oriented file store rooted at a local directory.

    Typed records (see :class:`~repro.mapreduce.dfs.InMemoryDFS`) are
    held in a process-local cache next to the on-disk lines: the files
    stay plain text — a fresh process, or an externally modified file,
    simply decodes again.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: in-memory typed shadow of codec-written/decoded files:
        #: path -> (codec name, records)
        self._records: dict[str, tuple[str, list[Any]]] = {}
        #: process-local derived artifacts per file version (split-entry
        #: rows, columnar rect batches); dropped with ``_records``
        self._derived: dict[str, dict[str, Any]] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        #: the durable-storage plane when ``Cluster(replication=N)``
        #: engaged it; ``None`` leaves every path byte-for-byte as before
        self.block_plane = None

    # ------------------------------------------------------------------
    def _resolve_path(self, path: str) -> Path:
        segments = [s for s in path.strip("/").split("/") if s]
        if not segments:
            raise DFSError(f"invalid DFS path {path!r}")
        for segment in segments:
            if segment in (".", "..") or not _SEGMENT_RE.match(segment):
                raise DFSError(
                    f"path segment {segment!r} outside the safe character set"
                )
        return self.root.joinpath(*segments)

    @staticmethod
    def _normalized(path: str) -> str:
        return path.strip("/")

    def _write_atomic(
        self, path: str, target: Path, lines: Iterable[str]
    ) -> tuple[list[str], int]:
        """Write lines crash-safely: temp file + ``os.replace``.

        A killed process can never leave a truncated file under the
        final name — the rename is atomic on the same filesystem — so a
        resumed workflow never fingerprint-matches half a part file.
        """
        if target.is_dir():
            raise DFSError(f"{path!r} is a directory")
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.parent / f".{target.name}.tmp"
        stored: list[str] = []
        nbytes = 0
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                for line in lines:
                    if "\n" in line:
                        raise DFSError(
                            f"record contains a newline: {line!r}"
                        )
                    fh.write(line)
                    fh.write("\n")
                    stored.append(line)
                    nbytes += len(line) + 1
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, target)
        return stored, nbytes

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------
    def write_file(self, path: str, lines: Iterable[str]) -> int:
        """Create (or replace) a file; returns the number of bytes written."""
        target = self._resolve_path(path)
        stored, nbytes = self._write_atomic(path, target, lines)
        self._records.pop(self._normalized(path), None)
        self._derived.pop(self._normalized(path), None)
        self.bytes_written += nbytes
        if self.block_plane is not None:
            self.block_plane.on_write(self._normalized(path), stored)
        return nbytes

    def write_records(self, path: str, records: Sequence[Any], codec) -> int:
        """Create (or replace) a file from typed records — encode once."""
        records = list(records)
        nbytes = self.write_file(path, codec.encode_lines(records))
        self._records[self._normalized(path)] = (codec.name, records)
        return nbytes

    def typed_records(self, path: str, codec) -> list[Any] | None:
        """Cached typed records of a file (same codec), or ``None``."""
        cached = self._records.get(self._normalized(path))
        if cached is None or cached[0] != codec.name:
            return None
        return cached[1]

    def cache_records(self, path: str, records: Sequence[Any], codec) -> None:
        """Attach decoded records to an existing on-disk file."""
        if not self._resolve_path(path).is_file():
            raise DFSError(f"no such file: {path!r}")
        self._records[self._normalized(path)] = (codec.name, list(records))

    def derived_get(self, path: str, tag: str) -> Any | None:
        """A derived artifact of the current version of ``path``.

        See :meth:`repro.mapreduce.dfs.InMemoryDFS.derived_get`; like
        the typed-record cache this shadow is process-local, so a fresh
        process simply rebuilds.
        """
        cached = self._derived.get(self._normalized(path))
        return None if cached is None else cached.get(tag)

    def derived_put(self, path: str, tag: str, value: Any) -> None:
        """Attach a derived artifact to the current version of ``path``."""
        if not self._resolve_path(path).is_file():
            raise DFSError(f"no such file: {path!r}")
        self._derived.setdefault(self._normalized(path), {})[tag] = value

    def charge_read(self, path: str) -> None:
        """Account one full read of ``path`` without touching the disk.

        See :meth:`repro.mapreduce.dfs.InMemoryDFS.charge_read`.
        """
        if self.block_plane is not None:
            self.block_plane.verify(self._normalized(path))
        self.bytes_read += self.file_size(path)

    def write_side_file(self, path: str, lines: Iterable[str]) -> int:
        """Create (or replace) a task side file — durable but unaccounted.

        See :meth:`repro.mapreduce.dfs.InMemoryDFS.write_side_file`:
        spill runs and quarantine files must persist like any other file
        but stay off the ``bytes_written`` ledger.
        """
        target = self._resolve_path(path)
        _, nbytes = self._write_atomic(path, target, lines)
        self._records.pop(self._normalized(path), None)
        self._derived.pop(self._normalized(path), None)
        return nbytes

    def read_side_file(self, path: str) -> list[str]:
        """All lines of a task side file — no read accounting."""
        target = self._resolve_path(path)
        if not target.is_file():
            raise DFSError(f"no such file: {path!r}")
        return target.read_text(encoding="utf-8").splitlines()

    def read_file(self, path: str) -> list[str]:
        """All lines of a file; accounts the read volume.

        With the storage plane engaged, tracked files are served from
        checksummed block replicas with transparent failover; verified
        replicas hold exactly the primary bytes, so the charged volume
        is identical either way.
        """
        target = self._resolve_path(path)
        if not target.is_file():
            raise DFSError(f"no such file: {path!r}")
        if self.block_plane is not None:
            served = self.block_plane.read(self._normalized(path))
            if served is not None:
                self.bytes_read += sum(len(line) + 1 for line in served)
                return served
        text = target.read_text(encoding="utf-8")
        self.bytes_read += len(text)
        return text.splitlines()

    def iter_records(self, path: str) -> Iterator[tuple[int, str]]:
        """Yield ``(line_number, line)`` pairs, the map-input record form."""
        for i, line in enumerate(self.read_file(path)):
            yield (i, line)

    # ------------------------------------------------------------------
    # Directory-ish operations
    # ------------------------------------------------------------------
    def list_dir(self, path: str) -> list[str]:
        """All file paths under a directory prefix, sorted."""
        target = self._resolve_path(path)
        if not target.is_dir():
            return []
        out = []
        for child in sorted(target.rglob("*")):
            if child.is_file():
                rel = child.relative_to(self.root)
                out.append("/".join(rel.parts))
        return out

    def read_dir(self, path: str) -> list[str]:
        """Concatenated lines of every file under a directory, part order."""
        files = self.list_dir(path)
        if not files:
            raise DFSError(f"no files under directory {path!r}")
        lines: list[str] = []
        for f in files:
            lines.extend(self.read_file(f))
        return lines

    def resolve(self, path: str) -> list[str]:
        """Expand a path to input files: itself if a file, else a directory."""
        target = self._resolve_path(path)
        if target.is_file():
            return [self._normalized(path)]
        files = self.list_dir(path)
        if not files:
            raise DFSError(f"no such file or directory: {path!r}")
        return files

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether the path is a file or a non-empty directory."""
        target = self._resolve_path(path)
        return target.is_file() or (target.is_dir() and bool(self.list_dir(path)))

    def file_size(self, path: str) -> int:
        """Size of one file in bytes."""
        target = self._resolve_path(path)
        if not target.is_file():
            raise DFSError(f"no such file: {path!r}")
        return target.stat().st_size

    def dir_size(self, path: str) -> int:
        """Total size of every file under a directory."""
        return sum(self.file_size(f) for f in self.list_dir(path))

    def dir_manifest(self, path: str) -> list[tuple[str, int]]:
        """Sorted ``(file, size)`` pairs under a directory — no read charge.

        See :meth:`repro.mapreduce.dfs.InMemoryDFS.dir_manifest`; here
        the sizes come from the on-disk files, so a resume in a fresh
        process verifies real durable state.
        """
        return [(f, self.file_size(f)) for f in self.list_dir(path)]

    def num_records(self, path: str) -> int:
        """Record (line) count of a file or directory."""
        target = self._resolve_path(path)
        if target.is_file():
            return len(self.read_file(path))
        total = 0
        for f in self.list_dir(path):
            total += len(self.read_file(f))
        return total

    def delete(self, path: str) -> int:
        """Delete a file or directory subtree; returns #files removed."""
        target = self._resolve_path(path)
        if target.is_file():
            target.unlink()
            self._records.pop(self._normalized(path), None)
            self._derived.pop(self._normalized(path), None)
            if self.block_plane is not None:
                self.block_plane.on_delete(self._normalized(path))
            return 1
        doomed = self.list_dir(path)
        for f in doomed:
            self._records.pop(f, None)
            self._derived.pop(f, None)
        if target.is_dir():
            shutil.rmtree(target)
        if self.block_plane is not None:
            for f in doomed:
                self.block_plane.on_delete(f)
        return len(doomed)

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalFSDFS({self.root})"
