"""Job counters, mirroring Hadoop's counter groups.

Counters are the measurement backbone of the reproduction: the paper's
efficiency arguments are phrased in terms of the number of intermediate
key-value pairs (communication cost) and the read/write volume of chained
jobs, all of which are recorded here and consumed by the cost model.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator, Mapping

__all__ = ["Counters", "C"]


class C:
    """Well-known counter names used by the engine and the cost model."""

    GROUP_ENGINE = "engine"

    MAP_INPUT_RECORDS = "map_input_records"
    MAP_OUTPUT_RECORDS = "map_output_records"
    MAP_OUTPUT_BYTES = "map_output_bytes"
    COMBINE_INPUT_RECORDS = "combine_input_records"
    COMBINE_OUTPUT_RECORDS = "combine_output_records"
    REDUCE_INPUT_GROUPS = "reduce_input_groups"
    REDUCE_INPUT_RECORDS = "reduce_input_records"
    REDUCE_OUTPUT_RECORDS = "reduce_output_records"
    REDUCE_COMPUTE_OPS = "reduce_compute_ops"
    MAP_COMPUTE_OPS = "map_compute_ops"
    DFS_BYTES_READ = "dfs_bytes_read"
    DFS_BYTES_WRITTEN = "dfs_bytes_written"

    # Recovery telemetry (only present when the job ran under recovery
    # dispatch — a fault plan, max_attempts > 1 or speculation; the seed
    # fast path emits none of these, and the fault-tolerance golden
    # tests compare counters modulo this set).
    TASK_ATTEMPTS = "task_attempts"
    TASK_FAILURES = "task_failures"
    TASK_TIMEOUTS = "task_timeouts"
    SPECULATIVE_LAUNCHES = "speculative_launches"
    SPECULATIVE_WINS = "speculative_wins"

    # Memory-governance telemetry (only present when the cluster runs
    # under a memory budget or in skipping mode; like the recovery
    # block above, these never change canonical counters — golden tests
    # strip the ``spill``/``skipped_`` prefixes alongside ``task_``).
    SPILLED_RECORDS = "spilled_records"
    SPILL_FILES = "spill_files"
    SPILL_BYTES = "spill_bytes"
    SKIPPED_RECORDS = "skipped_records"

    # Worker failure-domain telemetry (only present when a job ran with
    # an engaged worker pool — a ``fail-worker``/``join-worker`` fault
    # spec or ``blacklist_after > 0``; inert clusters emit none of
    # these, and chaos golden tests strip the ``worker``/
    # ``map_output_lost``/``tasks_reexecuted``/``watchdog_`` prefixes
    # alongside the recovery block above).
    WORKER_FAILURES = "worker_failures"
    WORKERS_BLACKLISTED = "workers_blacklisted"
    WORKERS_JOINED = "workers_joined"
    MAP_OUTPUT_LOST = "map_output_lost"
    TASKS_REEXECUTED = "tasks_reexecuted"
    WATCHDOG_DEGRADED = "watchdog_degraded"

    # Durable-storage telemetry (only present when the block plane is
    # engaged via ``Cluster(replication=N)``; unreplicated clusters emit
    # none of these, and chaos golden tests strip the ``block``/
    # ``blocks_``/``replicas_``/``locality_`` prefixes alongside the
    # blocks above — corruption, loss, healing and locality move
    # telemetry only, never canonical counters).
    BLOCK_CORRUPTIONS = "block_corruptions"
    REPLICAS_LOST = "replicas_lost"
    BLOCKS_REREPLICATED = "blocks_rereplicated"
    BLOCKS_UNDER_REPLICATED = "blocks_under_replicated"
    LOCALITY_HITS = "locality_hits"
    LOCALITY_MISSES = "locality_misses"


class Counters:
    """A two-level ``group -> name -> int`` counter map.

    Instances are picklable (plain dicts, no factory closures): parallel
    executors run each task against its own ``Counters`` shard and ship
    the shard back to the engine, which :meth:`merge`\\ s the shards in
    task-id order.
    """

    def __init__(self) -> None:
        self._groups: dict[str, defaultdict[str, int]] = {}

    def add(self, group: str, name: str, amount: int = 1) -> None:
        """Increment ``group/name`` by ``amount`` (negative allowed)."""
        names = self._groups.get(group)
        if names is None:
            names = self._groups[group] = defaultdict(int)
        names[name] += amount

    def get(self, group: str, name: str) -> int:
        """Current value of ``group/name`` (0 when never incremented)."""
        return self._groups.get(group, {}).get(name, 0)

    def engine(self, name: str) -> int:
        """Shorthand for the engine counter group."""
        return self.get(C.GROUP_ENGINE, name)

    def merge(self, other: "Counters") -> None:
        """Accumulate every counter of ``other`` into this object."""
        for group, names in other._groups.items():
            mine = self._groups.get(group)
            if mine is None:
                mine = self._groups[group] = defaultdict(int)
            for name, value in names.items():
                mine[name] += value

    def groups(self) -> Iterator[tuple[str, Mapping[str, int]]]:
        """Iterate ``(group, {name: value})`` pairs, sorted by group."""
        for group in sorted(self._groups):
            yield group, dict(self._groups[group])

    def as_dict(self) -> dict[str, dict[str, int]]:
        """A plain-dict snapshot (for reports and tests)."""
        return {group: dict(names) for group, names in self._groups.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"
