"""The map-reduce execution engine (the Hadoop stand-in).

Runs one :class:`~repro.mapreduce.job.MapReduceJob` at a time, faithfully
reproducing the data flow of Section 2:

1. input files are read from the DFS and partitioned into *splits*, one
   map task per split;
2. each map task applies the map function to every record and buckets
   its emissions by the partitioner;
3. the shuffle merges the buckets per reducer and sorts them by key;
4. each reduce task folds over its key groups and writes one
   ``part-NNNNN`` file back to the DFS.

Everything is deterministic: splits are formed in file order, sorting is
stable, and reducers run in id order — a job run twice produces
byte-identical output, which the test-suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import JobError
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.cost import CostModel, JobCostBreakdown, TaskStats
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.job import MapContext, MapReduceJob, ReduceContext

__all__ = ["Cluster", "JobResult"]


@dataclass
class JobResult:
    """Outcome of one job run: counters, per-task volumes and timing."""

    job_name: str
    output_path: str
    counters: Counters
    map_tasks: list[TaskStats]
    reduce_tasks: list[TaskStats]
    cost: JobCostBreakdown
    output_records: int = 0

    @property
    def simulated_seconds(self) -> float:
        """Modelled end-to-end duration of the job."""
        return self.cost.total_s

    @property
    def shuffled_records(self) -> int:
        """Intermediate key-value pairs — the paper's communication cost."""
        return self.counters.engine(C.MAP_OUTPUT_RECORDS)


@dataclass
class Cluster:
    """A simulated map-reduce cluster bound to one DFS instance.

    Parameters
    ----------
    dfs:
        The file system jobs read from / write to.
    cost_model:
        Rates used to convert job volumes into simulated seconds.
    split_records:
        Map-split granularity in records; the paper's 64 MB HDFS blocks
        become a record-count split since our records are tiny.
    """

    dfs: InMemoryDFS = field(default_factory=InMemoryDFS)
    cost_model: CostModel = field(default_factory=CostModel)
    split_records: int = 20_000

    def run_job(self, job: MapReduceJob) -> JobResult:
        """Execute one job; raises :class:`JobError` on task failure."""
        counters = Counters()
        read_before = self.dfs.bytes_read
        map_contexts, map_tasks = self._run_map_phase(job, counters)
        counters.add(C.GROUP_ENGINE, C.DFS_BYTES_READ, self.dfs.bytes_read - read_before)

        written_before = self.dfs.bytes_written
        if job.reducer is None:
            reduce_tasks, output_records = self._write_map_only_output(
                job, map_contexts, counters
            )
        else:
            reduce_tasks, output_records = self._run_reduce_phase(
                job, map_contexts, counters
            )
        counters.add(
            C.GROUP_ENGINE, C.DFS_BYTES_WRITTEN, self.dfs.bytes_written - written_before
        )

        cost = self.cost_model.job_seconds(
            map_tasks,
            reduce_tasks,
            shuffle_records=counters.engine(C.MAP_OUTPUT_RECORDS),
            shuffle_bytes=counters.engine(C.MAP_OUTPUT_BYTES),
        )
        return JobResult(
            job_name=job.name,
            output_path=job.output_path,
            counters=counters,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            cost=cost,
            output_records=output_records,
        )

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _input_splits(self, job: MapReduceJob) -> list[list[tuple[str, int, str]]]:
        """Split input files into map tasks of ``split_records`` records."""
        splits: list[list[tuple[str, int, str]]] = []
        current: list[tuple[str, int, str]] = []
        for path in job.input_paths:
            for f in self.dfs.resolve(path):
                for lineno, line in enumerate(self.dfs.read_file(f)):
                    current.append((f, lineno, line))
                    if len(current) >= self.split_records:
                        splits.append(current)
                        current = []
                # A split never spans files, like HDFS blocks.
                if current:
                    splits.append(current)
                    current = []
        return splits

    def _run_map_phase(
        self, job: MapReduceJob, counters: Counters
    ) -> tuple[list[MapContext], list[TaskStats]]:
        splits = self._input_splits(job)
        contexts: list[MapContext] = []
        stats: list[TaskStats] = []
        for split in splits:
            ctx = MapContext(counters, job.num_reducers, job.partitioner)
            nbytes = 0
            for path, lineno, line in split:
                nbytes += len(line) + 1
                counters.add(C.GROUP_ENGINE, C.MAP_INPUT_RECORDS)
                ctx.input_records += 1
                try:
                    job.mapper((path, lineno), line, ctx)
                except Exception as exc:  # noqa: BLE001 - wrap task failures
                    raise JobError(
                        f"map task failed in job {job.name!r} on "
                        f"{path}:{lineno}: {exc}"
                    ) from exc
            if job.combiner is not None:
                self._apply_combiner(job, ctx, counters)
            contexts.append(ctx)
            stats.append(
                TaskStats(
                    input_records=ctx.input_records,
                    input_bytes=nbytes,
                    output_records=ctx.output_records,
                    output_bytes=ctx.output_bytes,
                    compute_ops=ctx.compute_ops,
                )
            )
        return contexts, stats

    @staticmethod
    def _apply_combiner(job: MapReduceJob, ctx: MapContext, counters: Counters) -> None:
        """Map-side pre-aggregation: rewrite the task's buckets in place.

        Counters are adjusted so MAP_OUTPUT_* reflect the *shuffled*
        (post-combine) volume — what the cost model charges — while the
        pre-combine volume is recorded under COMBINE_INPUT_RECORDS.
        """
        from repro.mapreduce.job import estimate_size

        for r, bucket in enumerate(ctx.buckets):
            if not bucket:
                continue
            bucket.sort(key=lambda kv: job.sort_key(kv[0]))
            combined: list[tuple] = []
            i = 0
            while i < len(bucket):
                key = bucket[i][0]
                j = i
                values = []
                while j < len(bucket) and bucket[j][0] == key:
                    values.append(bucket[j][1])
                    j += 1
                for value in job.combiner(key, values):
                    combined.append((key, value))
                i = j
            old_bytes = sum(estimate_size(k) + estimate_size(v) for k, v in bucket)
            new_bytes = sum(estimate_size(k) + estimate_size(v) for k, v in combined)
            counters.add(C.GROUP_ENGINE, C.COMBINE_INPUT_RECORDS, len(bucket))
            counters.add(C.GROUP_ENGINE, C.COMBINE_OUTPUT_RECORDS, len(combined))
            counters.add(
                C.GROUP_ENGINE, C.MAP_OUTPUT_RECORDS, len(combined) - len(bucket)
            )
            counters.add(C.GROUP_ENGINE, C.MAP_OUTPUT_BYTES, new_bytes - old_bytes)
            ctx.output_records += len(combined) - len(bucket)
            ctx.output_bytes += new_bytes - old_bytes
            ctx.buckets[r] = combined

    # ------------------------------------------------------------------
    # Reduce phase
    # ------------------------------------------------------------------
    def _run_reduce_phase(
        self, job: MapReduceJob, map_contexts: list[MapContext], counters: Counters
    ) -> tuple[list[TaskStats], int]:
        stats: list[TaskStats] = []
        total_output = 0
        for r in range(job.num_reducers):
            # Merge this reducer's buckets from every map task, then sort
            # (stable, so same-key values keep map emission order).
            bucket: list[tuple] = []
            input_bytes = 0
            for ctx in map_contexts:
                bucket.extend(ctx.buckets[r])
            bucket.sort(key=lambda kv: job.sort_key(kv[0]))

            rctx = ReduceContext(counters, r)
            i = 0
            groups = 0
            while i < len(bucket):
                key = bucket[i][0]
                j = i
                values = []
                while j < len(bucket) and bucket[j][0] == key:
                    values.append(bucket[j][1])
                    j += 1
                groups += 1
                rctx.input_records += len(values)
                try:
                    job.reducer(key, values, rctx)
                except Exception as exc:  # noqa: BLE001 - wrap task failures
                    raise JobError(
                        f"reduce task {r} failed in job {job.name!r} "
                        f"on key {key!r}: {exc}"
                    ) from exc
                i = j
            counters.add(C.GROUP_ENGINE, C.REDUCE_INPUT_GROUPS, groups)
            counters.add(C.GROUP_ENGINE, C.REDUCE_INPUT_RECORDS, rctx.input_records)

            part_path = f"{job.output_path}/part-{r:05d}"
            nbytes = self.dfs.write_file(part_path, rctx.output_lines)
            total_output += len(rctx.output_lines)
            stats.append(
                TaskStats(
                    input_records=rctx.input_records,
                    input_bytes=input_bytes,
                    output_records=len(rctx.output_lines),
                    output_bytes=nbytes,
                    compute_ops=rctx.compute_ops,
                )
            )
        return stats, total_output

    def _write_map_only_output(
        self, job: MapReduceJob, map_contexts: list[MapContext], counters: Counters
    ) -> tuple[list[TaskStats], int]:
        """Map-only jobs write partitioned but unsorted/unreduced output.

        Map emissions must already be text lines (``value`` is written
        verbatim, the key only drives partitioning).
        """
        stats: list[TaskStats] = []
        total_output = 0
        for r in range(job.num_reducers):
            lines: list[str] = []
            for ctx in map_contexts:
                for __, value in ctx.buckets[r]:
                    if not isinstance(value, str):
                        raise JobError(
                            f"map-only job {job.name!r} emitted a non-string "
                            f"value: {value!r}"
                        )
                    lines.append(value)
            part_path = f"{job.output_path}/part-{r:05d}"
            nbytes = self.dfs.write_file(part_path, lines)
            counters.add(C.GROUP_ENGINE, C.REDUCE_OUTPUT_RECORDS, len(lines))
            total_output += len(lines)
            stats.append(
                TaskStats(
                    input_records=len(lines),
                    output_records=len(lines),
                    output_bytes=nbytes,
                )
            )
        return stats, total_output
