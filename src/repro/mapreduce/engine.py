"""The map-reduce execution engine (the Hadoop stand-in).

Runs one :class:`~repro.mapreduce.job.MapReduceJob` at a time, faithfully
reproducing the data flow of Section 2:

1. input files are read from the DFS and partitioned into *splits*, one
   map task per split;
2. each map task applies the map function to every record and buckets
   its emissions by the partitioner;
3. the shuffle merges the buckets per reducer and sorts them by key;
4. each reduce task folds over its key groups and writes one
   ``part-NNNNN`` file back to the DFS.

Records cross this pipeline as Python objects when the job declares
record codecs (the typed record path of PR 2): map input is decoded at
most once per file version, shuffle values are whatever the mapper
emitted, and reduce output is encoded exactly once at part-file write —
with byte accounting identical to the string path at every stage (the
job's shuffle codec reproduces the string-era sizes, and DFS volumes are
always the encoded lines).

With a ``memory_budget`` the engine runs under *memory governance*
(Hadoop's ``io.sort.mb``): each map task bounds its buffered shuffle
bytes — measured by the job's shuffle codec, the same sizing the
canonical ``MAP_OUTPUT_BYTES`` counter charges — and spills sorted runs
to the DFS when the budget is exceeded; the reduce side then k-way
merges runs instead of sorting one resident bucket.  Spill points are a
pure function of the emission sequence and the merge key reproduces the
unbounded stable sort exactly (see :mod:`repro.mapreduce.spill`), so a
budgeted run writes byte-identical part files and differs only in the
``spill*`` telemetry and the non-canonical spill-overhead cost term.

Tasks are dispatched through a pluggable
:class:`~repro.mapreduce.executor.TaskExecutor` (``serial``, ``thread``
or ``process``), so the k-way parallelism the cost model *assumes* can
be backed by real cores.  Each task is a self-contained unit: it runs
against its own :class:`Counters` shard and returns its buckets/output
lines as a result instead of mutating shared state, and the engine
merges shards and results in task-id order.  Everything therefore stays
deterministic at any worker count: splits are formed in file order,
sorting is stable, part files are written in reducer-id order — a job
run twice, with any executor, produces byte-identical output, which the
test-suite asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from itertools import groupby, repeat
from operator import itemgetter
from typing import Any

from repro.data.io import RECT_CODEC
from repro.errors import BadRecordError, JobError, TaskRetryExhausted
from repro.kernels import numpy_or_none, resolve_kernel
from repro.kernels.batch import RectBatch
from repro.mapreduce.blocks import BlockPlane
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.cost import CostModel, JobCostBreakdown, TaskStats
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.executor import default_workers, make_executor
from repro.mapreduce.faults import (
    FaultPlan,
    PhaseReport,
    RetryPolicy,
    WorkerManager,
    run_phase_with_recovery,
)
from repro.mapreduce.job import (
    BucketSegment,
    MapContext,
    MapReduceJob,
    ReduceContext,
    SpillingMapContext,
    default_sort_key,
)
from repro.mapreduce.spill import SpillRun, SpillStore, merge_runs, spill_dir
from repro.mapreduce.workers import WorkerPool
from repro.obs.ledger import NullLedger
from repro.obs.profile import TaskProfiler, run_profiled
from repro.obs.trace import NullRecorder

__all__ = ["Cluster", "JobResult", "PhaseTimings"]


@dataclass
class PhaseTimings:
    """Measured wall-clock decomposition of one job's execution stages.

    The stages partition (almost all of) ``JobResult.wall_clock_seconds``:
    split construction, map task execution, shuffle merge, reduce task
    execution and part-file writes.  Map-only jobs report their
    partitioned output write under ``write_s`` and 0 for
    ``shuffle_s``/``reduce_s``.  The tiny remainder of the total is
    executor construction and result bookkeeping.
    """

    split_s: float = 0.0
    map_s: float = 0.0
    shuffle_s: float = 0.0
    reduce_s: float = 0.0
    write_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Sum of the measured stages (<= the job's wall clock)."""
        return self.split_s + self.map_s + self.shuffle_s + self.reduce_s + self.write_s

    def as_dict(self) -> dict[str, float]:
        return {
            "split_s": self.split_s,
            "map_s": self.map_s,
            "shuffle_s": self.shuffle_s,
            "reduce_s": self.reduce_s,
            "write_s": self.write_s,
            "total_s": self.total_s,
        }


@dataclass
class JobResult:
    """Outcome of one job run: counters, per-task volumes and timing."""

    job_name: str
    output_path: str
    counters: Counters
    map_tasks: list[TaskStats]
    reduce_tasks: list[TaskStats]
    cost: JobCostBreakdown
    output_records: int = 0
    #: ``True`` when the job was *not* re-executed: the workflow restored
    #: this result from its checkpoint manifest (see
    #: :meth:`repro.mapreduce.workflow.Workflow.resume`)
    resumed: bool = False
    #: measured end-to-end duration of the job on the host machine
    wall_clock_seconds: float = 0.0
    #: wall-clock decomposition of the total (split/map/shuffle/reduce/write)
    phases: PhaseTimings = field(default_factory=PhaseTimings)
    #: per-task ``(start, end)`` wall-clock offsets from job start,
    #: measured *inside* the workers (true durations on any executor)
    map_task_wall: list[tuple[float, float]] = field(default_factory=list)
    reduce_task_wall: list[tuple[float, float]] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Modelled end-to-end duration of the job."""
        return self.cost.total_s

    @property
    def shuffled_records(self) -> int:
        """Intermediate key-value pairs — the paper's communication cost."""
        return self.counters.engine(C.MAP_OUTPUT_RECORDS)


# ----------------------------------------------------------------------
# Task units.  Workers are module-level pure functions of
# (phase payload, task index) so any executor back-end can run them;
# results carry everything the engine needs to merge deterministically.
# ----------------------------------------------------------------------
@dataclass
class _MapPhase:
    """Immutable payload shared by every map task of one job.

    Split entries are ``(path, lineno, record, nbytes)``: the map input
    record (a text line, or a typed record when the job declares an
    input codec) plus its encoded size, so map-side byte accounting is
    identical on both paths.  ``memory_budget`` (bytes, ``None`` =
    unbounded) switches emission buffering to the spilling context.
    ``use_batch`` routes the whole split through ``job.batch_mapper``
    (columnar fast path); the engine sets it only when the job declares
    one and no per-record machinery (faults, retries) is live.  Under a
    memory budget the batch mapper still runs, but its emissions are
    replayed record by record so spill points are unchanged.
    ``columnar`` selects :class:`BucketSegment` storage inside
    ``emit_batch`` (the cluster's ``columnar_shuffle`` switch);
    ``split_batches`` optionally carries one pre-decoded
    :class:`~repro.kernels.batch.RectBatch` slice per split.
    ``profile`` wraps the task body in cProfile (the cluster's
    profiler); the stats dict rides back in the result.
    """

    job: MapReduceJob
    splits: list[list[tuple[str, int, Any, int]]]
    memory_budget: int | None = None
    use_batch: bool = False
    columnar: bool = True
    split_batches: list[RectBatch | None] | None = None
    profile: bool = False


@dataclass
class _MapTaskResult:
    """What one map task hands back to the engine.

    ``t_start``/``t_end`` are :func:`time.perf_counter` stamps taken
    inside the worker, so thread/process back-ends report true per-task
    durations (CLOCK_MONOTONIC is system-wide on Linux, making forked
    workers' stamps comparable with the parent's).
    """

    buckets: list[list[tuple[Any, Any]]]
    bucket_bytes: list[int]
    counters: Counters
    stats: TaskStats
    t_start: float = 0.0
    t_end: float = 0.0
    #: serialized sorted runs per reducer (budgeted tasks only) — the
    #: lines ride the result because process-pool children write to a
    #: *copy* of the DFS; the engine persists them parent-side
    spill_runs: list[list[list[str]]] | None = None
    #: bucket-local sequence number of the first resident record
    spill_base: list[int] | None = None
    #: columnar buckets (per-reducer :class:`BucketSegment` runs) from
    #: tasks that emitted through ``emit_batch`` — ``buckets`` is then
    #: all-empty and the shuffle merges segments instead of pairs
    segments: list[list[BucketSegment]] | None = None
    #: raw cProfile stats of the task body (profiled runs only);
    #: a plain dict, so it pickles across the process executor
    profile: dict | None = None


@dataclass
class _ReducePhase:
    """Immutable payload shared by every reduce task of one job.

    ``buckets[r]`` is reducer ``r``'s merged (map-task order) but not
    yet sorted input.  Under a memory budget that spilled, ``runs[r]``
    instead holds reducer ``r``'s sorted runs (``buckets`` is empty) and
    ``store`` snapshots the spill side files for :func:`merge_runs`.
    When every map task emitted columnar, ``seg_buckets[r]`` holds
    reducer ``r``'s :class:`BucketSegment` runs in map-task order
    (``buckets`` is empty) and the reduce task groups keys with a numpy
    stable argsort instead of the Python sort.
    """

    job: MapReduceJob
    buckets: list[list[tuple[Any, Any]]]
    runs: list[list[SpillRun]] | None = None
    store: SpillStore | None = None
    seg_buckets: list[list[BucketSegment]] | None = None
    profile: bool = False


@dataclass
class _ReduceTaskResult:
    """What one reduce task hands back to the engine.

    ``lines`` holds text lines, or typed records for jobs with an
    ``output_codec`` (the engine encodes them once at part-file write).
    ``t_start``/``t_end`` are worker-side stamps, as on the map side.
    """

    lines: list[Any]
    input_records: int
    compute_ops: int
    counters: Counters
    t_start: float = 0.0
    t_end: float = 0.0
    #: raw cProfile stats of the task body (profiled runs only)
    profile: dict | None = None


def _sorted_by_key(
    bucket: list[tuple[Any, Any]], sort_key
) -> list[tuple[Any, Any]]:
    """Stable-sort a bucket by ``sort_key`` of the record key.

    Decorate-sort-undecorate: the key function runs exactly once per
    record and the original index breaks ties, so equal-key records keep
    map emission order (the engine's stability guarantee).
    """
    decorated = sorted((sort_key(kv[0]), i) for i, kv in enumerate(bucket))
    return [bucket[i] for __, i in decorated]


def _grouped(ordered: list[tuple[Any, Any]]):
    """Yield ``(key, [values])`` runs of adjacent equal keys."""
    for key, run in groupby(ordered, key=itemgetter(0)):
        yield key, [v for __, v in run]


def _segment_groups(segs: list[BucketSegment], sort_key):
    """Yield ``(key, [values])`` groups of one reducer's segment runs.

    Segments arrive concatenated map-task-major with emission order
    inside each task, so a *stable* argsort by key reproduces the scalar
    path's ``(sort_key(key), map_task, seq)`` order exactly — but only
    when the sort key provably is the key itself (the job default); any
    custom ordering falls back to the reference Python sort over the
    row form.  The join jobs' one-distinct-key-per-reducer layout takes
    the no-sort fast path: a single group handed the concatenated
    values as-is.
    """
    np = numpy_or_none()
    if np is None or sort_key is not default_sort_key:
        pairs = [p for seg in segs for p in seg.pairs()]
        yield from _grouped(_sorted_by_key(pairs, sort_key))
        return
    if not segs:
        return
    if len(segs) == 1:
        keys = segs[0].keys
        values = segs[0].values
    else:
        keys = np.concatenate([seg.keys for seg in segs])
        values = []
        for seg in segs:
            values.extend(seg.values)
    n = len(values)
    if n == 0:
        return
    if int(keys[0]) == int(keys[-1]) and int(keys.min()) == int(keys.max()):
        # One distinct key: the concatenation already is the group.
        yield int(keys[0]), values
        return
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    bounds = np.flatnonzero(sk[1:] != sk[:-1]) + 1
    starts = np.concatenate(([0], bounds)).tolist()
    ends = np.append(bounds, n).tolist()
    ol = order.tolist()
    for lo, hi in zip(starts, ends):
        yield int(sk[lo]), [values[i] for i in ol[lo:hi]]


def _run_map_task(
    phase: _MapPhase,
    index: int,
    skips: tuple[int, ...] = (),
    poison: tuple[int, ...] = (),
) -> _MapTaskResult:
    """Dispatch one map task, optionally under the per-task profiler.

    The cProfile wrapper lives here — outside the body — so the
    unprofiled path is a single attribute check and the profiled stats
    cover exactly the task body on every executor back-end.
    """
    if not phase.profile:
        return _map_task_body(phase, index, skips, poison)
    result, stats = run_profiled(_map_task_body, phase, index, skips, poison)
    result.profile = stats
    return result


def _map_task_body(
    phase: _MapPhase,
    index: int,
    skips: tuple[int, ...] = (),
    poison: tuple[int, ...] = (),
) -> _MapTaskResult:
    """One self-contained map task: split in, buckets + counter shard out.

    ``skips`` are split offsets quarantined by earlier attempts of this
    task (Hadoop's skipping mode): those records are not read, mapped or
    counted.  ``poison`` are offsets an injected ``poison-record`` fault
    declared bad; hitting one raises :class:`BadRecordError` — as does
    any genuine mapper failure, so the recovery layer can locate the
    record either way.  Failures keep the seed's message shape
    (``BadRecordError`` is a :class:`JobError`).
    """
    t_start = time.perf_counter()
    job = phase.job
    split = phase.splits[index]
    counters = Counters()
    budget = phase.memory_budget
    if budget is not None and (job.reducer is not None or job.combiner is not None):
        # Map-only jobs have no sort buffer to bound (their emissions
        # stream straight to partitioned output), like Hadoop.
        ctx: MapContext = SpillingMapContext(
            counters,
            job.num_reducers,
            job.partitioner,
            job.shuffle_codec,
            budget=budget,
            sort_key=job.sort_key,
        )
    else:
        ctx = MapContext(
            counters,
            job.num_reducers,
            job.partitioner,
            job.shuffle_codec,
            columnar=phase.columnar,
        )
    batch_mapper = job.batch_mapper
    if (
        phase.use_batch
        and batch_mapper is not None
        and job.combiner is None
        and not skips
        and not poison
    ):
        nbytes = sum(entry[3] for entry in split)
        processed = len(split)
        batch = (
            phase.split_batches[index]
            if phase.split_batches is not None
            else None
        )
        try:
            batch_mapper(split, ctx, batch)
        except Exception as exc:  # noqa: BLE001 - wrap task failures
            raise JobError(
                f"map task failed in job {job.name!r}: {exc}"
            ) from exc
        if ctx.segments is not None and any(ctx.buckets):
            raise JobError(
                f"batch mapper of job {job.name!r} mixed emit() and "
                f"emit_batch() in one task"
            )
        ctx.input_records = processed
        counters.add(C.GROUP_ENGINE, C.MAP_INPUT_RECORDS, processed)
        spill_runs = spill_base = None
        if isinstance(ctx, SpillingMapContext):
            spill_runs = ctx.spill_runs
            spill_base = ctx.spill_base
        return _MapTaskResult(
            buckets=ctx.buckets,
            bucket_bytes=ctx.bucket_bytes,
            counters=counters,
            stats=TaskStats(
                input_records=processed,
                input_bytes=nbytes,
                output_records=ctx.output_records,
                output_bytes=ctx.output_bytes,
                compute_ops=ctx.compute_ops,
            ),
            t_start=t_start,
            t_end=time.perf_counter(),
            spill_runs=spill_runs,
            spill_base=spill_base,
            segments=ctx.segments,
        )
    mapper = job.mapper
    nbytes = 0
    processed = 0
    for offset, (path, lineno, record, record_bytes) in enumerate(split):
        if offset in skips:
            continue
        if offset in poison:
            raise BadRecordError(
                f"map task failed in job {job.name!r} on "
                f"{path}:{lineno}: injected poison record",
                offset=offset,
                path=path,
                lineno=lineno,
                record=repr(record),
            )
        nbytes += record_bytes
        processed += 1
        try:
            mapper((path, lineno), record, ctx)
        except Exception as exc:  # noqa: BLE001 - wrap task failures
            raise BadRecordError(
                f"map task failed in job {job.name!r} on "
                f"{path}:{lineno}: {exc}",
                offset=offset,
                path=path,
                lineno=lineno,
                record=repr(record),
            ) from exc
    ctx.input_records = processed
    # One add per task, not one per record — the map inner loop stays
    # free of counter bookkeeping.
    counters.add(C.GROUP_ENGINE, C.MAP_INPUT_RECORDS, processed)
    spill_runs = spill_base = None
    if isinstance(ctx, SpillingMapContext):
        if job.combiner is not None and ctx.spilled:
            # The combiner contract is whole-bucket grouping: restore
            # the unbounded bucket shape first (spill telemetry stays —
            # the spills did happen).
            ctx.unspill()
        elif job.combiner is None:
            spill_runs = ctx.spill_runs
            spill_base = ctx.spill_base
    if job.combiner is not None:
        _apply_combiner(job, ctx, counters)
    return _MapTaskResult(
        buckets=ctx.buckets,
        bucket_bytes=ctx.bucket_bytes,
        counters=counters,
        stats=TaskStats(
            input_records=ctx.input_records,
            input_bytes=nbytes,
            output_records=ctx.output_records,
            output_bytes=ctx.output_bytes,
            compute_ops=ctx.compute_ops,
        ),
        t_start=t_start,
        t_end=time.perf_counter(),
        spill_runs=spill_runs,
        spill_base=spill_base,
    )


# Opt in to the recovery layer's skipping mode (Hadoop's
# ``mapred.skip.mode``): retries of a failed attempt are re-dispatched
# with the located bad record quarantined.
_run_map_task.supports_record_skipping = True


def _apply_combiner(job: MapReduceJob, ctx: MapContext, counters: Counters) -> None:
    """Map-side pre-aggregation: rewrite the task's buckets in place.

    Counters are adjusted so MAP_OUTPUT_* reflect the *shuffled*
    (post-combine) volume — what the cost model charges — while the
    pre-combine volume is recorded under COMBINE_INPUT_RECORDS.  Byte
    accounting reuses the per-bucket totals tracked at emission time and
    sizes each combined key once per group, not once per record.
    """
    key_size = job.shuffle_codec.key_size
    value_size = job.shuffle_codec.value_size
    for r, bucket in enumerate(ctx.buckets):
        if not bucket:
            continue
        combined: list[tuple] = []
        new_bytes = 0
        for key, values in _grouped(_sorted_by_key(bucket, job.sort_key)):
            key_bytes = key_size(key)
            for value in job.combiner(key, values):
                combined.append((key, value))
                new_bytes += key_bytes + value_size(value)
        old_bytes = ctx.bucket_bytes[r]
        counters.add(C.GROUP_ENGINE, C.COMBINE_INPUT_RECORDS, len(bucket))
        counters.add(C.GROUP_ENGINE, C.COMBINE_OUTPUT_RECORDS, len(combined))
        counters.add(
            C.GROUP_ENGINE, C.MAP_OUTPUT_RECORDS, len(combined) - len(bucket)
        )
        counters.add(C.GROUP_ENGINE, C.MAP_OUTPUT_BYTES, new_bytes - old_bytes)
        ctx.output_records += len(combined) - len(bucket)
        ctx.output_bytes += new_bytes - old_bytes
        ctx.buckets[r] = combined
        ctx.bucket_bytes[r] = new_bytes


def _run_reduce_task(phase: _ReducePhase, r: int) -> _ReduceTaskResult:
    """Dispatch one reduce task, optionally under the per-task profiler."""
    if not phase.profile:
        return _reduce_task_body(phase, r)
    result, stats = run_profiled(_reduce_task_body, phase, r)
    result.profile = stats
    return result


def _reduce_task_body(phase: _ReducePhase, r: int) -> _ReduceTaskResult:
    """One self-contained reduce task: merged bucket in, lines out."""
    t_start = time.perf_counter()
    job = phase.job
    counters = Counters()
    rctx = ReduceContext(counters, r)
    reducer = job.reducer
    groups = 0
    if phase.runs is not None:
        # Budgeted shuffle: k-way merge the sorted runs — byte-identical
        # to the resident stable sort (see repro.mapreduce.spill).
        groups_iter = _grouped(merge_runs(phase.runs[r], phase.store, job.sort_key))
    elif phase.seg_buckets is not None:
        # Columnar shuffle: group contiguous key slices of the
        # concatenated segments (numpy stable argsort, or the scalar
        # sort when the job customises its ordering).
        groups_iter = _segment_groups(phase.seg_buckets[r], job.sort_key)
    else:
        # Stable sort: same-key values keep map emission order.
        groups_iter = _grouped(_sorted_by_key(phase.buckets[r], job.sort_key))
    for key, values in groups_iter:
        groups += 1
        rctx.input_records += len(values)
        try:
            reducer(key, values, rctx)
        except Exception as exc:  # noqa: BLE001 - wrap task failures
            raise JobError(
                f"reduce task {r} failed in job {job.name!r} "
                f"on key {key!r}: {exc}"
            ) from exc
    counters.add(C.GROUP_ENGINE, C.REDUCE_INPUT_GROUPS, groups)
    counters.add(C.GROUP_ENGINE, C.REDUCE_INPUT_RECORDS, rctx.input_records)
    return _ReduceTaskResult(
        lines=rctx.output_lines,
        input_records=rctx.input_records,
        compute_ops=rctx.compute_ops,
        counters=counters,
        t_start=t_start,
        t_end=time.perf_counter(),
    )


class _WriteRecovery:
    """Absorbs injected part-file commit failures (plan phase ``write``).

    A matching ``fail`` spec makes the commit of part ``r`` raise
    *before* any byte reaches the DFS (Hadoop's failed output commit),
    so absorbed write faults leave ``DFS_BYTES_WRITTEN`` untouched.  The
    engine calls :meth:`precommit` in front of every part write; it
    loops attempts until one is fault-free, charging simulated backoff
    per retry, and raises :class:`~repro.errors.TaskRetryExhausted` when
    the part burned ``max_attempts`` failures.
    """

    __slots__ = (
        "_job", "_plan", "_policy", "_rec", "_led", "failures", "backoff_s"
    )

    def __init__(
        self,
        job_name: str,
        plan: FaultPlan | None,
        policy: RetryPolicy,
        recorder: NullRecorder,
        ledger: NullLedger | None = None,
    ) -> None:
        self._job = job_name
        self._plan = plan
        self._policy = policy
        self._rec = recorder
        self._led = ledger if ledger is not None else NullLedger()
        self.failures = 0
        self.backoff_s = 0.0

    def precommit(self, r: int, part_path: str) -> None:
        if self._plan is None or self._plan.is_empty:
            return
        attempt = 0
        while any(
            spec.kind == "fail"
            for spec in self._plan.matching(self._job, "write", r, attempt)
        ):
            self.failures += 1
            if self._led.enabled:
                self._led.event(
                    "task_attempt",
                    phase="write",
                    task=r,
                    attempt=attempt,
                    outcome="failed",
                    charged=True,
                    error=f"injected DFS write failure: {part_path}",
                )
            attempt += 1
            if attempt >= self._policy.max_attempts:
                raise TaskRetryExhausted(
                    f"injected DFS write failure: commit of {part_path} in job "
                    f"{self._job!r} failed {attempt} attempt(s)"
                )
            backoff = self._policy.backoff_before(attempt)
            self.backoff_s += backoff
            if self._led.enabled:
                self._led.event(
                    "task_retry",
                    phase="write",
                    task=r,
                    attempt=attempt,
                    backoff_s=backoff,
                )
            if self._rec.enabled:
                self._rec.instant(
                    "retry-backoff",
                    cat="attempt",
                    track="write attempts",
                    args={
                        "part": r,
                        "attempt": attempt,
                        "backoff_simulated_s": backoff,
                    },
                )


@dataclass
class Cluster:
    """A simulated map-reduce cluster bound to one DFS instance.

    Parameters
    ----------
    dfs:
        The file system jobs read from / write to.
    cost_model:
        Rates used to convert job volumes into simulated seconds.
    split_records:
        Map-split granularity in records; the paper's 64 MB HDFS blocks
        become a record-count split since our records are tiny.
    executor:
        Task dispatch back-end: ``"serial"`` (default), ``"thread"`` or
        ``"process"``.  All three produce byte-identical output; see
        :mod:`repro.mapreduce.executor`.
    num_workers:
        Worker count for the parallel back-ends (``None`` = usable CPUs).
    typed_io:
        ``True`` (default): jobs with record codecs hand typed records
        across job boundaries — DFS-resident objects are reused and line
        files are decoded at most once per file version.  ``False``
        forces the seed codec path: every input record is re-parsed from
        its line on every read (string-era per-record costs), which the
        golden equivalence tests and the PR 2 benchmark use as the
        before-side.  Both settings produce byte-identical output and
        identical counters.
    recorder:
        Observability sink (:mod:`repro.obs.trace`).  The default
        :class:`~repro.obs.trace.NullRecorder` reduces every
        instrumentation point to a no-op; a
        :class:`~repro.obs.trace.TraceRecorder` collects job/phase/task
        spans for Perfetto export.  Recording never changes counters,
        part files or simulated seconds.
    ledger:
        Run-event journal (:mod:`repro.obs.ledger`).  The default
        :class:`~repro.obs.ledger.NullLedger` reduces every journal
        point to one attribute check; a
        :class:`~repro.obs.ledger.RunLedger` appends typed events —
        run manifest, job start/commit, task attempts, spills,
        speculation — to its sink.  Like the recorder, the ledger only
        observes.
    profiler:
        Optional :class:`~repro.obs.profile.TaskProfiler`.  When set,
        every map/reduce task body runs under cProfile and the stats
        ride back in the task results (picklable, so all three
        executors ship them) to be merged per phase × kernel.
    retry:
        The :class:`~repro.mapreduce.faults.RetryPolicy` governing task
        re-dispatch and speculation.  The default (``max_attempts=1``,
        no speculation) keeps the seed's fail-fast dispatch with zero
        overhead; Hadoop 0.20's own default allows 4 attempts.
    fault_plan:
        Optional :class:`~repro.mapreduce.faults.FaultPlan` injecting
        deterministic chaos into every job this cluster runs.  Any plan
        the retry policy absorbs leaves part files, pre-existing
        counters and simulated seconds byte-identical to a fault-free
        run (the determinism contract).
    checkpoint_dir:
        DFS directory where :class:`~repro.mapreduce.workflow.Workflow`
        persists its per-job completion manifest (``None`` disables
        checkpointing).
    resume:
        ``True`` makes workflows restore completed jobs from the
        checkpoint manifest instead of re-running them, and makes the
        join algorithms keep (rather than delete) existing output
        directories on startup.  Requires a DFS with durable state to
        resume *from*: constructing a resuming cluster on a fresh
        in-memory DFS raises immediately (use a ``LocalFSDFS`` root).
    memory_budget:
        Per-map-task shuffle buffer bound in bytes (``None`` =
        unbounded, the seed behaviour).  Tasks exceeding it spill sorted
        runs to the DFS and reduce tasks switch to an external k-way
        merge; output stays byte-identical and the canonical counters
        and simulated seconds are unchanged — the pressure shows up only
        in ``spilled_records``/``spill_files``/``spill_bytes`` and the
        cost breakdown's non-canonical ``spill_overhead_s``.
    kernel:
        Compute kernel for the join algorithms and batch map paths:
        ``"auto"`` (default) picks ``"numpy"`` when numpy imports and
        falls back to ``"python"`` otherwise; either name forces that
        implementation.  The ``REPRO_KERNEL`` environment variable
        overrides the constructor value.  Both kernels produce
        byte-identical part files, canonical counters and simulated
        seconds — the kernel only changes wall-clock speed.
    columnar_shuffle:
        ``True`` (default): jobs with batch mappers move record *batches*
        end to end — split inputs arrive as cached columnar
        :class:`~repro.kernels.batch.RectBatch` slices, emissions are
        routed vectorized into per-bucket :class:`BucketSegment` runs,
        and reduce tasks group keys with a numpy stable argsort.
        ``False`` keeps the batch mappers but stores row ``(key, value)``
        pairs and sorts scalar — the PR 6 behaviour, kept as an honest
        benchmark baseline.  Both settings produce byte-identical part
        files, canonical counters and simulated seconds.
    worker_pool:
        Optional :class:`~repro.mapreduce.workers.WorkerPool` of named
        virtual workers (the cluster's failure domains).  ``None``
        (default) lazily builds a pool sized to the executor's worker
        count the first time a job *engages* it — which happens only
        under recovery dispatch when the fault plan carries
        ``fail-worker``/``join-worker`` specs, or
        ``retry.blacklist_after > 0``, or an explicit pool was passed.
        Disengaged jobs never touch the pool: zero new counters, zero
        new ledger events, behaviour bit-for-bit the pre-worker
        dispatch.  The pool persists across the jobs of a workflow, so
        deaths and blacklists carry over like real node state.
    replication:
        Block replication factor of the durable-storage plane
        (:mod:`repro.mapreduce.blocks`).  ``None`` (default) leaves the
        DFS exactly as before — no blocks, no checksums, byte-for-byte
        the unreplicated dispatch.  Setting ``N >= 1`` chunks every DFS
        file into ``split_records``-record blocks placed on ``N``
        distinct workers of the pool, verifies a CRC32C checksum on
        every read (corrupt replicas fail over and count
        ``BLOCK_CORRUPTIONS``), re-replicates after worker deaths
        before the next job's barrier, and makes map scheduling
        locality-aware (``LOCALITY_HITS``/``LOCALITY_MISSES``), with
        remote-read and healing traffic charged to the cost
        breakdown's non-canonical ``network_overhead_s``.  Canonical
        part files, counters and simulated seconds stay byte-identical
        to the unreplicated run.
    """

    dfs: InMemoryDFS = field(default_factory=InMemoryDFS)
    cost_model: CostModel = field(default_factory=CostModel)
    split_records: int = 20_000
    executor: str = "serial"
    num_workers: int | None = None
    typed_io: bool = True
    recorder: NullRecorder = field(default_factory=NullRecorder)
    ledger: NullLedger = field(default_factory=NullLedger)
    profiler: TaskProfiler | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: FaultPlan | None = None
    checkpoint_dir: str | None = None
    resume: bool = False
    memory_budget: int | None = None
    kernel: str = "auto"
    columnar_shuffle: bool = True
    worker_pool: WorkerPool | None = None
    replication: int | None = None
    #: cumulative canonical simulated seconds of every job this cluster
    #: has committed — the simulated clock ``at_s`` worker faults
    #: trigger against (never wall time, so replays are deterministic)
    simulated_elapsed_s: float = field(default=0.0, init=False, repr=False)
    #: the lazily attached durable-storage plane (``replication`` set)
    _block_plane: BlockPlane | None = field(default=None, init=False, repr=False)

    @property
    def resolved_kernel(self) -> str:
        """The concrete kernel this cluster runs: ``"numpy"`` or ``"python"``.

        Resolved per call so a ``REPRO_KERNEL`` override set after
        construction still applies.
        """
        return resolve_kernel(self.kernel)

    def __post_init__(self) -> None:
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise JobError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        if self.replication is not None and self.replication < 1:
            raise JobError(
                f"replication must be >= 1, got {self.replication}"
            )
        if (
            self.resume
            and type(self.dfs) is InMemoryDFS
            and self.dfs.is_empty
        ):
            # The same mistake the CLI rejects as `--resume` without
            # `--dfs-root`: a fresh in-memory DFS starts empty, so there
            # is no checkpoint manifest or prior output to resume from.
            raise JobError(
                "resume=True needs durable DFS state (e.g. a LocalFSDFS "
                "root): a fresh in-memory DFS has nothing to resume from"
            )

    def run_job(self, job: MapReduceJob) -> JobResult:
        """Execute one job; raises :class:`JobError` on task failure.

        With a fault plan or an active retry policy, tasks run under
        recovery dispatch (:func:`repro.mapreduce.faults.run_phase_with_recovery`):
        failed attempts are retried up to ``retry.max_attempts``, part
        writes absorb injected commit failures, stragglers may race
        speculative backups, and the recovery telemetry lands in the
        ``task_*``/``speculative_*`` counters plus the cost breakdown's
        fault-overhead term.  Otherwise the dispatch is byte-for-byte
        the seed fast path.
        """
        started = time.perf_counter()
        rec = self.recorder
        led = self.ledger
        if led.enabled:
            led.manifest(
                kernel=self.resolved_kernel,
                executor=self.executor,
                num_workers=self.num_workers,
                typed_io=self.typed_io,
                columnar_shuffle=self.columnar_shuffle,
                memory_budget=self.memory_budget,
                split_records=self.split_records,
            )
            led.event(
                "job_start",
                job=job.name,
                inputs=list(job.input_paths),
                output=job.output_path,
                num_reducers=job.num_reducers,
                map_only=job.reducer is None,
            )
        executor = make_executor(self.executor, self.num_workers)
        counters = Counters()
        timings = PhaseTimings()
        plane = self._ensure_block_plane()
        if (
            plane is None
            and self.fault_plan is not None
            and self.fault_plan.has_storage_faults
        ):
            raise JobError(
                "corrupt-block/lose-replica faults need the storage plane: "
                "set Cluster(replication=N)"
            )
        recovery_active = (
            (self.fault_plan is not None and not self.fault_plan.is_empty)
            or self.retry.active
            or plane is not None
        )
        wrec = (
            _WriteRecovery(job.name, self.fault_plan, self.retry, rec, led)
            if recovery_active
            else None
        )
        workers = self._worker_manager(job, recovery_active, rec, led)
        reduce_report: PhaseReport | None = None

        with rec.span(f"job:{job.name}", cat="job", track="engine") as job_span:
            if plane is not None:
                # The disk rots before the job reads: storage faults are
                # enacted at the job-start barrier so detection happens
                # deterministically during this job's verified reads.
                plane.enact_faults(self.fault_plan, job.name)
            read_before = self.dfs.bytes_read
            t0 = time.perf_counter()
            with rec.span("split", cat="phase", track="engine") as sp:
                splits = self._input_splits(job)
                sp.set("splits", len(splits))
                sp.set("records", sum(len(s) for s in splits))
            timings.split_s = time.perf_counter() - t0
            localities = (
                plane.split_localities(splits) if plane is not None else None
            )

            t0 = time.perf_counter()
            with rec.span("map", cat="phase", track="engine") as sp:
                map_results, map_tasks, map_report = self._run_map_phase(
                    job, splits, counters, executor, workers, localities
                )
                sp.set("tasks", len(map_tasks))
                sp.set("output_records", counters.engine(C.MAP_OUTPUT_RECORDS))
            timings.map_s = time.perf_counter() - t0
            counters.add(
                C.GROUP_ENGINE, C.DFS_BYTES_READ, self.dfs.bytes_read - read_before
            )
            map_task_wall = self._task_wall(map_results, started, rec, "map")
            self._counter_timeline(rec, "map", map_results)

            written_before = self.dfs.bytes_written
            reduce_task_wall: list[tuple[float, float]] = []
            if job.reducer is None:
                t0 = time.perf_counter()
                with rec.span("write", cat="phase", track="engine") as sp:
                    reduce_tasks, output_records = self._write_map_only_output(
                        job, map_results, counters, wrec
                    )
                    sp.set("records", output_records)
                timings.write_s = time.perf_counter() - t0
            else:
                t0 = time.perf_counter()
                with rec.span("shuffle", cat="phase", track="engine") as sp:
                    merged, seg_buckets, input_bytes = self._shuffle_merge(
                        job, map_results
                    )
                    runs, store = self._stage_spills(job, map_results, rec)
                    if runs is None and seg_buckets is not None:
                        shuffle_records = sum(
                            len(seg) for per_r in seg_buckets for seg in per_r
                        )
                    elif runs is None:
                        shuffle_records = sum(len(b) for b in merged)
                    else:
                        # Resident buckets exclude the spilled slices;
                        # count both so the span reports the true
                        # shuffled volume under a budget.
                        shuffle_records = sum(
                            run.count if run.path is not None else len(run.records)
                            for per_r in runs
                            for run in per_r
                        )
                    sp.set("records", shuffle_records)
                    sp.set("bytes", sum(input_bytes))
                timings.shuffle_s = time.perf_counter() - t0

                t0 = time.perf_counter()
                with rec.span("reduce", cat="phase", track="engine") as sp:
                    if runs is None:
                        reduce_phase = _ReducePhase(
                            job,
                            merged,
                            seg_buckets=seg_buckets,
                            profile=self.profiler is not None,
                        )
                    else:
                        # Runs carry the resident remainders too, so the
                        # merged buckets would only duplicate payload.
                        reduce_phase = _ReducePhase(
                            job,
                            [[] for __ in range(job.num_reducers)],
                            runs=runs,
                            store=store,
                            profile=self.profiler is not None,
                        )
                    if workers is not None:
                        workers.begin_phase(
                            "reduce",
                            reexec=lambda tasks: self._reexecute_maps(
                                job, splits, tasks, executor
                            ),
                        )
                    task_results, reduce_report = run_phase_with_recovery(
                        executor,
                        _run_reduce_task,
                        job.num_reducers,
                        reduce_phase,
                        job=job.name,
                        phase="reduce",
                        policy=self.retry,
                        plan=self.fault_plan,
                        recorder=rec,
                        ledger=led,
                        workers=workers,
                    )
                    sp.set("tasks", job.num_reducers)
                timings.reduce_s = time.perf_counter() - t0
                if workers is not None:
                    # Upstream re-execution deferred past the session:
                    # map outputs invalidated *during* the reduce phase
                    # are recomputed now that the dispatch has drained.
                    workers.run_deferred_reexecution()
                reduce_task_wall = self._task_wall(task_results, started, rec, "reduce")
                self._counter_timeline(rec, "reduce", task_results)
                if self.profiler is not None:
                    kern = self.resolved_kernel
                    for tr in task_results:
                        if tr.profile is not None:
                            self.profiler.add("reduce", kern, tr.profile)

                t0 = time.perf_counter()
                with rec.span("write", cat="phase", track="engine") as sp:
                    reduce_tasks, output_records = self._write_reduce_output(
                        job, task_results, input_bytes, counters, wrec, reduce_report
                    )
                    sp.set("records", output_records)
                timings.write_s = time.perf_counter() - t0
            counters.add(
                C.GROUP_ENGINE,
                C.DFS_BYTES_WRITTEN,
                self.dfs.bytes_written - written_before,
            )

            cost = self.cost_model.job_seconds(
                map_tasks,
                reduce_tasks,
                shuffle_records=counters.engine(C.MAP_OUTPUT_RECORDS),
                shuffle_bytes=counters.engine(C.MAP_OUTPUT_BYTES),
            )
            if recovery_active:
                cost = self._merge_recovery(
                    counters, cost, (map_report, reduce_report), wrec, job_span
                )
                self._quarantine_skipped(job, map_report)
            if workers is not None:
                cost = self._merge_worker_recovery(
                    counters, cost, workers, map_tasks, job_span
                )
            if plane is not None:
                # Self-healing runs at the job barrier: dead workers'
                # replicas are swept and the target factor restored
                # before the next job can read, like HDFS's namenode
                # re-replication queue draining between jobs.
                cost = self._merge_storage(
                    counters, cost, plane, workers, job_span
                )
            spill_bytes = counters.engine(C.SPILL_BYTES)
            if spill_bytes:
                # Spill I/O is wasted work the unbounded run never does:
                # charge it outside total_s, like fault overhead, so the
                # canonical simulated seconds stay budget-independent.
                overhead = self.cost_model.spill_overhead_seconds(spill_bytes)
                cost = replace(cost, spill_overhead_s=overhead)
                job_span.set("spilled_records", counters.engine(C.SPILLED_RECORDS))
                job_span.set("spill_files", counters.engine(C.SPILL_FILES))
                job_span.set("spill_overhead_s", overhead)
                # The runs were merged into committed part files above;
                # drop the scratch dir like Hadoop's task cleanup.
                self.dfs.delete(spill_dir(job.name))
            # Advance the simulated clock ``at_s`` worker faults fire
            # against — canonical seconds only, so chaos runs keep the
            # clean run's schedule.
            self.simulated_elapsed_s += cost.total_s
            job_span.set("simulated_s", cost.total_s)
            job_span.set("map_output_records", counters.engine(C.MAP_OUTPUT_RECORDS))
            job_span.set("reduce_input_records", counters.engine(C.REDUCE_INPUT_RECORDS))
            job_span.set("dfs_bytes_read", counters.engine(C.DFS_BYTES_READ))
            job_span.set("dfs_bytes_written", counters.engine(C.DFS_BYTES_WRITTEN))
            if led.enabled:
                led.event(
                    "job_commit",
                    job=job.name,
                    simulated_s=cost.total_s,
                    output_records=output_records,
                    counters=counters.as_dict(),
                )
        return JobResult(
            job_name=job.name,
            output_path=job.output_path,
            counters=counters,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            cost=cost,
            output_records=output_records,
            wall_clock_seconds=time.perf_counter() - started,
            phases=timings,
            map_task_wall=map_task_wall,
            reduce_task_wall=reduce_task_wall,
        )

    def _worker_manager(
        self, job: MapReduceJob, recovery_active: bool, rec, led
    ) -> WorkerManager | None:
        """Build the job's worker-domain coordinator when the pool engages.

        Engagement needs recovery dispatch *and* a reason to name
        workers: ``fail-worker``/``join-worker`` specs in the plan,
        ``retry.blacklist_after > 0``, or an explicitly supplied pool.
        Everything else returns ``None`` and the dispatch stays
        bit-for-bit the pre-worker behaviour — no new counters, no new
        ledger events.  The pool itself is cluster-scoped (lazily built
        at the executor's worker count) so node state persists across a
        workflow's jobs.
        """
        if not recovery_active:
            return None
        engaged = (
            self.worker_pool is not None
            or self.replication is not None
            or self.retry.blacklist_after > 0
            or (self.fault_plan is not None and self.fault_plan.has_worker_faults)
        )
        if not engaged:
            return None
        if self.worker_pool is None:
            self.worker_pool = WorkerPool(self.num_workers or default_workers())
        return WorkerManager(
            self.worker_pool,
            self.fault_plan,
            job.name,
            self.retry,
            rec,
            led,
            elapsed_s=self.simulated_elapsed_s,
        )

    def _ensure_block_plane(self) -> BlockPlane | None:
        """Attach the durable-storage plane once ``replication`` is set.

        Built lazily on the first job (like the worker pool, which it
        forces into existence — blocks need named workers to live on)
        and hooked onto the DFS so every write/read/delete from then on
        flows through chunking, checksums and failover.  The lazy pool
        is sized at least ``replication`` wide, so a clean run can meet
        its factor even on a one-CPU host; an explicitly supplied pool
        smaller than that stays under-replicated, loudly.  ``None``
        when ``replication`` is unset: the DFS never sees a hook and
        behaviour stays byte-for-byte the unreplicated dispatch.
        """
        if self.replication is None:
            return None
        if self._block_plane is None:
            if self.worker_pool is None:
                self.worker_pool = WorkerPool(
                    max(
                        self.replication,
                        self.num_workers or default_workers(),
                    )
                )
            self._block_plane = BlockPlane(
                self.dfs,
                self.worker_pool,
                self.replication,
                self.split_records,
                self.ledger,
            )
            self.dfs.block_plane = self._block_plane
        return self._block_plane

    def _merge_storage(
        self,
        counters: Counters,
        cost: JobCostBreakdown,
        plane: BlockPlane,
        workers: WorkerManager | None,
        job_span,
    ) -> JobCostBreakdown:
        """Heal the store, then fold its telemetry into counters/cost.

        Runs re-replication first (so the restored copies are counted
        in this job's report), then merges the storage and locality
        counters — each appearing only when its event actually happened
        — and charges the wire traffic (remote map reads plus healing
        copies) to the non-canonical ``network_overhead_s`` bucket.
        """
        plane.rereplicate()
        rep = plane.drain_report()
        wrep = workers.report if workers is not None else None
        pairs = [
            (C.BLOCK_CORRUPTIONS, rep.block_corruptions),
            (C.REPLICAS_LOST, rep.replicas_lost),
            (C.BLOCKS_REREPLICATED, rep.blocks_rereplicated),
            (C.BLOCKS_UNDER_REPLICATED, rep.under_replicated),
        ]
        if wrep is not None:
            pairs.append((C.LOCALITY_HITS, wrep.locality_hits))
            pairs.append((C.LOCALITY_MISSES, wrep.locality_misses))
        for name, value in pairs:
            if value:
                counters.add(C.GROUP_ENGINE, name, value)
                job_span.set(name, value)
        net_bytes = rep.rereplicated_bytes + (
            wrep.remote_read_bytes if wrep is not None else 0
        )
        if net_bytes:
            overhead = self.cost_model.network_transfer_seconds(net_bytes)
            cost = replace(cost, network_overhead_s=overhead)
            job_span.set("network_overhead_s", overhead)
        return cost

    def _reexecute_maps(
        self,
        job: MapReduceJob,
        splits: list[list[tuple[str, int, Any, int]]],
        tasks: list[int],
        executor,
    ) -> None:
        """Recompute map tasks whose committed output died with a worker.

        The recomputed results are *discarded*: map tasks are pure
        functions of ``(payload, index)``, so they are byte-identical
        to the lost originals the surviving reduce attempts already
        consumed.  Only the non-canonical recovery-overhead charge and
        the worker telemetry observe that the work happened — exactly
        Hadoop re-running maps of a lost TaskTracker while the job's
        output stays the same.
        """
        sub = _MapPhase(
            job,
            [splits[t] for t in tasks],
            self.memory_budget,
            False,
            columnar=self.columnar_shuffle,
        )
        executor.run_phase(_run_map_task, len(tasks), sub)
        if self.recorder.enabled:
            self.recorder.instant(
                "maps-reexecuted",
                cat="worker",
                track="workers",
                args={"tasks": list(tasks)},
            )

    def _merge_worker_recovery(
        self,
        counters: Counters,
        cost: JobCostBreakdown,
        workers: WorkerManager,
        map_tasks: list[TaskStats],
        job_span,
    ) -> JobCostBreakdown:
        """Fold the worker-domain report into counters and the cost term.

        Each counter appears only when its event actually happened, so
        an engaged-but-quiet job stays counter-identical to a pool-less
        run.  The wasted work — recomputed map tasks, heartbeat
        detection latency, attempts that died in flight — lands in the
        non-canonical ``recovery_overhead_s`` bucket, outside
        ``total_s`` per the determinism contract.
        """
        rep = workers.report
        for name, value in (
            (C.WORKER_FAILURES, rep.worker_failures),
            (C.WORKERS_BLACKLISTED, rep.workers_blacklisted),
            (C.WORKERS_JOINED, rep.workers_joined),
            (C.MAP_OUTPUT_LOST, rep.map_output_lost),
            (C.TASKS_REEXECUTED, rep.tasks_reexecuted),
        ):
            if value:
                counters.add(C.GROUP_ENGINE, name, value)
                job_span.set(name, value)
        reexec_s = sum(
            self.cost_model.map_task_seconds(map_tasks[t])
            for t in rep.reexec_map_tasks
        )
        overhead = self.cost_model.recovery_overhead_seconds(
            reexec_s, rep.detection_s, rep.lost_attempts
        )
        if overhead:
            job_span.set("recovery_overhead_s", overhead)
            cost = replace(cost, recovery_overhead_s=overhead)
        if rep.engaged:
            job_span.set("workers_active", len(workers.pool.active()))
        return cost

    def _merge_recovery(
        self,
        counters: Counters,
        cost: JobCostBreakdown,
        reports: tuple[PhaseReport | None, ...],
        wrec: _WriteRecovery,
        job_span,
    ) -> JobCostBreakdown:
        """Fold phase recovery telemetry into counters and the cost term.

        The new counters live alongside the seed set but never appear on
        the fast path; the wasted work (extra attempts, failed commits,
        simulated backoff) is charged to the breakdown's
        ``fault_overhead_s`` — outside ``total_s``, per the determinism
        contract.
        """
        launched = failures = wasted = 0
        spec_launched = spec_wins = 0
        timeouts = skipped = 0
        backoff_s = 0.0
        for report in reports:
            if report is None:
                continue
            launched += report.launched
            failures += report.failures
            wasted += report.extra_attempts
            spec_launched += report.speculative_launched
            spec_wins += report.speculative_wins
            timeouts += report.timeouts
            skipped += report.skipped_records
            backoff_s += report.backoff_s
        failures += wrec.failures
        wasted += wrec.failures
        backoff_s += wrec.backoff_s
        counters.add(C.GROUP_ENGINE, C.TASK_ATTEMPTS, launched)
        counters.add(C.GROUP_ENGINE, C.TASK_FAILURES, failures)
        counters.add(C.GROUP_ENGINE, C.SPECULATIVE_LAUNCHES, spec_launched)
        counters.add(C.GROUP_ENGINE, C.SPECULATIVE_WINS, spec_wins)
        job_span.set("task_attempts", launched)
        job_span.set("task_failures", failures)
        if timeouts:
            counters.add(C.GROUP_ENGINE, C.TASK_TIMEOUTS, timeouts)
            job_span.set("task_timeouts", timeouts)
        if skipped:
            counters.add(C.GROUP_ENGINE, C.SKIPPED_RECORDS, skipped)
            job_span.set("skipped_records", skipped)
        degraded = sum(
            1
            for report in reports
            if report is not None and report.watchdog_degraded
        )
        if degraded:
            # EFFECTIVE_WATCHDOG=off: the timeout was requested but the
            # executor had no streaming session to enforce it with.
            counters.add(C.GROUP_ENGINE, C.WATCHDOG_DEGRADED, degraded)
            job_span.set("watchdog_degraded", degraded)
        overhead = self.cost_model.fault_overhead_seconds(wasted, backoff_s)
        if overhead:
            job_span.set("fault_overhead_s", overhead)
            cost = replace(cost, fault_overhead_s=overhead)
        return cost

    def _quarantine_skipped(
        self, job: MapReduceJob, report: PhaseReport | None
    ) -> None:
        """Persist skipped bad records as DFS side files (the post-mortem).

        One quarantine file per map task that skipped anything, holding
        ``path:lineno<TAB>record`` lines — Hadoop's skip "side file" in
        ``_logs/skip``.  Quarantines survive the job (unlike spill runs)
        so a data engineer can repair and re-ingest the records.
        """
        if report is None or not report.skipped_records:
            return
        for task, bad in enumerate(report.skipped):
            if not bad:
                continue
            self.dfs.write_side_file(
                f"_quarantine/{job.name}/map-{task:05d}",
                [
                    f"{path}:{lineno}\t{record}"
                    for __, path, lineno, record in bad
                ],
            )
            if self.recorder.enabled:
                self.recorder.instant(
                    "bad-records-quarantined",
                    cat="attempt",
                    track="map attempts",
                    args={"task": task, "records": len(bad)},
                )

    def _stage_spills(
        self, job: MapReduceJob, map_results: list[_MapTaskResult], rec: NullRecorder
    ) -> tuple[list[list[SpillRun]] | None, SpillStore | None]:
        """Persist map-side spill runs and build the reduce merge plan.

        Spilled lines travel in the task results (process-pool children
        write to a DFS *copy*), so the engine commits them to the real
        DFS here, parent-side, before the reduce phase forks.  Returns
        ``(None, None)`` when no task spilled — the reduce phase then
        takes the resident sort path untouched.  Otherwise ``runs[r]``
        lists reducer ``r``'s sorted runs in map-task order: each task's
        spilled side files first (spill order), then its resident
        remainder — exactly the run set :func:`merge_runs` needs.
        """
        if not any(
            result.spill_runs is not None and any(result.spill_runs)
            for result in map_results
        ):
            return None, None
        runs: list[list[SpillRun]] = [[] for __ in range(job.num_reducers)]
        store = SpillStore()
        files = 0
        for t, result in enumerate(map_results):
            task_runs = result.spill_runs
            for r in range(job.num_reducers):
                if task_runs is not None:
                    for j, lines in enumerate(task_runs[r]):
                        path = (
                            f"{spill_dir(job.name)}/map-{t:05d}/"
                            f"r-{r:05d}-run-{j:03d}"
                        )
                        self.dfs.write_side_file(path, lines)
                        store.files[path] = lines
                        files += 1
                        runs[r].append(
                            SpillRun(task=t, path=path, count=len(lines))
                        )
                base = result.spill_base[r] if result.spill_base is not None else 0
                if result.buckets[r]:
                    runs[r].append(
                        SpillRun(task=t, records=result.buckets[r], base=base)
                    )
        if rec.enabled:
            rec.instant(
                "spill-runs-staged",
                cat="phase",
                track="engine",
                args={"files": files},
            )
        return runs, store

    def _counter_timeline(
        self, rec: NullRecorder, phase: str, results: list
    ) -> None:
        """Emit the phase's counter timelines from worker task stamps.

        Deterministic given the stamps: in-flight/occupancy gauges come
        from the sorted ``(t, ±1)`` task-boundary sweep, and the map
        side adds cumulative shuffle-byte (plus spill/buffer, under a
        memory budget) totals in task-end order.  Pure observation —
        nothing here feeds back into the computation.
        """
        if not rec.enabled or not results:
            return
        bounds: list[tuple[float, int]] = []
        for r in results:
            bounds.append((r.t_start, 1))
            bounds.append((r.t_end, -1))
        bounds.sort()
        in_flight = 0
        for t, delta in bounds:
            in_flight += delta
            rec.counter_sample(f"in-flight {phase} tasks", t, in_flight)
            rec.counter_sample("worker occupancy", t, in_flight)
        if phase != "map":
            return
        budgeted = self.memory_budget is not None
        for r in sorted(results, key=lambda res: res.t_end):
            out_bytes = r.stats.output_bytes
            rec.counter_add("shuffle bytes (cumulative)", r.t_end, out_bytes)
            if budgeted:
                spilled = r.counters.engine(C.SPILL_BYTES)
                rec.counter_add("spill bytes (cumulative)", r.t_end, spilled)
                rec.counter_add(
                    "shuffle buffer bytes", r.t_end, out_bytes - spilled
                )

    @staticmethod
    def _task_wall(
        results: list, job_started: float, rec: NullRecorder, phase: str
    ) -> list[tuple[float, float]]:
        """Collect worker-measured task intervals; trace them if recording.

        Intervals are offsets from job start; the trace gets the raw
        stamps so task spans line up with the engine's phase spans.
        """
        if rec.enabled:
            for i, r in enumerate(results):
                rec.add_span(
                    f"{phase}-{i}",
                    cat="task",
                    track=f"{phase} tasks",
                    start=r.t_start,
                    end=r.t_end,
                    args={"task": i},
                )
        return [(r.t_start - job_started, r.t_end - job_started) for r in results]

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _input_splits(self, job: MapReduceJob) -> list[list[tuple[str, int, Any, int]]]:
        """Split input files into map tasks of ``split_records`` records.

        Entries are ``(path, lineno, record, nbytes)``.  Reads are always
        charged at the encoded line size — via :meth:`InMemoryDFS.read_file`,
        or via :meth:`InMemoryDFS.charge_read` when the file's entry rows
        are already cached as a derived artifact (typed columnar path
        only: repeated inputs, e.g. the Cascade's base relations, then
        skip line materialisation and tuple rebuilding entirely).  With
        an input codec the record is the decoded object — taken from the
        DFS typed store when the upstream job wrote through a codec,
        decoded once and cached otherwise, or re-parsed per read when
        ``typed_io`` is off (the seed codec path).
        """
        splits: list[list[tuple[str, int, Any, int]]] = []
        cache_entries = self.typed_io and self.columnar_shuffle
        chunk = self.split_records
        for path in job.input_paths:
            codec = job.input_codec_for(path)
            tag = f"entries:{codec.name if codec is not None else 'lines'}"
            for f in self.dfs.resolve(path):
                entries = self.dfs.derived_get(f, tag) if cache_entries else None
                if entries is None:
                    lines = self.dfs.read_file(f)
                    records = self._file_records(job, f, lines, codec)
                    entries = list(
                        zip(
                            repeat(f),
                            range(len(lines)),
                            records,
                            [len(line) + 1 for line in lines],
                        )
                    )
                    if cache_entries:
                        self.dfs.derived_put(f, tag, entries)
                else:
                    self.dfs.charge_read(f)
                # A split never spans files, like HDFS blocks.
                n = len(entries)
                if not n:
                    continue
                if n <= chunk:
                    splits.append(entries)
                else:
                    splits.extend(
                        entries[lo : lo + chunk] for lo in range(0, n, chunk)
                    )
        return splits

    def _file_records(
        self, job: MapReduceJob, f: str, lines: list[str], codec
    ) -> list[Any]:
        """The map-input records of one file (lines, or decoded objects)."""
        if codec is None:
            return lines
        if self.typed_io:
            records = self.dfs.typed_records(f, codec)
            if records is None:
                records = self._decode_lines(job, f, lines, codec)
                self.dfs.cache_records(f, records, codec)
            return records
        return self._decode_lines(job, f, lines, codec)

    @staticmethod
    def _decode_lines(job: MapReduceJob, f: str, lines: list[str], codec) -> list[Any]:
        """Decode a file's lines, wrapping failures as map-task errors.

        Record decoding belongs to the map task (Hadoop's RecordReader
        runs inside it), so a malformed record fails with the same
        located error a mapper-side parse failure used to raise.  The
        happy path is one bulk ``decode_lines`` call; only when it
        raises does the scalar loop re-run to locate the first bad line
        (decoding is deterministic, so it fails on the same record).
        """
        try:
            return codec.decode_lines(lines)
        except Exception:  # noqa: BLE001 - re-run scalar to locate the line
            pass
        records = []
        for lineno, line in enumerate(lines):
            try:
                records.append(codec.decode(line))
            except Exception as exc:  # noqa: BLE001 - wrap task failures
                raise JobError(
                    f"map task failed in job {job.name!r} on "
                    f"{f}:{lineno}: {exc}"
                ) from exc
        return records

    def _run_map_phase(
        self,
        job: MapReduceJob,
        splits: list[list[tuple[str, int, Any, int]]],
        counters: Counters,
        executor,
        workers: WorkerManager | None = None,
        localities: dict[int, tuple[tuple[str, ...], int]] | None = None,
    ) -> tuple[list[_MapTaskResult], list[TaskStats], PhaseReport | None]:
        # The batch path bypasses the per-record loop, so it is only
        # safe when nothing needs per-record hooks: no fault injection
        # or retry recovery (record skipping / poison offsets).  A
        # memory budget is fine — the spilling context replays batch
        # emissions record by record, keeping spill points identical.
        recovery_active = (
            self.fault_plan is not None and not self.fault_plan.is_empty
        ) or self.retry.active
        use_batch = (
            job.batch_mapper is not None
            and not recovery_active
            and self.resolved_kernel == "numpy"
        )
        split_batches = (
            self._stage_split_batches(job, splits) if use_batch else None
        )
        if workers is not None:
            workers.begin_phase("map", localities=localities)
        results, report = run_phase_with_recovery(
            executor,
            _run_map_task,
            len(splits),
            _MapPhase(
                job,
                splits,
                self.memory_budget,
                use_batch,
                columnar=self.columnar_shuffle,
                split_batches=split_batches,
                profile=self.profiler is not None,
            ),
            job=job.name,
            phase="map",
            policy=self.retry,
            plan=self.fault_plan,
            recorder=self.recorder,
            ledger=self.ledger,
            workers=workers,
        )
        led = self.ledger
        kern = self.resolved_kernel if self.profiler is not None else ""
        for t, result in enumerate(results):  # merge shards in task-id order
            counters.merge(result.counters)
            if led.enabled:
                # Spill telemetry lives in the task's counter shard (a
                # combiner job un-spills its buckets but keeps the
                # counters — the spills did happen).
                spilled = result.counters.engine(C.SPILLED_RECORDS)
                if spilled:
                    led.event(
                        "spill",
                        task=t,
                        records=spilled,
                        files=result.counters.engine(C.SPILL_FILES),
                        bytes=result.counters.engine(C.SPILL_BYTES),
                    )
            if self.profiler is not None and result.profile is not None:
                self.profiler.add("map", kern, result.profile)
        stats = [result.stats for result in results]
        if report is not None:  # attach per-task attempt histories
            stats = [
                replace(s, attempts=tuple(report.attempts[i]))
                for i, s in enumerate(stats)
            ]
        return results, stats, report

    def _stage_split_batches(
        self, job: MapReduceJob, splits: list[list[tuple[str, int, Any, int]]]
    ) -> list[RectBatch | None] | None:
        """Pre-decode rectangle splits into columnar batch slices.

        For every split whose file reads through the rectangle codec,
        build (or fetch) the whole file's :class:`RectBatch` — cached as
        a derived artifact, so each file version is columnarised exactly
        once — and hand the split its zero-copy row slice.  Splits of
        other formats get ``None`` and their batch mappers fall back to
        building columns from the entry records.  Purely an execution
        cache: byte accounting happened at split time and the batch
        holds the same floats the records do.
        """
        if not (self.typed_io and self.columnar_shuffle):
            return None
        np = numpy_or_none()
        if np is None:
            return None
        rect_files: set[str] = set()
        for path in job.input_paths:
            codec = job.input_codec_for(path)
            if codec is not None and codec.name == "rect":
                rect_files.update(self.dfs.resolve(path))
        if not rect_files:
            return None
        batches: list[RectBatch | None] = []
        staged = False
        for split in splits:
            f = split[0][0] if split else None
            if f is None or f not in rect_files:
                batches.append(None)
                continue
            whole = self.dfs.derived_get(f, "rect-batch")
            if whole is None:
                records = self.dfs.typed_records(f, RECT_CODEC)
                if records is None:
                    batches.append(None)
                    continue
                whole = RectBatch.from_pairs(np, records)
                self.dfs.derived_put(f, "rect-batch", whole)
            lo = split[0][1]  # linenos are file row indices
            batches.append(whole.slice(lo, lo + len(split)))
            staged = True
        return batches if staged else None

    # ------------------------------------------------------------------
    # Shuffle, reduce and write stages
    # ------------------------------------------------------------------
    @staticmethod
    def _shuffle_merge(
        job: MapReduceJob, map_results: list[_MapTaskResult]
    ) -> tuple[list[list[tuple]], list[list[BucketSegment]] | None, list[int]]:
        """Merge each reducer's buckets from every map task.

        Merged in task-id order; the reduce task sorts its own bucket.
        Returns ``(merged, seg_buckets, input_bytes)``: when every
        emitting task produced columnar segments, ``seg_buckets[r]``
        carries reducer ``r``'s :class:`BucketSegment` runs (task-major,
        emission order inside a task — the same total order the row
        concatenation would have) and ``merged`` stays empty; any task
        on the row path degrades the whole merge to row form, converting
        segments back to pairs so order is preserved regardless.
        """
        num_reducers = job.num_reducers
        input_bytes = [0] * num_reducers
        for result in map_results:
            for r, nbytes in enumerate(result.bucket_bytes):
                input_bytes[r] += nbytes
        any_segments = any(result.segments is not None for result in map_results)
        merged: list[list[tuple]] = [[] for __ in range(num_reducers)]
        if any_segments and not any(
            any(bucket for bucket in result.buckets) for result in map_results
        ):
            seg_buckets: list[list[BucketSegment]] = [
                [] for __ in range(num_reducers)
            ]
            for result in map_results:
                if result.segments is None:
                    continue
                for r, segs in enumerate(result.segments):
                    if segs:
                        seg_buckets[r].extend(segs)
            return merged, seg_buckets, input_bytes
        for result in map_results:
            if result.segments is not None:
                for r, segs in enumerate(result.segments):
                    for seg in segs:
                        merged[r].extend(seg.pairs())
            else:
                for r, bucket in enumerate(result.buckets):
                    if bucket:
                        merged[r].extend(bucket)
        return merged, None, input_bytes

    def _write_reduce_output(
        self,
        job: MapReduceJob,
        task_results: list[_ReduceTaskResult],
        input_bytes: list[int],
        counters: Counters,
        wrec: _WriteRecovery | None = None,
        report: PhaseReport | None = None,
    ) -> tuple[list[TaskStats], int]:
        """Merge reduce-task shards and write part files in reducer order."""
        stats: list[TaskStats] = []
        total_output = 0
        for r, result in enumerate(task_results):
            counters.merge(result.counters)
            part_path = f"{job.output_path}/part-{r:05d}"
            if wrec is not None:
                wrec.precommit(r, part_path)
            if job.output_codec is not None:
                # Encode-once: records become lines (byte accounting and
                # durability) and stay resident for the next job's map.
                nbytes = self.dfs.write_records(
                    part_path, result.lines, job.output_codec
                )
            else:
                nbytes = self.dfs.write_file(part_path, result.lines)
            total_output += len(result.lines)
            stats.append(
                TaskStats(
                    input_records=result.input_records,
                    input_bytes=input_bytes[r],
                    output_records=len(result.lines),
                    output_bytes=nbytes,
                    compute_ops=result.compute_ops,
                    attempts=tuple(report.attempts[r]) if report is not None else (),
                )
            )
        return stats, total_output

    def _write_map_only_output(
        self,
        job: MapReduceJob,
        map_results: list[_MapTaskResult],
        counters: Counters,
        wrec: _WriteRecovery | None = None,
    ) -> tuple[list[TaskStats], int]:
        """Map-only jobs write partitioned but unsorted/unreduced output.

        Without an ``output_codec`` map emissions must already be text
        lines (``value`` is written verbatim, the key only drives
        partitioning); with one, emissions are typed records encoded
        once at write time.
        """
        stats: list[TaskStats] = []
        total_output = 0
        for r in range(job.num_reducers):
            lines: list[Any] = []
            input_bytes = 0
            for result in map_results:
                input_bytes += result.bucket_bytes[r]
                if result.segments is not None:
                    values = [v for seg in result.segments[r] for v in seg.values]
                else:
                    values = [v for __, v in result.buckets[r]]
                for value in values:
                    if job.output_codec is None and not isinstance(value, str):
                        raise JobError(
                            f"map-only job {job.name!r} emitted a non-string "
                            f"value: {value!r}"
                        )
                    lines.append(value)
            part_path = f"{job.output_path}/part-{r:05d}"
            if wrec is not None:
                wrec.precommit(r, part_path)
            if job.output_codec is not None:
                nbytes = self.dfs.write_records(part_path, lines, job.output_codec)
            else:
                nbytes = self.dfs.write_file(part_path, lines)
            counters.add(C.GROUP_ENGINE, C.REDUCE_OUTPUT_RECORDS, len(lines))
            total_output += len(lines)
            stats.append(
                TaskStats(
                    input_records=len(lines),
                    input_bytes=input_bytes,
                    output_records=len(lines),
                    output_bytes=nbytes,
                )
            )
        return stats, total_output
