"""The map-reduce execution engine (the Hadoop stand-in).

Runs one :class:`~repro.mapreduce.job.MapReduceJob` at a time, faithfully
reproducing the data flow of Section 2:

1. input files are read from the DFS and partitioned into *splits*, one
   map task per split;
2. each map task applies the map function to every record and buckets
   its emissions by the partitioner;
3. the shuffle merges the buckets per reducer and sorts them by key;
4. each reduce task folds over its key groups and writes one
   ``part-NNNNN`` file back to the DFS.

Records cross this pipeline as Python objects when the job declares
record codecs (the typed record path of PR 2): map input is decoded at
most once per file version, shuffle values are whatever the mapper
emitted, and reduce output is encoded exactly once at part-file write —
with byte accounting identical to the string path at every stage (the
job's shuffle codec reproduces the string-era sizes, and DFS volumes are
always the encoded lines).

Tasks are dispatched through a pluggable
:class:`~repro.mapreduce.executor.TaskExecutor` (``serial``, ``thread``
or ``process``), so the k-way parallelism the cost model *assumes* can
be backed by real cores.  Each task is a self-contained unit: it runs
against its own :class:`Counters` shard and returns its buckets/output
lines as a result instead of mutating shared state, and the engine
merges shards and results in task-id order.  Everything therefore stays
deterministic at any worker count: splits are formed in file order,
sorting is stable, part files are written in reducer-id order — a job
run twice, with any executor, produces byte-identical output, which the
test-suite asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from itertools import groupby
from operator import itemgetter
from typing import Any

from repro.errors import JobError, TaskRetryExhausted
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.cost import CostModel, JobCostBreakdown, TaskStats
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.executor import make_executor
from repro.mapreduce.faults import (
    FaultPlan,
    PhaseReport,
    RetryPolicy,
    run_phase_with_recovery,
)
from repro.mapreduce.job import MapContext, MapReduceJob, ReduceContext
from repro.obs.trace import NullRecorder

__all__ = ["Cluster", "JobResult", "PhaseTimings"]


@dataclass
class PhaseTimings:
    """Measured wall-clock decomposition of one job's execution stages.

    The stages partition (almost all of) ``JobResult.wall_clock_seconds``:
    split construction, map task execution, shuffle merge, reduce task
    execution and part-file writes.  Map-only jobs report their
    partitioned output write under ``write_s`` and 0 for
    ``shuffle_s``/``reduce_s``.  The tiny remainder of the total is
    executor construction and result bookkeeping.
    """

    split_s: float = 0.0
    map_s: float = 0.0
    shuffle_s: float = 0.0
    reduce_s: float = 0.0
    write_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Sum of the measured stages (<= the job's wall clock)."""
        return self.split_s + self.map_s + self.shuffle_s + self.reduce_s + self.write_s

    def as_dict(self) -> dict[str, float]:
        return {
            "split_s": self.split_s,
            "map_s": self.map_s,
            "shuffle_s": self.shuffle_s,
            "reduce_s": self.reduce_s,
            "write_s": self.write_s,
            "total_s": self.total_s,
        }


@dataclass
class JobResult:
    """Outcome of one job run: counters, per-task volumes and timing."""

    job_name: str
    output_path: str
    counters: Counters
    map_tasks: list[TaskStats]
    reduce_tasks: list[TaskStats]
    cost: JobCostBreakdown
    output_records: int = 0
    #: ``True`` when the job was *not* re-executed: the workflow restored
    #: this result from its checkpoint manifest (see
    #: :meth:`repro.mapreduce.workflow.Workflow.resume`)
    resumed: bool = False
    #: measured end-to-end duration of the job on the host machine
    wall_clock_seconds: float = 0.0
    #: wall-clock decomposition of the total (split/map/shuffle/reduce/write)
    phases: PhaseTimings = field(default_factory=PhaseTimings)
    #: per-task ``(start, end)`` wall-clock offsets from job start,
    #: measured *inside* the workers (true durations on any executor)
    map_task_wall: list[tuple[float, float]] = field(default_factory=list)
    reduce_task_wall: list[tuple[float, float]] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Modelled end-to-end duration of the job."""
        return self.cost.total_s

    @property
    def shuffled_records(self) -> int:
        """Intermediate key-value pairs — the paper's communication cost."""
        return self.counters.engine(C.MAP_OUTPUT_RECORDS)


# ----------------------------------------------------------------------
# Task units.  Workers are module-level pure functions of
# (phase payload, task index) so any executor back-end can run them;
# results carry everything the engine needs to merge deterministically.
# ----------------------------------------------------------------------
@dataclass
class _MapPhase:
    """Immutable payload shared by every map task of one job.

    Split entries are ``(path, lineno, record, nbytes)``: the map input
    record (a text line, or a typed record when the job declares an
    input codec) plus its encoded size, so map-side byte accounting is
    identical on both paths.
    """

    job: MapReduceJob
    splits: list[list[tuple[str, int, Any, int]]]


@dataclass
class _MapTaskResult:
    """What one map task hands back to the engine.

    ``t_start``/``t_end`` are :func:`time.perf_counter` stamps taken
    inside the worker, so thread/process back-ends report true per-task
    durations (CLOCK_MONOTONIC is system-wide on Linux, making forked
    workers' stamps comparable with the parent's).
    """

    buckets: list[list[tuple[Any, Any]]]
    bucket_bytes: list[int]
    counters: Counters
    stats: TaskStats
    t_start: float = 0.0
    t_end: float = 0.0


@dataclass
class _ReducePhase:
    """Immutable payload shared by every reduce task of one job.

    ``buckets[r]`` is reducer ``r``'s merged (map-task order) but not
    yet sorted input.
    """

    job: MapReduceJob
    buckets: list[list[tuple[Any, Any]]]


@dataclass
class _ReduceTaskResult:
    """What one reduce task hands back to the engine.

    ``lines`` holds text lines, or typed records for jobs with an
    ``output_codec`` (the engine encodes them once at part-file write).
    ``t_start``/``t_end`` are worker-side stamps, as on the map side.
    """

    lines: list[Any]
    input_records: int
    compute_ops: int
    counters: Counters
    t_start: float = 0.0
    t_end: float = 0.0


def _sorted_by_key(
    bucket: list[tuple[Any, Any]], sort_key
) -> list[tuple[Any, Any]]:
    """Stable-sort a bucket by ``sort_key`` of the record key.

    Decorate-sort-undecorate: the key function runs exactly once per
    record and the original index breaks ties, so equal-key records keep
    map emission order (the engine's stability guarantee).
    """
    decorated = sorted((sort_key(kv[0]), i) for i, kv in enumerate(bucket))
    return [bucket[i] for __, i in decorated]


def _grouped(ordered: list[tuple[Any, Any]]):
    """Yield ``(key, [values])`` runs of adjacent equal keys."""
    for key, run in groupby(ordered, key=itemgetter(0)):
        yield key, [v for __, v in run]


def _run_map_task(phase: _MapPhase, index: int) -> _MapTaskResult:
    """One self-contained map task: split in, buckets + counter shard out."""
    t_start = time.perf_counter()
    job = phase.job
    split = phase.splits[index]
    counters = Counters()
    ctx = MapContext(counters, job.num_reducers, job.partitioner, job.shuffle_codec)
    mapper = job.mapper
    nbytes = 0
    for path, lineno, record, record_bytes in split:
        nbytes += record_bytes
        try:
            mapper((path, lineno), record, ctx)
        except Exception as exc:  # noqa: BLE001 - wrap task failures
            raise JobError(
                f"map task failed in job {job.name!r} on "
                f"{path}:{lineno}: {exc}"
            ) from exc
    ctx.input_records = len(split)
    # One add per task, not one per record — the map inner loop stays
    # free of counter bookkeeping.
    counters.add(C.GROUP_ENGINE, C.MAP_INPUT_RECORDS, len(split))
    if job.combiner is not None:
        _apply_combiner(job, ctx, counters)
    return _MapTaskResult(
        buckets=ctx.buckets,
        bucket_bytes=ctx.bucket_bytes,
        counters=counters,
        stats=TaskStats(
            input_records=ctx.input_records,
            input_bytes=nbytes,
            output_records=ctx.output_records,
            output_bytes=ctx.output_bytes,
            compute_ops=ctx.compute_ops,
        ),
        t_start=t_start,
        t_end=time.perf_counter(),
    )


def _apply_combiner(job: MapReduceJob, ctx: MapContext, counters: Counters) -> None:
    """Map-side pre-aggregation: rewrite the task's buckets in place.

    Counters are adjusted so MAP_OUTPUT_* reflect the *shuffled*
    (post-combine) volume — what the cost model charges — while the
    pre-combine volume is recorded under COMBINE_INPUT_RECORDS.  Byte
    accounting reuses the per-bucket totals tracked at emission time and
    sizes each combined key once per group, not once per record.
    """
    key_size = job.shuffle_codec.key_size
    value_size = job.shuffle_codec.value_size
    for r, bucket in enumerate(ctx.buckets):
        if not bucket:
            continue
        combined: list[tuple] = []
        new_bytes = 0
        for key, values in _grouped(_sorted_by_key(bucket, job.sort_key)):
            key_bytes = key_size(key)
            for value in job.combiner(key, values):
                combined.append((key, value))
                new_bytes += key_bytes + value_size(value)
        old_bytes = ctx.bucket_bytes[r]
        counters.add(C.GROUP_ENGINE, C.COMBINE_INPUT_RECORDS, len(bucket))
        counters.add(C.GROUP_ENGINE, C.COMBINE_OUTPUT_RECORDS, len(combined))
        counters.add(
            C.GROUP_ENGINE, C.MAP_OUTPUT_RECORDS, len(combined) - len(bucket)
        )
        counters.add(C.GROUP_ENGINE, C.MAP_OUTPUT_BYTES, new_bytes - old_bytes)
        ctx.output_records += len(combined) - len(bucket)
        ctx.output_bytes += new_bytes - old_bytes
        ctx.buckets[r] = combined
        ctx.bucket_bytes[r] = new_bytes


def _run_reduce_task(phase: _ReducePhase, r: int) -> _ReduceTaskResult:
    """One self-contained reduce task: merged bucket in, lines out."""
    t_start = time.perf_counter()
    job = phase.job
    counters = Counters()
    rctx = ReduceContext(counters, r)
    reducer = job.reducer
    groups = 0
    # Stable sort: same-key values keep map emission order.
    for key, values in _grouped(_sorted_by_key(phase.buckets[r], job.sort_key)):
        groups += 1
        rctx.input_records += len(values)
        try:
            reducer(key, values, rctx)
        except Exception as exc:  # noqa: BLE001 - wrap task failures
            raise JobError(
                f"reduce task {r} failed in job {job.name!r} "
                f"on key {key!r}: {exc}"
            ) from exc
    counters.add(C.GROUP_ENGINE, C.REDUCE_INPUT_GROUPS, groups)
    counters.add(C.GROUP_ENGINE, C.REDUCE_INPUT_RECORDS, rctx.input_records)
    return _ReduceTaskResult(
        lines=rctx.output_lines,
        input_records=rctx.input_records,
        compute_ops=rctx.compute_ops,
        counters=counters,
        t_start=t_start,
        t_end=time.perf_counter(),
    )


class _WriteRecovery:
    """Absorbs injected part-file commit failures (plan phase ``write``).

    A matching ``fail`` spec makes the commit of part ``r`` raise
    *before* any byte reaches the DFS (Hadoop's failed output commit),
    so absorbed write faults leave ``DFS_BYTES_WRITTEN`` untouched.  The
    engine calls :meth:`precommit` in front of every part write; it
    loops attempts until one is fault-free, charging simulated backoff
    per retry, and raises :class:`~repro.errors.TaskRetryExhausted` when
    the part burned ``max_attempts`` failures.
    """

    __slots__ = ("_job", "_plan", "_policy", "_rec", "failures", "backoff_s")

    def __init__(
        self,
        job_name: str,
        plan: FaultPlan | None,
        policy: RetryPolicy,
        recorder: NullRecorder,
    ) -> None:
        self._job = job_name
        self._plan = plan
        self._policy = policy
        self._rec = recorder
        self.failures = 0
        self.backoff_s = 0.0

    def precommit(self, r: int, part_path: str) -> None:
        if self._plan is None or self._plan.is_empty:
            return
        attempt = 0
        while any(
            spec.kind == "fail"
            for spec in self._plan.matching(self._job, "write", r, attempt)
        ):
            self.failures += 1
            attempt += 1
            if attempt >= self._policy.max_attempts:
                raise TaskRetryExhausted(
                    f"injected DFS write failure: commit of {part_path} in job "
                    f"{self._job!r} failed {attempt} attempt(s)"
                )
            backoff = self._policy.backoff_before(attempt)
            self.backoff_s += backoff
            if self._rec.enabled:
                self._rec.instant(
                    "retry-backoff",
                    cat="attempt",
                    track="write attempts",
                    args={
                        "part": r,
                        "attempt": attempt,
                        "backoff_simulated_s": backoff,
                    },
                )


@dataclass
class Cluster:
    """A simulated map-reduce cluster bound to one DFS instance.

    Parameters
    ----------
    dfs:
        The file system jobs read from / write to.
    cost_model:
        Rates used to convert job volumes into simulated seconds.
    split_records:
        Map-split granularity in records; the paper's 64 MB HDFS blocks
        become a record-count split since our records are tiny.
    executor:
        Task dispatch back-end: ``"serial"`` (default), ``"thread"`` or
        ``"process"``.  All three produce byte-identical output; see
        :mod:`repro.mapreduce.executor`.
    num_workers:
        Worker count for the parallel back-ends (``None`` = usable CPUs).
    typed_io:
        ``True`` (default): jobs with record codecs hand typed records
        across job boundaries — DFS-resident objects are reused and line
        files are decoded at most once per file version.  ``False``
        forces the seed codec path: every input record is re-parsed from
        its line on every read (string-era per-record costs), which the
        golden equivalence tests and the PR 2 benchmark use as the
        before-side.  Both settings produce byte-identical output and
        identical counters.
    recorder:
        Observability sink (:mod:`repro.obs.trace`).  The default
        :class:`~repro.obs.trace.NullRecorder` reduces every
        instrumentation point to a no-op; a
        :class:`~repro.obs.trace.TraceRecorder` collects job/phase/task
        spans for Perfetto export.  Recording never changes counters,
        part files or simulated seconds.
    retry:
        The :class:`~repro.mapreduce.faults.RetryPolicy` governing task
        re-dispatch and speculation.  The default (``max_attempts=1``,
        no speculation) keeps the seed's fail-fast dispatch with zero
        overhead; Hadoop 0.20's own default allows 4 attempts.
    fault_plan:
        Optional :class:`~repro.mapreduce.faults.FaultPlan` injecting
        deterministic chaos into every job this cluster runs.  Any plan
        the retry policy absorbs leaves part files, pre-existing
        counters and simulated seconds byte-identical to a fault-free
        run (the determinism contract).
    checkpoint_dir:
        DFS directory where :class:`~repro.mapreduce.workflow.Workflow`
        persists its per-job completion manifest (``None`` disables
        checkpointing).
    resume:
        ``True`` makes workflows restore completed jobs from the
        checkpoint manifest instead of re-running them, and makes the
        join algorithms keep (rather than delete) existing output
        directories on startup.
    """

    dfs: InMemoryDFS = field(default_factory=InMemoryDFS)
    cost_model: CostModel = field(default_factory=CostModel)
    split_records: int = 20_000
    executor: str = "serial"
    num_workers: int | None = None
    typed_io: bool = True
    recorder: NullRecorder = field(default_factory=NullRecorder)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: FaultPlan | None = None
    checkpoint_dir: str | None = None
    resume: bool = False

    def run_job(self, job: MapReduceJob) -> JobResult:
        """Execute one job; raises :class:`JobError` on task failure.

        With a fault plan or an active retry policy, tasks run under
        recovery dispatch (:func:`repro.mapreduce.faults.run_phase_with_recovery`):
        failed attempts are retried up to ``retry.max_attempts``, part
        writes absorb injected commit failures, stragglers may race
        speculative backups, and the recovery telemetry lands in the
        ``task_*``/``speculative_*`` counters plus the cost breakdown's
        fault-overhead term.  Otherwise the dispatch is byte-for-byte
        the seed fast path.
        """
        started = time.perf_counter()
        rec = self.recorder
        executor = make_executor(self.executor, self.num_workers)
        counters = Counters()
        timings = PhaseTimings()
        recovery_active = (
            self.fault_plan is not None and not self.fault_plan.is_empty
        ) or self.retry.active
        wrec = (
            _WriteRecovery(job.name, self.fault_plan, self.retry, rec)
            if recovery_active
            else None
        )
        reduce_report: PhaseReport | None = None

        with rec.span(f"job:{job.name}", cat="job", track="engine") as job_span:
            read_before = self.dfs.bytes_read
            t0 = time.perf_counter()
            with rec.span("split", cat="phase", track="engine") as sp:
                splits = self._input_splits(job)
                sp.set("splits", len(splits))
                sp.set("records", sum(len(s) for s in splits))
            timings.split_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            with rec.span("map", cat="phase", track="engine") as sp:
                map_results, map_tasks, map_report = self._run_map_phase(
                    job, splits, counters, executor
                )
                sp.set("tasks", len(map_tasks))
                sp.set("output_records", counters.engine(C.MAP_OUTPUT_RECORDS))
            timings.map_s = time.perf_counter() - t0
            counters.add(
                C.GROUP_ENGINE, C.DFS_BYTES_READ, self.dfs.bytes_read - read_before
            )
            map_task_wall = self._task_wall(map_results, started, rec, "map")

            written_before = self.dfs.bytes_written
            reduce_task_wall: list[tuple[float, float]] = []
            if job.reducer is None:
                t0 = time.perf_counter()
                with rec.span("write", cat="phase", track="engine") as sp:
                    reduce_tasks, output_records = self._write_map_only_output(
                        job, map_results, counters, wrec
                    )
                    sp.set("records", output_records)
                timings.write_s = time.perf_counter() - t0
            else:
                t0 = time.perf_counter()
                with rec.span("shuffle", cat="phase", track="engine") as sp:
                    merged, input_bytes = self._shuffle_merge(job, map_results)
                    sp.set("records", sum(len(b) for b in merged))
                    sp.set("bytes", sum(input_bytes))
                timings.shuffle_s = time.perf_counter() - t0

                t0 = time.perf_counter()
                with rec.span("reduce", cat="phase", track="engine") as sp:
                    task_results, reduce_report = run_phase_with_recovery(
                        executor,
                        _run_reduce_task,
                        job.num_reducers,
                        _ReducePhase(job, merged),
                        job=job.name,
                        phase="reduce",
                        policy=self.retry,
                        plan=self.fault_plan,
                        recorder=rec,
                    )
                    sp.set("tasks", job.num_reducers)
                timings.reduce_s = time.perf_counter() - t0
                reduce_task_wall = self._task_wall(task_results, started, rec, "reduce")

                t0 = time.perf_counter()
                with rec.span("write", cat="phase", track="engine") as sp:
                    reduce_tasks, output_records = self._write_reduce_output(
                        job, task_results, input_bytes, counters, wrec, reduce_report
                    )
                    sp.set("records", output_records)
                timings.write_s = time.perf_counter() - t0
            counters.add(
                C.GROUP_ENGINE,
                C.DFS_BYTES_WRITTEN,
                self.dfs.bytes_written - written_before,
            )

            cost = self.cost_model.job_seconds(
                map_tasks,
                reduce_tasks,
                shuffle_records=counters.engine(C.MAP_OUTPUT_RECORDS),
                shuffle_bytes=counters.engine(C.MAP_OUTPUT_BYTES),
            )
            if recovery_active:
                cost = self._merge_recovery(
                    counters, cost, (map_report, reduce_report), wrec, job_span
                )
            job_span.set("simulated_s", cost.total_s)
            job_span.set("map_output_records", counters.engine(C.MAP_OUTPUT_RECORDS))
            job_span.set("reduce_input_records", counters.engine(C.REDUCE_INPUT_RECORDS))
            job_span.set("dfs_bytes_read", counters.engine(C.DFS_BYTES_READ))
            job_span.set("dfs_bytes_written", counters.engine(C.DFS_BYTES_WRITTEN))
        return JobResult(
            job_name=job.name,
            output_path=job.output_path,
            counters=counters,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            cost=cost,
            output_records=output_records,
            wall_clock_seconds=time.perf_counter() - started,
            phases=timings,
            map_task_wall=map_task_wall,
            reduce_task_wall=reduce_task_wall,
        )

    def _merge_recovery(
        self,
        counters: Counters,
        cost: JobCostBreakdown,
        reports: tuple[PhaseReport | None, ...],
        wrec: _WriteRecovery,
        job_span,
    ) -> JobCostBreakdown:
        """Fold phase recovery telemetry into counters and the cost term.

        The new counters live alongside the seed set but never appear on
        the fast path; the wasted work (extra attempts, failed commits,
        simulated backoff) is charged to the breakdown's
        ``fault_overhead_s`` — outside ``total_s``, per the determinism
        contract.
        """
        launched = failures = wasted = 0
        spec_launched = spec_wins = 0
        backoff_s = 0.0
        for report in reports:
            if report is None:
                continue
            launched += report.launched
            failures += report.failures
            wasted += report.extra_attempts
            spec_launched += report.speculative_launched
            spec_wins += report.speculative_wins
            backoff_s += report.backoff_s
        failures += wrec.failures
        wasted += wrec.failures
        backoff_s += wrec.backoff_s
        counters.add(C.GROUP_ENGINE, C.TASK_ATTEMPTS, launched)
        counters.add(C.GROUP_ENGINE, C.TASK_FAILURES, failures)
        counters.add(C.GROUP_ENGINE, C.SPECULATIVE_LAUNCHES, spec_launched)
        counters.add(C.GROUP_ENGINE, C.SPECULATIVE_WINS, spec_wins)
        job_span.set("task_attempts", launched)
        job_span.set("task_failures", failures)
        overhead = self.cost_model.fault_overhead_seconds(wasted, backoff_s)
        if overhead:
            job_span.set("fault_overhead_s", overhead)
            cost = replace(cost, fault_overhead_s=overhead)
        return cost

    @staticmethod
    def _task_wall(
        results: list, job_started: float, rec: NullRecorder, phase: str
    ) -> list[tuple[float, float]]:
        """Collect worker-measured task intervals; trace them if recording.

        Intervals are offsets from job start; the trace gets the raw
        stamps so task spans line up with the engine's phase spans.
        """
        if rec.enabled:
            for i, r in enumerate(results):
                rec.add_span(
                    f"{phase}-{i}",
                    cat="task",
                    track=f"{phase} tasks",
                    start=r.t_start,
                    end=r.t_end,
                    args={"task": i},
                )
        return [(r.t_start - job_started, r.t_end - job_started) for r in results]

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _input_splits(self, job: MapReduceJob) -> list[list[tuple[str, int, Any, int]]]:
        """Split input files into map tasks of ``split_records`` records.

        Entries are ``(path, lineno, record, nbytes)``.  Reads are always
        charged at the encoded line size via :meth:`InMemoryDFS.read_file`;
        with an input codec the record is the decoded object — taken from
        the DFS typed store when the upstream job wrote through a codec,
        decoded once and cached otherwise, or re-parsed per read when
        ``typed_io`` is off (the seed codec path).
        """
        splits: list[list[tuple[str, int, Any, int]]] = []
        current: list[tuple[str, int, Any, int]] = []
        for path in job.input_paths:
            codec = job.input_codec_for(path)
            for f in self.dfs.resolve(path):
                lines = self.dfs.read_file(f)
                records = self._file_records(job, f, lines, codec)
                for lineno, line in enumerate(lines):
                    current.append((f, lineno, records[lineno], len(line) + 1))
                    if len(current) >= self.split_records:
                        splits.append(current)
                        current = []
                # A split never spans files, like HDFS blocks.
                if current:
                    splits.append(current)
                    current = []
        return splits

    def _file_records(
        self, job: MapReduceJob, f: str, lines: list[str], codec
    ) -> list[Any]:
        """The map-input records of one file (lines, or decoded objects)."""
        if codec is None:
            return lines
        if self.typed_io:
            records = self.dfs.typed_records(f, codec)
            if records is None:
                records = self._decode_lines(job, f, lines, codec)
                self.dfs.cache_records(f, records, codec)
            return records
        return self._decode_lines(job, f, lines, codec)

    @staticmethod
    def _decode_lines(job: MapReduceJob, f: str, lines: list[str], codec) -> list[Any]:
        """Decode a file's lines, wrapping failures as map-task errors.

        Record decoding belongs to the map task (Hadoop's RecordReader
        runs inside it), so a malformed record fails with the same
        located error a mapper-side parse failure used to raise.
        """
        records = []
        for lineno, line in enumerate(lines):
            try:
                records.append(codec.decode(line))
            except Exception as exc:  # noqa: BLE001 - wrap task failures
                raise JobError(
                    f"map task failed in job {job.name!r} on "
                    f"{f}:{lineno}: {exc}"
                ) from exc
        return records

    def _run_map_phase(
        self,
        job: MapReduceJob,
        splits: list[list[tuple[str, int, Any, int]]],
        counters: Counters,
        executor,
    ) -> tuple[list[_MapTaskResult], list[TaskStats], PhaseReport | None]:
        results, report = run_phase_with_recovery(
            executor,
            _run_map_task,
            len(splits),
            _MapPhase(job, splits),
            job=job.name,
            phase="map",
            policy=self.retry,
            plan=self.fault_plan,
            recorder=self.recorder,
        )
        for result in results:  # merge shards in task-id order
            counters.merge(result.counters)
        stats = [result.stats for result in results]
        if report is not None:  # attach per-task attempt histories
            stats = [
                replace(s, attempts=tuple(report.attempts[i]))
                for i, s in enumerate(stats)
            ]
        return results, stats, report

    # ------------------------------------------------------------------
    # Shuffle, reduce and write stages
    # ------------------------------------------------------------------
    @staticmethod
    def _shuffle_merge(
        job: MapReduceJob, map_results: list[_MapTaskResult]
    ) -> tuple[list[list[tuple]], list[int]]:
        """Merge each reducer's buckets from every map task.

        Merged in task-id order; the reduce task sorts its own bucket.
        Returns the merged buckets and the per-reducer input bytes.
        """
        merged: list[list[tuple]] = [[] for __ in range(job.num_reducers)]
        input_bytes = [0] * job.num_reducers
        for result in map_results:
            for r, bucket in enumerate(result.buckets):
                if bucket:
                    merged[r].extend(bucket)
            for r, nbytes in enumerate(result.bucket_bytes):
                input_bytes[r] += nbytes
        return merged, input_bytes

    def _write_reduce_output(
        self,
        job: MapReduceJob,
        task_results: list[_ReduceTaskResult],
        input_bytes: list[int],
        counters: Counters,
        wrec: _WriteRecovery | None = None,
        report: PhaseReport | None = None,
    ) -> tuple[list[TaskStats], int]:
        """Merge reduce-task shards and write part files in reducer order."""
        stats: list[TaskStats] = []
        total_output = 0
        for r, result in enumerate(task_results):
            counters.merge(result.counters)
            part_path = f"{job.output_path}/part-{r:05d}"
            if wrec is not None:
                wrec.precommit(r, part_path)
            if job.output_codec is not None:
                # Encode-once: records become lines (byte accounting and
                # durability) and stay resident for the next job's map.
                nbytes = self.dfs.write_records(
                    part_path, result.lines, job.output_codec
                )
            else:
                nbytes = self.dfs.write_file(part_path, result.lines)
            total_output += len(result.lines)
            stats.append(
                TaskStats(
                    input_records=result.input_records,
                    input_bytes=input_bytes[r],
                    output_records=len(result.lines),
                    output_bytes=nbytes,
                    compute_ops=result.compute_ops,
                    attempts=tuple(report.attempts[r]) if report is not None else (),
                )
            )
        return stats, total_output

    def _write_map_only_output(
        self,
        job: MapReduceJob,
        map_results: list[_MapTaskResult],
        counters: Counters,
        wrec: _WriteRecovery | None = None,
    ) -> tuple[list[TaskStats], int]:
        """Map-only jobs write partitioned but unsorted/unreduced output.

        Without an ``output_codec`` map emissions must already be text
        lines (``value`` is written verbatim, the key only drives
        partitioning); with one, emissions are typed records encoded
        once at write time.
        """
        stats: list[TaskStats] = []
        total_output = 0
        for r in range(job.num_reducers):
            lines: list[Any] = []
            input_bytes = 0
            for result in map_results:
                input_bytes += result.bucket_bytes[r]
                for __, value in result.buckets[r]:
                    if job.output_codec is None and not isinstance(value, str):
                        raise JobError(
                            f"map-only job {job.name!r} emitted a non-string "
                            f"value: {value!r}"
                        )
                    lines.append(value)
            part_path = f"{job.output_path}/part-{r:05d}"
            if wrec is not None:
                wrec.precommit(r, part_path)
            if job.output_codec is not None:
                nbytes = self.dfs.write_records(part_path, lines, job.output_codec)
            else:
                nbytes = self.dfs.write_file(part_path, lines)
            counters.add(C.GROUP_ENGINE, C.REDUCE_OUTPUT_RECORDS, len(lines))
            total_output += len(lines)
            stats.append(
                TaskStats(
                    input_records=len(lines),
                    input_bytes=input_bytes,
                    output_records=len(lines),
                    output_bytes=nbytes,
                )
            )
        return stats, total_output
