"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Raised for invalid geometric objects (e.g. negative side lengths)."""


class PartitioningError(ReproError):
    """Raised for invalid grid partitionings or out-of-space lookups."""


class QueryError(ReproError):
    """Raised for malformed multi-way spatial join queries."""


class MapReduceError(ReproError):
    """Base class for failures inside the map-reduce substrate."""


class DFSError(MapReduceError):
    """Raised for distributed-file-system failures (missing paths, ...)."""


class JobError(MapReduceError):
    """Raised when a map-reduce job specification is invalid or a task fails."""


class FaultPlanError(JobError):
    """A declarative fault plan failed schema validation.

    Always a one-line message naming the source (file path when the plan
    was loaded from disk), the offending spec index and the offending
    key, so a typo'd ``kind`` or field in a ``--fault-plan`` file is a
    single-line diagnosis instead of a spec that silently never fires.
    Derives from :class:`JobError` so existing callers catching plan
    errors keep working.
    """


class NoActiveWorkersError(JobError):
    """Every worker in the pool is dead or blacklisted.

    The elastic-pool contract degrades gracefully while at least one
    worker survives; once the active set is empty the job fails cleanly
    with this error instead of looping forever on unassignable tasks.
    """


class InjectedFault(MapReduceError):
    """A failure injected by a :class:`repro.mapreduce.faults.FaultPlan`.

    Distinct from :class:`JobError` so tests can tell injected chaos from
    genuine task failures; the recovery layer treats both identically
    (capture, retry, exhaust).
    """


class TaskRetryExhausted(JobError):
    """A task failed on every allowed attempt; the job is dead.

    Carries the task's full attempt log (a tuple of
    :class:`repro.mapreduce.faults.TaskAttempt`) so post-mortems can see
    what each attempt did — Hadoop's "Task attempt_... failed 4 times"
    with the per-attempt diagnostics attached.
    """

    def __init__(self, message: str, attempts: tuple = ()) -> None:
        super().__init__(message)
        self.attempts = tuple(attempts)

    def __reduce__(self):  # picklable across process pools
        return (type(self), (self.args[0], self.attempts))


class BadRecordError(JobError):
    """A map task died on one specific input record.

    Carries enough structure (split offset, source ``path:lineno`` and a
    ``repr`` of the record) for skipping mode to quarantine exactly the
    offending record and retry the task without it — Hadoop's
    ``mapred.skip.mode`` with the bad span narrowed to a single record.
    The message keeps the classic ``map task failed in job ... on
    path:line`` shape so non-skipping callers see the same error they
    always did.
    """

    def __init__(
        self, message: str, offset: int, path: str, lineno: int, record: str
    ) -> None:
        super().__init__(message)
        self.offset = offset
        self.path = path
        self.lineno = lineno
        self.record = record

    def __reduce__(self):  # picklable across process pools
        return (
            type(self),
            (self.args[0], self.offset, self.path, self.lineno, self.record),
        )


class JoinError(ReproError):
    """Raised when a join algorithm is asked to run an unsupported query."""


class DataGenerationError(ReproError):
    """Raised for invalid synthetic-workload specifications."""


class DatasetFormatError(DataGenerationError):
    """A dataset file contains a line the record codec cannot parse.

    Always names the source as ``path:line`` and quotes the offending
    text, so a typo in a million-line input is a one-line diagnosis
    instead of a codec traceback.
    """


class ExperimentError(ReproError):
    """Raised when an experiment/benchmark specification is inconsistent."""
