"""Paper-vs-measured reporting.

Every experiment module embeds the numbers its paper table reports
(times in minutes, rectangles marked / communicated in millions).  This
module renders a measured run side by side with those numbers and the
derived *shape* indicators the reproduction is judged on:

* normalised growth along the sweep (first row = 1.0) per algorithm —
  absolute times are testbed-specific, trajectories are not;
* who-wins per row, paper vs reproduction;
* replication ratios (C-Rep-L / C-Rep communicated rectangles).

``python -m repro report`` regenerates EXPERIMENTS.md from scratch.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import ExperimentResult, format_hms

__all__ = ["paper_comparison", "render_experiments_markdown"]

_ALGO_TITLES = {
    "cascade": "2-way Cascade",
    "all-rep": "All-Replicate",
    "c-rep": "C-Rep",
    "c-rep-l": "C-Rep-L",
}


def _normalised(series: Sequence[float]) -> list[float]:
    if not series or series[0] == 0:
        return [0.0 for __ in series]
    return [v / series[0] for v in series]


def _fmt_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"


def _winner(times: dict[str, float | None]) -> str:
    """The fastest algorithm's key, or ``"tie"`` when within 5%."""
    live = {k: v for k, v in times.items() if v is not None}
    if not live:
        return "-"
    best = min(live, key=lambda k: live[k])
    near = [k for k, v in live.items() if v <= live[best] * 1.05]
    return best if len(near) == 1 else "tie"


def paper_comparison(module, result: ExperimentResult) -> str:
    """Markdown section comparing one measured table against the paper.

    ``module`` is the experiment module (``repro.experiments.tableN``),
    which carries ``PAPER_MINUTES`` / ``PAPER_MARKED_M`` /
    ``PAPER_AFTER_REP_M``.
    """
    paper_minutes: dict[str, list] = module.PAPER_MINUTES
    algorithms = [a for a in _ALGO_TITLES if a in result.algorithms]
    lines: list[str] = []
    lines.append(f"### {result.table}: {result.title}")
    lines.append("")
    lines.append(f"*Query:* `{result.query}` — *workload:* {result.parameters}")
    lines.append("")
    kernels = sorted({m.kernel for row in result.rows for m in row.metrics.values()})
    if kernels:
        lines.append("*Compute kernel:* " + ", ".join(f"`{k}`" for k in kernels))
        lines.append("")

    # ---- absolute side-by-side table ---------------------------------
    header = ["row"]
    for a in algorithms:
        header += [f"{_ALGO_TITLES[a]} (paper min)", f"{_ALGO_TITLES[a]} (sim)"]
    header += ["winner (paper)", "winner (repro)"]
    rows: list[list[str]] = []
    for i, row in enumerate(result.rows):
        cells = [row.label]
        paper_row_times: dict[str, float | None] = {}
        repro_row_times: dict[str, float | None] = {}
        for a in algorithms:
            paper_vals = paper_minutes.get(a)
            paper_v = (
                paper_vals[i]
                if paper_vals is not None and i < len(paper_vals)
                else None
            )
            paper_row_times[a] = paper_v
            cells.append("aborted" if paper_v is None and paper_vals else str(paper_v))
            m = row.metrics.get(a)
            repro_row_times[a] = m.simulated_seconds if m else None
            cells.append(format_hms(m.simulated_seconds) if m else "-")
        cells.append(_ALGO_TITLES.get(_winner(paper_row_times), _winner(paper_row_times)))
        cells.append(_ALGO_TITLES.get(_winner(repro_row_times), _winner(repro_row_times)))
        rows.append(cells)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    lines.append(_fmt_row(header, widths))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for r in rows:
        lines.append(_fmt_row(r, widths))
    lines.append("")

    # ---- growth trajectories ------------------------------------------
    lines.append("Growth along the sweep (first row = 1.0):")
    lines.append("")
    for a in algorithms:
        measured = _normalised(result.column(a, "simulated_seconds"))
        paper_vals = [v for v in paper_minutes.get(a, []) if v is not None]
        paper_norm = _normalised(paper_vals)
        lines.append(
            f"* {_ALGO_TITLES[a]}: paper "
            + " / ".join(f"{v:.1f}x" for v in paper_norm)
            + " — measured "
            + " / ".join(f"{v:.1f}x" for v in measured)
        )
    lines.append("")

    # ---- replication ratio (C-Rep-L vs C-Rep) -------------------------
    if "c-rep" in algorithms and "c-rep-l" in algorithms:
        paper_rep = module.PAPER_AFTER_REP_M
        ratios_paper = [
            (l / c) if (c and l is not None and c is not None) else None
            for c, l in zip(paper_rep.get("c-rep", []), paper_rep.get("c-rep-l", []))
        ]
        crep = result.column("c-rep", "rectangles_after_replication")
        crepl = result.column("c-rep-l", "rectangles_after_replication")
        ratios_measured = [
            (l / c) if c else None for c, l in zip(crep, crepl)
        ]
        lines.append(
            "Rectangles communicated after replication, C-Rep-L / C-Rep: paper "
            + " / ".join(
                f"{r:.2f}" if r is not None else "-" for r in ratios_paper
            )
            + " — measured "
            + " / ".join(
                f"{r:.2f}" if r is not None else "-" for r in ratios_measured
            )
        )
        lines.append("")
    # ---- reducer skew (obs layer) -------------------------------------
    skews = {a: result.column(a, "reduce_skew") for a in algorithms}
    skew_cells = [
        f"{_ALGO_TITLES[a]} {vals[-1]:.2f}x"
        for a, vals in skews.items()
        if vals and vals[-1] > 0
    ]
    if skew_cells:
        lines.append(
            "Reducer skew (hottest cell / mean reduce input, last row): "
            + " — ".join(skew_cells)
        )
        lines.append("")
    consistent = all(row.consistent for row in result.rows)
    lines.append(
        "All algorithms produced identical output tuples on every row: "
        + ("**yes**" if consistent else "**NO — INVESTIGATE**")
    )
    lines.append("")
    return "\n".join(lines)


def render_experiments_markdown(
    scale: float = 1.0,
    verify: bool = True,
    preamble: str | None = None,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
) -> str:
    """Regenerate the full EXPERIMENTS.md body by running every table."""
    from repro.experiments import TABLES

    sections = [
        preamble
        or (
            "# EXPERIMENTS — paper vs. reproduction\n\n"
            f"Generated by `python -m repro report --scale {scale}`.\n"
        )
    ]
    for name in sorted(TABLES):
        module = TABLES[name]
        result = module.run(
            scale=scale,
            verify=verify,
            executor=executor,
            num_workers=num_workers,
            kernel=kernel,
        )
        sections.append(paper_comparison(module, result))
    return "\n".join(sections)
