"""Command-line interface: run the paper's experiments and ad-hoc joins.

Examples::

    # regenerate one table of the evaluation (scaled workload)
    python -m repro table2 --scale 0.5

    # regenerate every table and write a combined report
    python -m repro all --scale 1.0 --output results.txt

    # run one algorithm on a synthetic chain workload
    python -m repro join --algorithm c-rep-l --n 5000 --space 10000

    # run durably (replicated checksummed blocks), then audit the store
    python -m repro join --dfs-root ./store --replication 2
    python -m repro fsck --dfs-root ./store
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ReproError
from repro.experiments import TABLES
from repro.experiments.common import derive_grid, run_algorithms
from repro.experiments.workloads import synthetic_chain
from repro.joins.registry import ALGORITHMS
from repro.mapreduce.cost import CostModel
from repro.query.predicates import Overlap, Range
from repro.query.query import Query

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spatial",
        description="Multi-way spatial joins on map-reduce (EDBT 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in sorted(TABLES):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        _add_table_args(p)

    p_all = sub.add_parser("all", help="regenerate every table")
    _add_table_args(p_all)

    p_report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (paper-vs-measured)"
    )
    _add_table_args(p_report, obs=False)

    p_explain = sub.add_parser(
        "explain", help="show how each algorithm would route a query"
    )
    p_explain.add_argument(
        "--query",
        type=str,
        default="R1 Ov R2 and R2 Ov R3",
        help="query in the paper's notation",
    )
    p_explain.add_argument("--n", type=int, default=5_000, help="rectangles per relation")
    p_explain.add_argument("--space", type=float, default=10_000.0, help="space side length")
    p_explain.add_argument("--seed", type=int, default=11, help="workload RNG seed")
    p_explain.add_argument("--grid-cells", type=int, default=64, help="reducer grid cells")

    p_join = sub.add_parser("join", help="run one algorithm on a synthetic chain")
    p_join.add_argument(
        "--algorithm", choices=ALGORITHMS, default="c-rep-l", help="algorithm to run"
    )
    p_join.add_argument("--n", type=int, default=5_000, help="rectangles per relation")
    p_join.add_argument("--space", type=float, default=10_000.0, help="space side length")
    p_join.add_argument("--relations", type=int, default=3, help="chain length")
    p_join.add_argument(
        "--range-d", type=float, default=0.0, help="range distance (0 = overlap)"
    )
    p_join.add_argument(
        "--query",
        type=str,
        default=None,
        help=(
            "explicit query in the paper's notation, e.g. "
            "'R1 Ov R2 and R2 Ra(100) R3' (overrides --relations/--range-d)"
        ),
    )
    p_join.add_argument("--seed", type=int, default=11, help="workload RNG seed")
    p_join.add_argument("--grid-cells", type=int, default=64, help="reducer grid cells")
    p_join.add_argument(
        "--dataset",
        action="append",
        default=None,
        metavar="NAME=FILE",
        help=(
            "replace one relation of the synthetic workload with a "
            "rectangle file (rid,x,y,l,b per line; repeatable)"
        ),
    )
    _add_executor_args(p_join)
    _add_obs_args(p_join)
    _add_fault_args(p_join)

    p_fsck = sub.add_parser(
        "fsck",
        help="audit (and optionally repair) a replicated on-disk DFS root",
    )
    p_fsck.add_argument(
        "--dfs-root",
        type=str,
        default=".",
        metavar="DIR",
        help=(
            "the LocalFS DFS root to audit (default: current directory); "
            "reads the _blocks/placement.json the storage plane persisted"
        ),
    )
    p_fsck.add_argument(
        "--repair",
        action="store_true",
        help=(
            "drop corrupt/missing replicas and re-replicate each "
            "damaged-but-recoverable block from a healthy copy"
        ),
    )
    p_fsck.add_argument(
        "--verbose",
        action="store_true",
        help="also list every healthy file with its block count",
    )

    p_hist = sub.add_parser(
        "bench-history",
        help="trend table over recorded BENCH_*.json files + regression gate",
    )
    p_hist.add_argument(
        "files",
        nargs="*",
        default=None,
        metavar="BENCH.json",
        help=(
            "pytest-benchmark JSON files, any order (default: "
            "BENCH_*.json in the current directory)"
        ),
    )
    p_hist.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help=(
            "mean-time regression gate between the two newest files "
            "(default 0.10 = 10%%)"
        ),
    )
    return parser


def _add_table_args(p: argparse.ArgumentParser, obs: bool = True) -> None:
    p.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip cross-algorithm output verification",
    )
    p.add_argument("--output", type=str, default=None, help="also write report to file")
    _add_executor_args(p)
    if obs:
        _add_obs_args(p)


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "record a Chrome trace-event JSON of the run "
            "(open in Perfetto or chrome://tracing)"
        ),
    )
    p.add_argument(
        "--metrics",
        type=str,
        default=None,
        metavar="FILE",
        help="write a plain-JSON metrics snapshot of the run",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="print the per-job skew/phase dashboard after each run",
    )
    p.add_argument(
        "--ledger",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "journal typed run events (manifest, job brackets, task "
            "attempts, spills, speculation, checkpoints) to this JSONL file"
        ),
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help=(
            "cProfile every map/reduce task body and print merged "
            "per-phase hotspot tables after the run"
        ),
    )
    p.add_argument(
        "--flamegraph",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "write collapsed-stack profile lines (flamegraph.pl / "
            "speedscope input; implies --profile)"
        ),
    )


def _parse_memory_budget(text: str) -> int:
    """Bytes with an optional k/m/g suffix: ``64k``, ``4m``, ``1g``."""
    units = {"k": 1024, "m": 1024**2, "g": 1024**3}
    raw = text.strip().lower()
    multiplier = 1
    if raw and raw[-1] in units:
        multiplier = units[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw) * multiplier
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid memory budget {text!r} (expected bytes, "
            "optionally suffixed k/m/g)"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"memory budget must be positive, got {text!r}"
        )
    return value


def _build_fault_plan(args: argparse.Namespace, plan_cls):
    """The join command's FaultPlan: ``--fault-plan`` + ``--workers-fail``."""
    plan = plan_cls.load(args.fault_plan) if args.fault_plan else None
    if args.workers_fail:
        if plan is None:
            plan = plan_cls()
        for kwargs in args.workers_fail:
            plan.fail_worker(**kwargs)
    return plan


def _parse_worker_fail(text: str) -> dict:
    """Parse one ``--workers-fail`` spec into ``fail_worker`` kwargs.

    Accepted shapes: ``NAME@PHASE:TASK[:ATTEMPT][,silent]`` (fires on
    that attempt's completion report) and ``NAME@t=SECONDS[,silent]``
    (fires at the first phase boundary where the simulated clock has
    passed SECONDS).
    """
    raw = text
    silent = False
    if text.endswith(",silent"):
        silent = True
        text = text[: -len(",silent")]
    name, sep, where = text.partition("@")
    usage = (
        "--workers-fail expects NAME@PHASE:TASK[:ATTEMPT][,silent] or "
        f"NAME@t=SECONDS[,silent], got {raw!r}"
    )
    if not sep or not name or not where:
        raise argparse.ArgumentTypeError(usage)
    if where.startswith("t="):
        try:
            at_s = float(where[2:])
        except ValueError:
            raise argparse.ArgumentTypeError(usage) from None
        return {"worker": name, "silent": silent, "at_s": at_s}
    phase, sep, rest = where.partition(":")
    if not sep or not phase or not rest:
        raise argparse.ArgumentTypeError(usage)
    parts = rest.split(":")
    try:
        index = int(parts[0])
        attempt = int(parts[1]) if len(parts) > 1 else 0
    except ValueError:
        raise argparse.ArgumentTypeError(usage) from None
    return {
        "worker": name,
        "phase": phase,
        "index": index,
        "attempt": attempt,
        "silent": silent,
    }


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        help=(
            "allowed failures per task before the job aborts "
            "(Hadoop's mapred.*.max.attempts; default 1 = fail fast)"
        ),
    )
    p.add_argument(
        "--speculate",
        action="store_true",
        help="launch backup attempts for stragglers (first finisher wins)",
    )
    p.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        metavar="FILE",
        help="inject the deterministic FaultPlan in this JSON file",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the workflow checkpoint manifest, skipping jobs "
            "whose outputs are complete (needs --dfs-root)"
        ),
    )
    p.add_argument(
        "--dfs-root",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "back the cluster with an on-disk DFS rooted here (durable "
            "outputs + checkpoints; enables cross-process --resume)"
        ),
    )
    p.add_argument(
        "--memory-budget",
        type=_parse_memory_budget,
        default=None,
        metavar="BYTES",
        help=(
            "per-map-task shuffle buffer bound (suffix k/m/g; Hadoop's "
            "io.sort.mb) — tasks over budget spill sorted runs to the "
            "DFS; output stays byte-identical"
        ),
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "hung-task watchdog: cancel and re-dispatch any attempt "
            "exceeding this wall clock (thread/process executors; "
            "Hadoop's mapred.task.timeout)"
        ),
    )
    p.add_argument(
        "--max-skipped-records",
        type=int,
        default=0,
        metavar="N",
        help=(
            "skipping mode: quarantine up to N bad records per task and "
            "retry without them (Hadoop's mapred.skip.mode; default 0 = "
            "fail on the first bad record)"
        ),
    )
    p.add_argument(
        "--workers-fail",
        type=_parse_worker_fail,
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "kill a named virtual worker: NAME@PHASE:TASK[:ATTEMPT]"
            "[,silent] fires when that attempt completes, NAME@t=SECONDS "
            "at the first phase boundary past the simulated clock; "
            "in-flight attempts are lost and the worker's committed map "
            "outputs re-execute (repeatable)"
        ),
    )
    p.add_argument(
        "--blacklist-after",
        type=int,
        default=0,
        metavar="K",
        help=(
            "blacklist a worker after K charged task failures — no new "
            "assignments, capacity removed (Hadoop's "
            "mapred.max.tracker.failures; default 0 = never)"
        ),
    )
    p.add_argument(
        "--replication",
        type=int,
        default=None,
        metavar="N",
        help=(
            "engage the durable-storage plane: chunk every DFS file into "
            "checksummed blocks placed on N distinct workers, verify on "
            "read with transparent failover, re-replicate after worker "
            "loss, and schedule map tasks data-locally (HDFS's "
            "dfs.replication; default: off)"
        ),
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help=(
            "simulated heartbeat period: the detection latency charged "
            "when a worker dies silently (default 1.0)"
        ),
    )


def _add_executor_args(p: argparse.ArgumentParser) -> None:
    from repro.mapreduce.executor import EXECUTORS

    p.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default="serial",
        help="cluster task back-end (output is identical for all)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for thread/process executors (default: all CPUs)",
    )
    from repro.kernels import KERNELS

    p.add_argument(
        "--kernel",
        choices=KERNELS,
        default="auto",
        help=(
            "compute kernel: 'numpy' vectorized batches, 'python' scalar, "
            "'auto' = numpy when available (output is identical for all; "
            "REPRO_KERNEL overrides)"
        ),
    )


def _make_recorder(args: argparse.Namespace):
    """A live recorder when ``--trace`` asked for one, else ``None``."""
    if getattr(args, "trace", None):
        from repro.obs import TraceRecorder

        return TraceRecorder()
    return None


def _make_ledger(args: argparse.Namespace):
    """A live run ledger when ``--ledger`` asked for one, else ``None``."""
    if getattr(args, "ledger", None):
        from repro.obs import JsonlSink, RunLedger

        return RunLedger(JsonlSink(args.ledger))
    return None


def _make_profiler(args: argparse.Namespace):
    """A task profiler when ``--profile``/``--flamegraph`` asked for one."""
    if getattr(args, "profile", False) or getattr(args, "flamegraph", None):
        from repro.obs import TaskProfiler

        return TaskProfiler()
    return None


def _cli_manifest(args: argparse.Namespace, ledger) -> None:
    """Stamp the run manifest with the CLI-level configuration."""
    if ledger is None:
        return
    ledger.manifest(
        command=args.command,
        executor=args.executor,
        num_workers=args.workers,
        kernel=args.kernel,
        **{
            key: getattr(args, key)
            for key in ("algorithm", "n", "space", "seed", "scale", "replication")
            if hasattr(args, key)
        },
    )


def _finish_deep_obs(args: argparse.Namespace, ledger, profiler) -> None:
    """Close the ledger and print/write the profile artifacts."""
    if ledger is not None:
        ledger.close()
        print(f"wrote ledger {args.ledger}")
    if profiler is not None:
        from repro.obs import render_profile_dashboard, write_flamegraph

        if getattr(args, "flamegraph", None):
            write_flamegraph(args.flamegraph, profiler)
            print(
                f"wrote flamegraph {args.flamegraph} "
                "(collapsed stacks; feed to flamegraph.pl or speedscope)"
            )
        if getattr(args, "profile", False):
            print(render_profile_dashboard(profiler))


def _finish_obs(args: argparse.Namespace, recorder, results=None) -> None:
    """Write the trace/metrics files the obs flags requested."""
    if recorder is not None:
        from repro.obs import write_trace

        write_trace(args.trace, recorder, process_name=f"repro {args.command}")
        print(f"wrote trace {args.trace} (load in https://ui.perfetto.dev)")
    if getattr(args, "metrics", None) and results is not None:
        from repro.obs import experiment_metrics, write_metrics

        write_metrics(args.metrics, experiment_metrics(results))
        print(f"wrote metrics {args.metrics}")


def _run_tables(names: list[str], args: argparse.Namespace) -> str:
    sections = []
    recorder = _make_recorder(args)
    ledger = _make_ledger(args)
    profiler = _make_profiler(args)
    _cli_manifest(args, ledger)
    results = {}
    for name in names:
        started = time.perf_counter()
        result = TABLES[name].run(
            scale=args.scale,
            verify=not args.no_verify,
            executor=args.executor,
            num_workers=args.workers,
            kernel=args.kernel,
            recorder=recorder,
            verbose=args.verbose,
            ledger=ledger,
            profiler=profiler,
        )
        elapsed = time.perf_counter() - started
        results[name] = result
        sections.append(result.format())
        sections.append(f"  [generated in {elapsed:.1f}s wall]")
        sections.append("")
    _finish_obs(args, recorder, results)
    _finish_deep_obs(args, ledger, profiler)
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:

    if args.command == "bench-history":
        import glob

        from repro.obs.bench_history import load_series, render_history

        paths = args.files or sorted(glob.glob("BENCH_*.json"))
        if not paths:
            print("bench-history: no BENCH_*.json files found", file=sys.stderr)
            return 2
        series = load_series(paths)
        table, regressions = render_history(series, threshold=args.threshold)
        print(table)
        return 1 if regressions else 0

    if args.command == "join":
        if args.query:
            from repro.query.parser import parse_query

            query = parse_query(args.query)
            names = list(query.dataset_keys)
        else:
            names = [f"R{i + 1}" for i in range(args.relations)]
            predicate = Range(args.range_d) if args.range_d > 0 else Overlap()
            query = Query.chain(names, predicate)
        workload = synthetic_chain(
            args.n, args.space, names=tuple(names), seed=args.seed
        )
        datasets = dict(workload.datasets)
        d_max = workload.d_max
        if args.dataset:
            from repro.data.loader import load_rect_file
            from repro.data.transforms import max_diagonal
            from repro.errors import DatasetFormatError

            for spec in args.dataset:
                name, sep, file_path = spec.partition("=")
                if not sep or not name or not file_path:
                    raise DatasetFormatError(
                        f"--dataset expects NAME=FILE, got {spec!r}"
                    )
                if name not in datasets:
                    raise DatasetFormatError(
                        f"--dataset names unknown relation {name!r}; "
                        f"query uses {sorted(datasets)}"
                    )
                datasets[name] = load_rect_file(file_path)
            d_max = max_diagonal(datasets)
        grid = derive_grid(datasets, args.grid_cells)
        recorder = _make_recorder(args)
        ledger = _make_ledger(args)
        profiler = _make_profiler(args)
        _cli_manifest(args, ledger)
        sink: dict = {}
        from repro.errors import JobError
        from repro.mapreduce.faults import FaultPlan, RetryPolicy

        if args.resume and not args.dfs_root:
            raise JobError(
                "--resume needs --dfs-root (an in-memory DFS has nothing "
                "left to resume from)"
            )
        dfs = None
        if args.dfs_root:
            from repro.mapreduce.localfs import LocalFSDFS

            dfs = LocalFSDFS(args.dfs_root)
        metrics, __, output_tuples = run_algorithms(
            query,
            datasets,
            grid,
            [args.algorithm],
            d_max=d_max,
            cost_model=CostModel.scaled(workload.paper_scale),
            verify=False,
            executor=args.executor,
            num_workers=args.workers,
            kernel=args.kernel,
            recorder=recorder,
            sink=sink,
            dfs=dfs,
            retry=RetryPolicy(
                max_attempts=args.max_attempts,
                speculate=args.speculate,
                task_timeout_s=args.task_timeout,
                max_skipped_records=args.max_skipped_records,
                blacklist_after=args.blacklist_after,
                heartbeat_interval_s=args.heartbeat_interval,
            ),
            fault_plan=_build_fault_plan(args, FaultPlan),
            checkpoint_dir="checkpoints" if args.dfs_root else None,
            resume=args.resume,
            memory_budget=args.memory_budget,
            replication=args.replication,
            ledger=ledger,
            profiler=profiler,
        )
        m = metrics[args.algorithm]
        print(f"query: {query}")
        print(f"output tuples: {output_tuples}")
        print(f"kernel: {m.kernel}")
        print(f"simulated time: {m.simulated_seconds:.1f}s")
        print(f"shuffled records: {m.shuffled_records}")
        print(f"rectangles marked: {m.rectangles_marked}")
        print(f"rectangles after replication: {m.rectangles_after_replication}")
        if m.reduce_skew:
            print(f"reduce skew (max/mean): {m.reduce_skew:.2f}x")
        workflow = sink[args.algorithm].workflow
        eng = workflow.counters.engine
        if eng("task_attempts"):
            print(
                f"task attempts: {eng('task_attempts')} "
                f"({eng('task_failures')} failures, "
                f"{eng('speculative_launches')} speculative, "
                f"{eng('speculative_wins')} speculative wins)"
            )
        if eng("task_timeouts"):
            print(f"watchdog timeouts: {eng('task_timeouts')}")
        if eng("worker_failures") or eng("workers_blacklisted") or eng(
            "workers_joined"
        ):
            print(
                f"workers: {eng('worker_failures')} lost, "
                f"{eng('workers_blacklisted')} blacklisted, "
                f"{eng('workers_joined')} joined "
                f"({eng('map_output_lost')} map outputs invalidated, "
                f"{eng('tasks_reexecuted')} tasks re-executed)"
            )
        if eng("locality_hits") or eng("locality_misses"):
            total = eng("locality_hits") + eng("locality_misses")
            print(
                f"map locality: {eng('locality_hits')}/{total} task(s) "
                "data-local"
            )
        if (
            eng("block_corruptions")
            or eng("replicas_lost")
            or eng("blocks_rereplicated")
            or eng("blocks_under_replicated")
        ):
            print(
                f"storage: {eng('block_corruptions')} corrupt replica(s) "
                f"failed over, {eng('replicas_lost')} replica(s) lost, "
                f"{eng('blocks_rereplicated')} block cop(y/ies) "
                "re-replicated"
                + (
                    f", {eng('blocks_under_replicated')} block(s) "
                    "UNDER-REPLICATED"
                    if eng("blocks_under_replicated")
                    else ""
                )
            )
        if eng("watchdog_degraded"):
            print(
                "EFFECTIVE_WATCHDOG=off: --task-timeout degraded to retry "
                "rounds (no streaming session on this executor)"
            )
        if eng("spilled_records"):
            print(
                f"spilled records: {eng('spilled_records')} "
                f"({eng('spill_files')} spill files, "
                f"{eng('spill_bytes')} bytes)"
            )
        if eng("skipped_records"):
            print(f"skipped records: {eng('skipped_records')} (quarantined)")
        resumed = sum(1 for r in workflow.job_results if r.resumed)
        if resumed:
            print(
                f"resumed from checkpoint: {resumed}/{len(workflow.job_results)} "
                "job(s) restored without re-execution"
            )
        if args.verbose:
            from repro.obs import render_workflow_dashboard

            print(
                render_workflow_dashboard(
                    sink[args.algorithm].workflow.job_results, title=args.algorithm
                )
            )
        if recorder is not None:
            from repro.obs import write_trace

            write_trace(args.trace, recorder, process_name="repro join")
            print(f"wrote trace {args.trace} (load in https://ui.perfetto.dev)")
        if args.metrics:
            from repro.obs import metrics_snapshot, write_metrics

            write_metrics(
                args.metrics,
                metrics_snapshot(
                    {
                        name: result.workflow.job_results
                        for name, result in sink.items()
                    }
                ),
            )
            print(f"wrote metrics {args.metrics}")
        _finish_deep_obs(args, ledger, profiler)
        return 0

    if args.command == "fsck":
        from repro.mapreduce.blocks import BlockPlane
        from repro.mapreduce.localfs import LocalFSDFS

        plane = BlockPlane(LocalFSDFS(args.dfs_root), None, None, 1)
        report = plane.fsck(repair=args.repair)
        if args.verbose:
            for path in sorted(plane.placement.files):
                blocks = plane.placement.files[path]
                print(
                    f"{path}: {len(blocks)} block(s) x "
                    f"{plane.replication} replica(s)"
                )
        for line in report.lines():
            print(line)
        return report.exit_code

    if args.command == "explain":
        from repro.joins.explain import explain
        from repro.query.parser import parse_query

        query = parse_query(args.query)
        workload = synthetic_chain(
            args.n, args.space, names=tuple(query.dataset_keys), seed=args.seed
        )
        grid = derive_grid(workload.datasets, args.grid_cells)
        print(explain(query, workload.datasets, grid))
        return 0

    if args.command == "report":
        from repro.report import render_experiments_markdown

        markdown = render_experiments_markdown(
            scale=args.scale,
            verify=not args.no_verify,
            executor=args.executor,
            num_workers=args.workers,
            kernel=args.kernel,
        )
        target = args.output or "EXPERIMENTS.md"
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print(f"wrote {target} ({len(markdown.splitlines())} lines)")
        return 0

    names = sorted(TABLES) if args.command == "all" else [args.command]
    report = _run_tables(names, args)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
