"""k-nearest-neighbour join on the grid map-reduce framework."""

from repro.knn.join import KnnJoin, KnnResult

__all__ = ["KnnJoin", "KnnResult"]
