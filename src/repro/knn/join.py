"""k-nearest-neighbour join on the grid map-reduce framework.

The paper's conclusions name nearest-neighbour queries as the next
target for the partitioning framework; this module implements the kNN
*join* — for every query rectangle, the ``k`` data rectangles with the
smallest minimum distance — as iterated rounds of two map-reduce jobs:

**Candidates.**  Map splits the data relation (each data rectangle to
every cell it touches) and routes each query rectangle to every cell
within its current search radius.  Each reducer emits, per query, its
``k`` best local candidates.

**Merge.**  Group candidates by query, keep the global best ``k``.  A
query is *resolved* when its k-th candidate distance does not exceed its
search radius — every unvisited cell (hence every unseen data rectangle)
is farther away.  Unresolved queries re-enter the next round with a
doubled radius, so termination is guaranteed once the radius covers the
space.

The initial radius comes from a density pre-pass (one statistics job
counting data rectangles per cell): a radius expected to reach about
``oversample * k`` data rectangles keeps both the number of rounds and
the candidate volume small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.io import RECT_CODEC, RecordCodec
from repro.errors import DFSError, JoinError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.grid.transforms import split
from repro.mapreduce.cost import CostModel
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import (
    MapContext,
    MapReduceJob,
    ReduceContext,
    ShuffleCodec,
)
from repro.mapreduce.workflow import Workflow, WorkflowResult

__all__ = ["KnnJoin", "KnnResult"]


class _QueryCodec(RecordCodec):
    """Round-input query records: ``(rid, Rect, radius)`` <-> one line."""

    name = "knn-query"

    def encode(self, record) -> str:
        rid, r, radius = record
        return f"{rid},{r.x!r},{r.y!r},{r.l!r},{r.b!r},{radius!r}"

    def decode(self, line: str):
        try:
            rid_s, x, y, l, b, radius_s = line.split(",")
            return (
                int(rid_s),
                Rect(float(x), float(y), float(l), float(b)),
                float(radius_s),
            )
        except (ValueError, TypeError) as exc:
            raise DFSError(f"malformed kNN query record {line!r}") from exc


_QUERY_CODEC = _QueryCodec()

#: shuffle sizing matching the string-era flat values
#: ``(tag, rid, x, y, l, b)``: int key -> 8; value -> 2 bytes framing +
#: 1-char tag + five 8-byte numbers.
_KNN_SHUFFLE_CODEC = ShuffleCodec(
    key_size=lambda key: 8, value_size=lambda value: 43
)

#: one neighbour: (distance, data rid) — tuples sort lexicographically,
#: which is also the deterministic tie-break
Neighbour = tuple[float, int]


@dataclass
class KnnResult:
    """Outcome of a kNN join."""

    #: query rid -> k nearest (distance, data rid), ascending
    neighbours: dict[int, list[Neighbour]]
    rounds: int
    workflow: WorkflowResult

    @property
    def simulated_seconds(self) -> float:
        return self.workflow.simulated_seconds


class KnnJoin:
    """Iterative grid-based kNN join.

    Parameters
    ----------
    k:
        Neighbours per query rectangle.
    oversample:
        Initial-radius sizing: aim for ``oversample * k`` expected data
        rectangles inside the first search ball.  Larger values mean
        fewer rounds but more candidate traffic.
    max_rounds:
        Safety bound; the radius doubles every round, so the default
        always reaches the full space for any sane grid.
    """

    name = "knn-join"

    def __init__(self, k: int, oversample: float = 3.0, max_rounds: int = 24) -> None:
        if k < 1:
            raise JoinError(f"k must be >= 1, got {k}")
        if oversample <= 0:
            raise JoinError(f"oversample must be positive, got {oversample}")
        self.k = k
        self.oversample = oversample
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def run(
        self,
        queries: list[tuple[int, Rect]],
        data: list[tuple[int, Rect]],
        grid: GridPartitioning,
        cluster: Cluster | None = None,
    ) -> KnnResult:
        """Compute the kNN join of ``queries`` against ``data``."""
        cluster = cluster or Cluster(cost_model=CostModel())
        if len(data) == 0:
            raise JoinError("kNN join needs a non-empty data relation")
        if len({rid for rid, __ in queries}) != len(queries):
            raise JoinError("query rids must be unique")
        cluster.dfs.write_records("knn/data", data, RECT_CODEC)
        workflow = Workflow(cluster)

        density = len(data) / max(grid.space.area, 1e-12)
        r0 = math.sqrt((self.oversample * self.k) / (density * math.pi))
        space_diag = math.hypot(grid.space.l, grid.space.b)
        r0 = min(max(r0, 1e-9), space_diag)

        best: dict[int, list[Neighbour]] = {}
        pending: dict[int, tuple[Rect, float]] = {
            rid: (rect, r0) for rid, rect in queries
        }
        rounds = 0
        while pending and rounds < self.max_rounds:
            rounds += 1
            resolved, survivors = self._run_round(
                workflow, grid, pending, rounds
            )
            best.update(resolved)
            pending = survivors
        if pending:  # pragma: no cover - max_rounds is generous
            raise JoinError(
                f"kNN join did not converge in {self.max_rounds} rounds"
            )
        return KnnResult(neighbours=best, rounds=rounds, workflow=workflow.result)

    # ------------------------------------------------------------------
    def _run_round(
        self,
        workflow: Workflow,
        grid: GridPartitioning,
        pending: dict[int, tuple[Rect, float]],
        round_no: int,
    ) -> tuple[dict[int, list[Neighbour]], dict[int, tuple[Rect, float]]]:
        cluster = workflow.cluster
        qpath = f"knn/queries-{round_no}"
        candidates_dir = f"knn/candidates-{round_no}"
        # Clear leftovers from a previous run on this cluster: a run with
        # fewer reducers would otherwise merge the old run's surviving
        # part files into its results.
        # Under resume intermediate outputs are restorable checkpoints
        # (qpath is rewritten below either way — the staged query file
        # must reflect the current call's queries).
        stale_paths = (qpath,) if cluster.resume else (qpath, candidates_dir)
        for stale in stale_paths:
            if cluster.dfs.exists(stale):
                cluster.dfs.delete(stale)
        cluster.dfs.write_records(
            qpath,
            [
                (rid, rect, radius)
                for rid, (rect, radius) in sorted(pending.items())
            ],
            _QUERY_CODEC,
        )

        candidates_path = candidates_dir
        job = MapReduceJob(
            name=f"{self.name}-candidates-{round_no}",
            input_paths=[qpath, "knn/data"],
            output_path=candidates_path,
            mapper=self._candidates_mapper(grid, qpath),
            reducer=self._candidates_reducer(),
            num_reducers=grid.num_cells,
            input_codec={qpath: _QUERY_CODEC, "knn/data": RECT_CODEC},
            shuffle_codec=_KNN_SHUFFLE_CODEC,
        )
        workflow.run(job)

        # Data rectangles are split to every cell they touch, so the
        # same (query, data) pair can be emitted by several reducers:
        # dedupe by data rid while merging.
        merged: dict[int, dict[int, float]] = {rid: {} for rid in pending}
        for line in cluster.dfs.read_dir(candidates_path):
            qid_s, dist_s, did_s = line.split("\t")
            qid, dist, did = int(qid_s), float(dist_s), int(did_s)
            bucket = merged[qid]
            if did not in bucket or dist < bucket[did]:
                bucket[did] = dist

        resolved: dict[int, list[Neighbour]] = {}
        survivors: dict[int, tuple[Rect, float]] = {}
        space_diag = math.hypot(grid.space.l, grid.space.b)
        for rid, (rect, radius) in pending.items():
            top = sorted((d, i) for i, d in merged[rid].items())[: self.k]
            kth = top[-1][0] if len(top) == self.k else math.inf
            # Certain when the k-th neighbour is no farther than the
            # radius every cell was searched out to — or when the search
            # already covered the whole space.
            if kth <= radius or radius >= space_diag:
                resolved[rid] = top
            else:
                grown = min(max(radius * 2.0, kth), space_diag)
                survivors[rid] = (rect, grown)
        return resolved, survivors

    # ------------------------------------------------------------------
    def _candidates_mapper(self, grid: GridPartitioning, qpath: str):
        def mapper(key, record, ctx: MapContext) -> None:
            path, __ = key
            if path == qpath or path.startswith(qpath + "/"):
                rid, rect, radius = record
                for cell in grid.cells_within(rect, radius):
                    ctx.emit(cell.cell_id, ("Q", rid, rect))
                return
            rid, rect = record
            for cell_id, __rect in split(rect, grid):
                ctx.emit(cell_id, ("D", rid, rect))

        return mapper

    def _candidates_reducer(self):
        k = self.k

        def reducer(cell_id: int, values, ctx: ReduceContext) -> None:
            qs: list[tuple[int, Rect]] = []
            ds: list[tuple[int, Rect]] = []
            for tag, rid, rect in values:
                (qs if tag == "Q" else ds).append((rid, rect))
            if not qs or not ds:
                return
            ops = 0
            for qid, qrect in qs:
                local: list[Neighbour] = []
                for did, drect in ds:
                    ops += 1
                    local.append((qrect.min_distance(drect), did))
                local.sort()
                for dist, did in local[:k]:
                    ctx.emit(f"{qid}\t{dist!r}\t{did}")
            ctx.add_compute(ops)

        return reducer
