"""Grid partitioning of space and the project/split/replicate transforms."""

from repro.grid.cell import Cell
from repro.grid.partitioning import GridPartitioning
from repro.grid.transforms import (
    project,
    replicate,
    replicate_f1,
    replicate_f2,
    split,
    transform_relation,
)

__all__ = [
    "Cell",
    "GridPartitioning",
    "project",
    "split",
    "replicate",
    "replicate_f1",
    "replicate_f2",
    "transform_relation",
]
