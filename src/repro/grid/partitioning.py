"""Rectilinear grid partitioning of the 2-D space (Section 4).

The space ``[x0, xn] x [y0, yn]`` is divided into a rectilinear grid of
``rows x cols`` partition-cells; each cell maps to one reducer.  The
paper's definition only requires that cells in a row share a breadth and
cells in a column share a length, so boundaries need not be evenly
spaced: :meth:`GridPartitioning.from_boundaries` builds arbitrary
rectilinear grids and :meth:`GridPartitioning.quantile` fits boundaries
to a data sample so each row/column holds a similar rectangle count
(load balancing on skewed data).  The paper's experiments all use the
uniform 8x8 special case.

Boundaries are stored explicitly, so point ownership, split ranges and
cell extents all read the *same* float values — there is no repeated
``origin + i * width`` arithmetic whose rounding could make them
disagree.

Ownership conventions
---------------------
Two different notions of "a rectangle/point belongs to a cell" coexist
and must not be mixed up:

* **Unique ownership** (Project, the dedup rules): every point is owned
  by exactly one cell.  Intervals are half-open — a cell owns
  ``[x_lo, x_hi)`` horizontally and ``(y_lo, y_hi]`` vertically, so a
  point on a shared boundary belongs to the cell to its *bottom-right*.
  The bottom-right tie-break keeps ownership monotone: a point further
  right (or further down) never maps to a smaller column (or row).  The
  duplicate-avoidance proofs rely on exactly this monotonicity.
* **Closed intersection** (Split, ``f2``): a rectangle is split to every
  cell whose *closed* extent it touches.  Touching is counted so that
  the set of cells a rectangle is split to is always a superset of the
  cells owning any of its points — Split must never lose a potential
  join partner.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import PartitioningError
from repro.geometry.rectangle import Rect
from repro.grid.cell import Cell

__all__ = ["GridPartitioning"]


def _last_le(edges: list[float], v: float, guess: int, last: int) -> int:
    """Largest index in ``[0, last]`` with ``edges[i] <= v``, clamped.

    Equivalent to ``min(max(bisect_right(edges, v) - 1, 0), last)`` but
    started from an O(1) arithmetic ``guess``.  The repair loops walk a
    monotone predicate to its true boundary, so the result is exact for
    *any* starting guess — the guess only bounds how many float
    comparisons the walk needs (at most one or two on uniform grids).
    """
    i = guess
    if i < 0:
        i = 0
    elif i > last:
        i = last
    while i < last and edges[i + 1] <= v:
        i += 1
    while i and edges[i] > v:
        i -= 1
    return i


def _last_lt(edges: list[float], v: float, guess: int, last: int) -> int:
    """Largest index in ``[0, last]`` with ``edges[i] < v``, clamped.

    Strict twin of :func:`_last_le` — the
    ``min(max(bisect_left(edges, v) - 1, 0), last)`` expression.
    """
    i = guess
    if i < 0:
        i = 0
    elif i > last:
        i = last
    while i < last and edges[i + 1] < v:
        i += 1
    while i and edges[i] >= v:
        i -= 1
    return i


def _check_edges(name: str, edges: Sequence[float]) -> list[float]:
    out = [float(e) for e in edges]
    if len(out) < 2:
        raise PartitioningError(f"{name} needs at least 2 boundaries")
    for a, b in zip(out, out[1:]):
        if b <= a:
            raise PartitioningError(
                f"{name} boundaries must be strictly increasing, got {out}"
            )
    return out


class GridPartitioning:
    """A rectilinear ``rows x cols`` grid over a rectangular space.

    The default constructor builds the paper's uniform grid:

    Parameters
    ----------
    space:
        The full 2-D space; all input rectangles must lie within it.
    rows, cols:
        Number of grid rows/columns.  ``rows * cols`` equals the number
        of reducers of the map-reduce jobs built on this partitioning.
    """

    def __init__(self, space: Rect, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise PartitioningError(f"grid must be at least 1x1, got {rows}x{cols}")
        if space.l <= 0 or space.b <= 0:
            raise PartitioningError(f"space must have positive area, got {space!r}")
        width = space.l / cols
        height = space.b / rows
        x_edges = [space.x_min + i * width for i in range(cols)] + [space.x_max]
        y_edges = [space.y_min] + [
            space.y_max - (rows - i) * height for i in range(1, rows)
        ] + [space.y_max]
        self._init_from_edges(x_edges, y_edges)

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def square(cls, space: Rect, num_cells: int) -> "GridPartitioning":
        """A ``sqrt(k) x sqrt(k)`` grid for ``k`` reducers (Section 5.1)."""
        side = math.isqrt(num_cells)
        if side * side != num_cells:
            raise PartitioningError(
                f"square() requires a perfect-square cell count, got {num_cells}"
            )
        return cls(space, rows=side, cols=side)

    @classmethod
    def from_boundaries(
        cls, x_edges: Sequence[float], y_edges: Sequence[float]
    ) -> "GridPartitioning":
        """A rectilinear grid with explicit boundaries.

        ``x_edges`` and ``y_edges`` are strictly-increasing boundary
        coordinates including the space borders; a grid with ``c``
        columns has ``c + 1`` x-boundaries.
        """
        grid = cls.__new__(cls)
        grid._init_from_edges(
            _check_edges("x_edges", x_edges), _check_edges("y_edges", y_edges)
        )
        return grid

    @classmethod
    def quantile(
        cls,
        rects: Iterable[Rect],
        rows: int,
        cols: int,
        space: Rect | None = None,
    ) -> "GridPartitioning":
        """Fit boundaries to a data sample's start-point quantiles.

        Produces a rectilinear grid where each column (row) holds about
        the same number of sample start-points — the standard defence
        against reducer skew on clustered data.  ``space`` defaults to
        the sample's bounding box; pass the declared space when the
        sample may not reach the borders.
        """
        if rows < 1 or cols < 1:
            raise PartitioningError(f"grid must be at least 1x1, got {rows}x{cols}")
        points = [(r.x, r.y) for r in rects]
        if not points:
            raise PartitioningError("quantile() needs a non-empty sample")
        xs = sorted(p[0] for p in points)
        ys = sorted(p[1] for p in points)
        if space is None:
            lo_x, hi_x = xs[0], xs[-1] + 1.0
            lo_y, hi_y = ys[0] - 1.0, ys[-1]
        else:
            lo_x, hi_x = space.x_min, space.x_max
            lo_y, hi_y = space.y_min, space.y_max

        def cuts(sorted_vals: list[float], parts: int, lo: float, hi: float):
            edges = [lo]
            n = len(sorted_vals)
            for i in range(1, parts):
                candidate = sorted_vals[min(n - 1, (i * n) // parts)]
                candidate = min(max(candidate, lo), hi)
                if candidate <= edges[-1]:
                    # Degenerate sample (many equal coordinates): fall
                    # back to an even split of the remaining span.
                    candidate = edges[-1] + (hi - edges[-1]) / (parts - i + 1)
                edges.append(candidate)
            edges.append(hi)
            return edges

        return cls.from_boundaries(
            cuts(xs, cols, lo_x, hi_x), cuts(ys, rows, lo_y, hi_y)
        )

    # ------------------------------------------------------------------
    def _init_from_edges(self, x_edges: list[float], y_edges: list[float]) -> None:
        #: ascending column boundaries, len cols + 1
        self._x_edges = x_edges
        #: ascending row boundaries (bottom to top), len rows + 1
        self._y_edges = y_edges
        self.cols = len(x_edges) - 1
        self.rows = len(y_edges) - 1
        self.space = Rect.from_corners(
            x_edges[0], y_edges[0], x_edges[-1], y_edges[-1]
        )
        # Inverse mean cell widths, hoisted once per grid: every per-rect
        # row/col lookup turns one coordinate into an arithmetic index
        # guess (exact on uniform grids, repaired by _last_le/_last_lt on
        # rectilinear ones) instead of a bisect over the edge lists.
        self._inv_w = self.cols / (x_edges[-1] - x_edges[0])
        self._inv_h = self.rows / (y_edges[-1] - y_edges[0])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Total number of partition-cells (= reducers)."""
        return self.rows * self.cols

    @property
    def is_uniform(self) -> bool:
        """Whether all cells share the same width and height."""
        dx = {round(b - a, 9) for a, b in zip(self._x_edges, self._x_edges[1:])}
        dy = {round(b - a, 9) for a, b in zip(self._y_edges, self._y_edges[1:])}
        return len(dx) == 1 and len(dy) == 1

    def _col_edge(self, i: int) -> float:
        """x coordinate of the boundary left of column ``i``."""
        return self._x_edges[min(max(i, 0), self.cols)]

    def _row_edge(self, j: int) -> float:
        """y coordinate of the boundary above row ``j`` (row 0 = top)."""
        return self._y_edges[self.rows - min(max(j, 0), self.rows)]

    def cell(self, row: int, col: int) -> Cell:
        """The cell at grid index ``(row, col)``; row 0 is the top row."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise PartitioningError(
                f"cell index ({row}, {col}) outside {self.rows}x{self.cols} grid"
            )
        return Cell(
            row=row,
            col=col,
            cell_id=row * self.cols + col,
            x_min=self._x_edges[col],
            y_min=self._y_edges[self.rows - row - 1],
            x_max=self._x_edges[col + 1],
            y_max=self._y_edges[self.rows - row],
        )

    def cell_by_id(self, cell_id: int) -> Cell:
        """The cell with reducer id ``cell_id`` (0-based, row-major)."""
        if not 0 <= cell_id < self.num_cells:
            raise PartitioningError(
                f"cell id {cell_id} outside 0..{self.num_cells - 1}"
            )
        return self.cell(cell_id // self.cols, cell_id % self.cols)

    def cells(self) -> Iterator[Cell]:
        """All cells in id order (row-major, top-left first)."""
        for cid in range(self.num_cells):
            yield self.cell_by_id(cid)

    # ------------------------------------------------------------------
    # Point ownership (unique; used by Project and the dedup rules)
    # ------------------------------------------------------------------
    def col_of_x(self, px: float) -> int:
        """Unique owning column of an x coordinate (half-open, clamped).

        A point exactly on a vertical boundary belongs to the cell on
        its *right*.
        """
        edges = self._x_edges
        return _last_le(
            edges, px, int((px - edges[0]) * self._inv_w), self.cols - 1
        )

    def row_of_y(self, py: float) -> int:
        """Unique owning row of a y coordinate (half-open, clamped).

        A point exactly on a horizontal cell boundary belongs to the
        cell *below* it (mirror of the column rule's tie-break).
        """
        # Largest ascending-edge index with edge < py; rows count from
        # the top, so convert from the bottom-up index.  Clamping the
        # index to [0, rows] before the conversion gives the same result
        # as clamping the converted row (both saturate to row 0 / the
        # bottom row), so _last_lt's built-in clamp is safe here.
        edges = self._y_edges
        rows = self.rows
        p = _last_lt(edges, py, int((py - edges[0]) * self._inv_h), rows)
        return min(max(rows - p - 1, 0), rows - 1)

    def cell_of_point(self, px: float, py: float) -> Cell:
        """The unique cell owning ``(px, py)``."""
        return self.cell(self.row_of_y(py), self.col_of_x(px))

    def cell_id_of_point(self, px: float, py: float) -> int:
        """The id of the cell owning ``(px, py)``.

        Same ownership rule as :meth:`cell_of_point` without building a
        :class:`Cell` — the dedup owner tests and routing mappers call
        this once per candidate/record and only need the reducer id.
        """
        return self.row_of_y(py) * self.cols + self.col_of_x(px)

    def cell_of(self, rect: Rect) -> Cell:
        """``c_u``: the cell owning the rectangle's start-point (Section 4)."""
        return self.cell_of_point(rect.x, rect.y)

    def cell_id_of(self, rect: Rect) -> int:
        """The id of ``c_u`` (start-point owner) without building a Cell."""
        return self.row_of_y(rect.y) * self.cols + self.col_of_x(rect.x)

    # ------------------------------------------------------------------
    # Closed-intersection ranges (used by Split and crossing tests)
    # ------------------------------------------------------------------
    def col_range(self, rect: Rect) -> tuple[int, int]:
        """Inclusive column range of cells whose closed extent meets ``rect``.

        ``lo`` is the smallest column whose right edge reaches
        ``rect.x_min``; ``hi`` the largest whose left edge does not pass
        ``rect.x_max``.  Touching counts (closed cells).
        """
        edges = self._x_edges
        x0 = edges[0]
        inv_w = self._inv_w
        last = self.cols - 1
        lo = _last_lt(edges, rect.x_min, int((rect.x_min - x0) * inv_w), last)
        hi = _last_le(edges, rect.x_max, int((rect.x_max - x0) * inv_w), last)
        return (lo, max(lo, hi))

    def row_range(self, rect: Rect) -> tuple[int, int]:
        """Inclusive row range of cells whose closed extent meets ``rect``."""
        # Work in bottom-up edge indices first, then convert.
        edges = self._y_edges
        y0 = edges[0]
        inv_h = self._inv_h
        last = self.rows - 1
        a_hi = _last_le(edges, rect.y_max, int((rect.y_max - y0) * inv_h), last)
        a_lo = _last_lt(edges, rect.y_min, int((rect.y_min - y0) * inv_h), last)
        lo = last - a_hi
        hi = last - a_lo
        return (lo, max(lo, hi))

    def cells_overlapping(self, rect: Rect) -> list[Cell]:
        """All cells whose closed extent intersects ``rect`` (Split's target set)."""
        c_lo, c_hi = self.col_range(rect)
        r_lo, r_hi = self.row_range(rect)
        return [
            self.cell(row, col)
            for row in range(r_lo, r_hi + 1)
            for col in range(c_lo, c_hi + 1)
        ]

    def crosses_cell_boundary(self, rect: Rect, cell: Cell) -> bool:
        """Whether ``rect`` overlaps a partition-cell other than ``cell``.

        This is the crossing test of condition C2 for *overlap* edges
        (Section 7.4): a rectangle confined to ``cell`` cannot overlap
        any rectangle that does not also touch ``cell``.
        """
        c_lo, c_hi = self.col_range(rect)
        r_lo, r_hi = self.row_range(rect)
        return not (c_lo == c_hi == cell.col and r_lo == r_hi == cell.row)

    def min_gap_to_other_cell(self, rect: Rect, cell: Cell) -> float:
        """Euclidean distance from ``rect`` to the nearest cell != ``cell``.

        This realises condition C2 for *range* edges (Section 8): a
        rectangle starting in ``cell`` can be within distance ``d`` of a
        rectangle starting elsewhere only if some other cell is within
        distance ``d`` of it.  Returns ``inf`` on a 1x1 grid (no other
        cell exists).

        The nearest foreign cell is always reached straight across one
        of the four sides of ``cell`` (corner-adjacent cells are never
        closer), so the answer is the smallest side gap — or 0 if the
        rectangle already leaves the cell.
        """
        if self.num_cells == 1:
            return math.inf
        if self.crosses_cell_boundary(rect, cell):
            return 0.0
        gaps = []
        if cell.col > 0:
            gaps.append(rect.x_min - cell.x_min)
        if cell.col < self.cols - 1:
            gaps.append(cell.x_max - rect.x_max)
        if cell.row > 0:
            gaps.append(cell.y_max - rect.y_max)
        if cell.row < self.rows - 1:
            gaps.append(rect.y_min - cell.y_min)
        return min(gaps) if gaps else math.inf

    # ------------------------------------------------------------------
    # Quadrant and distance-limited cell sets (replication targets)
    # ------------------------------------------------------------------
    def fourth_quadrant(self, cell: Cell) -> Iterator[Cell]:
        """Cells in the 4th quadrant w.r.t. ``cell`` — the ``f1`` target set.

        Includes ``cell`` itself (the paper's ``C4(u)`` includes ``c_u``).
        """
        for row in range(cell.row, self.rows):
            for col in range(cell.col, self.cols):
                yield self.cell(row, col)

    def fourth_quadrant_size(self, cell: Cell) -> int:
        """``|C4(cell)|`` without materialising the cells."""
        return (self.rows - cell.row) * (self.cols - cell.col)

    def cells_within(self, rect: Rect, d: float) -> list[Cell]:
        """All cells within Euclidean distance ``d`` of ``rect``.

        Unlike the quadrant-limited ``f2`` this looks in every
        direction; it is the routing set of the kNN-join extension
        (route a query to every cell its current search radius reaches).
        """
        if d < 0:
            raise PartitioningError(f"distance bound must be non-negative, got {d}")
        probe = rect.enlarge(d)
        c_lo, c_hi = self.col_range(probe)
        r_lo, r_hi = self.row_range(probe)
        out = []
        for row in range(r_lo, r_hi + 1):
            for col in range(c_lo, c_hi + 1):
                cell = self.cell(row, col)
                if cell.distance_to_rect(rect) <= d:
                    out.append(cell)
        return out

    def fourth_quadrant_within(
        self, rect: Rect, d: float, *, metric: str = "euclidean"
    ) -> list[Cell]:
        """The ``f2`` target set: 4th-quadrant cells within distance ``d``.

        Parameters
        ----------
        rect:
            The rectangle being replicated; the quadrant is anchored at
            the cell owning its start-point.
        d:
            Distance bound.  ``d = inf`` degenerates to ``f1``.
        metric:
            ``"euclidean"`` follows the paper's ``f2`` literally;
            ``"chebyshev"`` bounds each axis separately, which is the
            provably-safe variant used by C-Rep-L (see DESIGN.md).
        """
        if d < 0:
            raise PartitioningError(f"distance bound must be non-negative, got {d}")
        if metric not in ("euclidean", "chebyshev"):
            raise PartitioningError(f"unknown metric {metric!r}")
        anchor = self.cell_of(rect)
        out: list[Cell] = []
        # Within the quadrant a cell's x-gap to the rectangle grows with
        # its column and its y-gap with its row, so both loops can stop
        # at the first cell past the bound.
        for row in range(anchor.row, self.rows):
            dy = max(0.0, rect.y_min - self._row_edge(row))
            if dy > d:
                break
            for col in range(anchor.col, self.cols):
                dx = max(0.0, self._col_edge(col) - rect.x_max)
                if metric == "chebyshev":
                    ok = dx <= d  # dy <= d already holds
                else:
                    ok = dx * dx + dy * dy <= d * d
                if not ok:
                    break
                out.append(self.cell(row, col))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "uniform" if self.is_uniform else "rectilinear"
        return (
            f"GridPartitioning({kind} {self.rows}x{self.cols} over "
            f"x[{self.space.x_min}, {self.space.x_max}] "
            f"y[{self.space.y_min}, {self.space.y_max}])"
        )
