"""The *transform operations* of Section 4: Project, Split, Replicate.

Each transform turns one rectangle into intermediate key-value pairs
``(cell_id, rect)``.  The map functions of every join algorithm in this
library are thin wrappers around these three generators, so the number of
pairs they yield *is* the communication cost the paper's experiments
measure.

* ``project`` emits one pair: the cell owning the start-point.
* ``split`` emits one pair per cell the rectangle touches.
* ``replicate`` emits one pair per cell satisfying a predicate; the two
  predicates of the paper are provided as ``replicate_f1`` (4th quadrant)
  and ``replicate_f2`` (4th quadrant within distance ``d``).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Iterator

from repro.geometry.rectangle import Rect
from repro.grid.cell import Cell
from repro.grid.partitioning import GridPartitioning

__all__ = [
    "project",
    "split",
    "replicate",
    "replicate_f1",
    "replicate_f2",
    "transform_relation",
]

#: A replicate condition ``f(cell, rect) -> bool`` (the paper's ``f``).
ReplicateCondition = Callable[[Cell, Rect], bool]


def project(rect: Rect, grid: GridPartitioning) -> Iterator[tuple[int, Rect]]:
    """``Project(u, C) -> (c_u, u)``: route to the start-point's cell."""
    yield (grid.cell_id_of(rect), rect)


def split(rect: Rect, grid: GridPartitioning) -> Iterator[tuple[int, Rect]]:
    """``Split(u, C) -> {(c_i, u)}`` for every cell ``c_i`` touching ``u``.

    Cell ids come straight from the closed-intersection ranges, in the
    same row-major order :meth:`GridPartitioning.cells_overlapping`
    yields — without materialising the Cell objects.
    """
    c_lo, c_hi = grid.col_range(rect)
    r_lo, r_hi = grid.row_range(rect)
    cols = grid.cols
    for row in range(r_lo, r_hi + 1):
        base = row * cols
        for col in range(c_lo, c_hi + 1):
            yield (base + col, rect)


def replicate(
    rect: Rect, grid: GridPartitioning, condition: ReplicateCondition
) -> Iterator[tuple[int, Rect]]:
    """``Replicate(u, C, f) -> {(c_i, u)}`` for every cell with ``f(c_i, u)``.

    This is the fully-general form; prefer :func:`replicate_f1` /
    :func:`replicate_f2`, which exploit monotonicity instead of scanning
    all cells.
    """
    for cell in grid.cells():
        if condition(cell, rect):
            yield (cell.cell_id, rect)


def replicate_f1(rect: Rect, grid: GridPartitioning) -> Iterator[tuple[int, Rect]]:
    """The paper's ``f1``: every cell in the 4th quadrant w.r.t. ``rect``."""
    anchor = grid.cell_of(rect)
    for cell in grid.fourth_quadrant(anchor):
        yield (cell.cell_id, rect)


def replicate_f2(
    rect: Rect,
    grid: GridPartitioning,
    d: float,
    *,
    metric: str = "euclidean",
) -> Iterator[tuple[int, Rect]]:
    """The paper's ``f2``: 4th-quadrant cells within distance ``d`` of ``rect``.

    ``metric="chebyshev"`` gives the per-axis bound used by the safe
    C-Rep-L variant (see DESIGN.md); ``d = inf`` degenerates to ``f1``.
    """
    if math.isinf(d):
        yield from replicate_f1(rect, grid)
        return
    for cell in grid.fourth_quadrant_within(rect, d, metric=metric):
        yield (cell.cell_id, rect)


def transform_relation(
    rects: Iterable[Rect],
    grid: GridPartitioning,
    transform: Callable[[Rect, GridPartitioning], Iterator[tuple[int, Rect]]],
) -> Iterator[tuple[int, Rect]]:
    """Apply one transform to every rectangle of a relation (Section 4).

    ``transform_relation(R, C, split)`` is the paper's ``Split(R, C)``,
    and similarly for ``project`` and the replicate variants (bind extra
    arguments with ``functools.partial``).
    """
    for rect in rects:
        yield from transform(rect, grid)
