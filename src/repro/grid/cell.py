"""Partition-cell value object.

A *partition-cell* is one tile of the rectilinear partitioning of the 2-D
space (Section 4 of the paper).  Each cell corresponds to exactly one
reducer; the paper (and this code base) uses "cell" and "reducer"
interchangeably.

Cells carry their boundary coordinates as four exact fields rather than
a :class:`~repro.geometry.rectangle.Rect`: the ``(x, y, l, b)``
representation stores extents as differences, whose rounding would make
a cell disagree with the grid's boundary arrays by an ulp — enough to
break the exact ownership/crossing semantics the dedup proofs rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.geometry.rectangle import Rect

__all__ = ["Cell"]


@dataclass(frozen=True)
class Cell:
    """One tile of a grid partitioning.

    Attributes
    ----------
    row:
        0-based row index; row 0 is the **top** row (largest y).
    col:
        0-based column index; column 0 is the leftmost.
    cell_id:
        ``row * num_cols + col`` — the reducer id this cell is routed to.
        The paper numbers cells from 1 in figures; this library is
        0-based throughout.
    x_min, y_min, x_max, y_max:
        The cell's closed extent, exactly as in the grid's boundary
        arrays.
    """

    row: int
    col: int
    cell_id: int
    x_min: float
    y_min: float
    x_max: float
    y_max: float

    @property
    def index(self) -> tuple[int, int]:
        """The ``(row, col)`` index pair."""
        return (self.row, self.col)

    @cached_property
    def extent(self) -> Rect:
        """The cell region as a :class:`Rect`.

        Convenience for area/intersection computations; note the
        ``(x, y, l, b)`` form may round the bottom-right corner by an
        ulp — exact comparisons must use the corner fields.
        """
        return Rect.from_corners(self.x_min, self.y_min, self.x_max, self.y_max)

    def distance_to_rect(self, rect: Rect) -> float:
        """Minimum Euclidean distance between the cell and a rectangle.

        This is ``dist(c, r)`` from Equation (2) of the paper and is what
        the replication function ``f2`` and the range-join condition C2
        are defined in terms of.
        """
        dx = max(0.0, self.x_min - rect.x_max, rect.x_min - self.x_max)
        dy = max(0.0, self.y_min - rect.y_max, rect.y_min - self.y_max)
        return math.hypot(dx, dy)

    def touches_rect(self, rect: Rect) -> bool:
        """Closed intersection test against the exact cell extent."""
        return (
            self.x_min <= rect.x_max
            and rect.x_min <= self.x_max
            and self.y_min <= rect.y_max
            and rect.y_min <= self.y_max
        )

    def contains_point(self, px: float, py: float) -> bool:
        """Closed containment test (a point on a shared edge is in both cells).

        For the *unique* owner of a point (Project, dedup rules) use
        :meth:`repro.grid.partitioning.GridPartitioning.cell_of_point`,
        which applies the half-open tie-break.
        """
        return self.x_min <= px <= self.x_max and self.y_min <= py <= self.y_max

    def is_fourth_quadrant_of(self, other: "Cell") -> bool:
        """Whether this cell lies in the 4th quadrant w.r.t. ``other``.

        The 4th quadrant w.r.t. a cell ``c`` is the set of cells at
        column ``>= c.col`` and row ``>= c.row`` (x grows rightwards,
        y shrinks downwards) — the paper's ``C4`` set.
        """
        return self.col >= other.col and self.row >= other.row
