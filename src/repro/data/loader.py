"""Load externally-produced rectangle datasets with located diagnostics.

The join algorithms accept any ``(rid, Rect)`` list, and the CLI can
feed them real files (``--dataset NAME=FILE``).  External files are
exactly where malformed records come from, so this loader turns every
parse failure into a :class:`~repro.errors.DatasetFormatError` naming
the source as ``path:line`` (1-based, the convention of editors and
compilers) and quoting the offending text — a one-line diagnosis
instead of a codec traceback escaping to the user.

Blank lines and ``#`` comment lines are ignored, so hand-edited or
tool-annotated files load as-is.
"""

from __future__ import annotations

from repro.data.io import decode_rect
from repro.errors import DatasetFormatError, ReproError
from repro.geometry.rectangle import Rect

__all__ = ["load_rect_lines", "load_rect_file"]


def load_rect_lines(
    lines, source: str = "<memory>"
) -> list[tuple[int, Rect]]:
    """Parse rectangle records (``rid,x,y,l,b``) from an iterable of lines.

    ``source`` names the origin in diagnostics.  Raises
    :class:`DatasetFormatError` on the first malformed line, as
    ``source:line: malformed rectangle record '...'``.
    """
    rects: list[tuple[int, Rect]] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            rects.append(decode_rect(text))
        except ReproError as exc:
            raise DatasetFormatError(f"{source}:{lineno}: {exc}") from exc
    return rects


def load_rect_file(path: str) -> list[tuple[int, Rect]]:
    """Load one rectangle dataset from a local text file.

    Raises :class:`DatasetFormatError` for an unreadable or empty file
    and for any malformed record (named as ``path:line``).
    """
    try:
        with open(path, encoding="utf-8") as fh:
            rects = load_rect_lines(fh, source=path)
    except OSError as exc:
        raise DatasetFormatError(f"cannot read dataset file {path!r}: {exc}") from exc
    if not rects:
        raise DatasetFormatError(f"dataset file {path!r} holds no records")
    return rects
