"""Record codecs: how rectangles and tuples cross DFS job boundaries.

All durable records are single text lines (the DFS is line-oriented),
and floats are encoded with ``repr`` so every coordinate round-trips
exactly — duplicate avoidance compares start-points for cell ownership,
so lossy encodings would corrupt results.

Formats
-------
* rectangle input record     ``rid,x,y,l,b``
* tagged rectangle record    ``dataset|rid|marked|x,y,l,b``
  (output of Controlled-Replicate's round 1: which dataset the rectangle
  belongs to and whether round 2 must replicate it)
* tuple record               ``slot=rid:x:y:l:b;slot=rid:x:y:l:b;...``
  (2-way Cascade intermediates: partially-joined tuples)
* result record              ``rid<TAB>rid<TAB>...`` in query slot order

Typed record path
-----------------
Since PR 2 the engine can carry these records across job boundaries as
Python objects instead of strings.  A :class:`RecordCodec` pairs each
line format with its typed form; jobs declare input/output codecs and
the DFS keeps the decoded objects next to the encoded lines
(encode-once: a record is serialized exactly once, when its part file
is written, for byte accounting and durability — downstream maps read
the objects back without re-parsing).  The codec registry below maps
stable names to codec instances so job specs and tests can refer to
them symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import DFSError
from repro.geometry.rectangle import Rect

__all__ = [
    "encode_rect",
    "decode_rect",
    "TaggedRect",
    "encode_tagged",
    "decode_tagged",
    "encode_tuple",
    "decode_tuple",
    "encode_result",
    "decode_result",
    "rects_to_lines",
    "lines_to_rects",
    "TupleRecord",
    "RecordCodec",
    "RectCodec",
    "TaggedCodec",
    "TupleCodec",
    "RECT_CODEC",
    "TAGGED_CODEC",
    "TUPLE_CODEC",
    "CODECS",
    "get_codec",
]


def _rect_csv(rect: Rect) -> str:
    """``repr(x),repr(y),repr(l),repr(b)`` — memoized on the rectangle.

    Every line format embeds this exact spelling, so a rectangle that
    crosses several job boundaries (input -> tagged -> shuffle) is
    formatted once and concatenated thereafter.  The cache is only ever
    written with the ``repr`` form — never the decoded input text, whose
    float spelling may differ — so encoded bytes are unchanged.
    """
    s = rect._csv
    if s is None:
        s = f"{rect.x!r},{rect.y!r},{rect.l!r},{rect.b!r}"
        object.__setattr__(rect, "_csv", s)
    return s


def encode_rect(rid: int, rect: Rect) -> str:
    """``rid,x,y,l,b`` — the base relation record."""
    return f"{rid},{_rect_csv(rect)}"


def decode_rect(line: str) -> tuple[int, Rect]:
    """Inverse of :func:`encode_rect`."""
    try:
        rid_s, x, y, l, b = line.split(",")
        return int(rid_s), Rect(float(x), float(y), float(l), float(b))
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed rectangle record {line!r}") from exc


def rects_to_lines(rects) -> list[str]:
    """Encode an iterable of ``(rid, Rect)`` pairs."""
    return [f"{rid},{_rect_csv(rect)}" for rid, rect in rects]


def lines_to_rects(lines) -> list[tuple[int, Rect]]:
    """Decode a sequence of rectangle records.

    Single-pass scalar fast path: one ``split`` per line, constructors
    applied inline — byte-equivalent to ``[decode_rect(l) for l in
    lines]`` (the fuzz test in ``tests/data`` drives both against each
    other), but without the per-line function-call and f-string
    overhead.
    """
    out: list[tuple[int, Rect]] = []
    append = out.append
    for line in lines:
        try:
            rid_s, x, y, l, b = line.split(",")
            append((int(rid_s), Rect(float(x), float(y), float(l), float(b))))
        except (ValueError, TypeError) as exc:
            raise DFSError(f"malformed rectangle record {line!r}") from exc
    return out


# ----------------------------------------------------------------------
# Tagged rectangles (Controlled-Replicate round-1 output)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TaggedRect:
    """A rectangle annotated with its dataset and the replication mark."""

    dataset: str
    rid: int
    rect: Rect
    marked: bool

    # Compact pickling (see Rect): a plain tuple, no per-instance
    # slots-dict — tagged rectangles are the round-2 task-result bulk.
    def __getstate__(self):
        return (self.dataset, self.rid, self.rect, self.marked)

    def __setstate__(self, state) -> None:
        sa = object.__setattr__
        dataset, rid, rect, marked = state
        sa(self, "dataset", dataset)
        sa(self, "rid", rid)
        sa(self, "rect", rect)
        sa(self, "marked", marked)


def encode_tagged(tagged: TaggedRect) -> str:
    """``dataset|rid|marked|x,y,l,b``."""
    if "|" in tagged.dataset or "," in tagged.dataset:
        raise DFSError(f"dataset name {tagged.dataset!r} contains a delimiter")
    return (
        f"{tagged.dataset}|{tagged.rid}|{int(tagged.marked)}|"
        f"{_rect_csv(tagged.rect)}"
    )


def decode_tagged(line: str) -> TaggedRect:
    """Inverse of :func:`encode_tagged`.

    ``maxsplit=3`` folds a stray ``|`` into the coordinate field, where
    the float parse rejects it — the same lines fail as with the
    unbounded split, with the same error.
    """
    try:
        dataset, rid_s, marked_s, coords = line.split("|", 3)
        x, y, l, b = coords.split(",")
        return TaggedRect(
            dataset=dataset,
            rid=int(rid_s),
            rect=Rect(float(x), float(y), float(l), float(b)),
            marked=bool(int(marked_s)),
        )
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed tagged record {line!r}") from exc


# ----------------------------------------------------------------------
# Partially-joined tuples (Cascade intermediates)
# ----------------------------------------------------------------------
def encode_tuple(bindings: dict[str, tuple[int, Rect]]) -> str:
    """``slot=rid:x:y:l:b;...`` with slots in sorted order (deterministic)."""
    parts = []
    for slot in sorted(bindings):
        if any(ch in slot for ch in "=;:|,"):
            raise DFSError(f"slot name {slot!r} contains a delimiter")
        rid, r = bindings[slot]
        parts.append(f"{slot}={rid}:{_rect_csv(r).replace(',', ':')}")
    return ";".join(parts)


def decode_tuple(line: str) -> dict[str, tuple[int, Rect]]:
    """Inverse of :func:`encode_tuple`.

    ``maxsplit=1`` folds a stray ``=`` into the payload, where the colon
    split or float parse rejects it — the same lines fail as with the
    unbounded split, with the same error.
    """
    try:
        bindings: dict[str, tuple[int, Rect]] = {}
        for part in line.split(";"):
            slot, payload = part.split("=", 1)
            rid_s, x, y, l, b = payload.split(":")
            bindings[slot] = (
                int(rid_s),
                Rect(float(x), float(y), float(l), float(b)),
            )
        return bindings
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed tuple record {line!r}") from exc


class TupleRecord:
    """A partially-joined tuple plus its encoded line, paired for life.

    The line is computed exactly once — at construction from fresh
    bindings (a reducer merging a new slot in) or carried over from the
    DFS (a mapper reading an intermediate file) — and reused everywhere
    a byte size or a durable form is needed: shuffle accounting charges
    ``len(line)``, part files store ``line`` verbatim.  This is what
    keeps the typed path's byte counters identical to the string path's
    while never re-encoding or re-parsing a tuple.
    """

    __slots__ = ("bindings", "line")

    def __init__(self, bindings: dict[str, tuple[int, Rect]], line: str | None = None):
        self.bindings = bindings
        self.line = encode_tuple(bindings) if line is None else line

    @classmethod
    def from_line(cls, line: str) -> "TupleRecord":
        """Decode once, keeping the original line for sizing/durability."""
        return cls(decode_tuple(line), line)

    def __getstate__(self):
        return (self.bindings, self.line)

    def __setstate__(self, state):
        self.bindings, self.line = state

    def __eq__(self, other) -> bool:
        return isinstance(other, TupleRecord) and self.line == other.line

    def __hash__(self) -> int:
        return hash(self.line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TupleRecord({self.line!r})"


# ----------------------------------------------------------------------
# Final results
# ----------------------------------------------------------------------
def encode_result(slot_order: tuple[str, ...], bindings: dict[str, int]) -> str:
    """Tab-separated rids in query slot order — the join output record."""
    return "\t".join(str(bindings[slot]) for slot in slot_order)


def decode_result(line: str) -> tuple[int, ...]:
    """Inverse of :func:`encode_result` (rids in query slot order)."""
    try:
        return tuple(int(v) for v in line.split("\t"))
    except ValueError as exc:
        raise DFSError(f"malformed result record {line!r}") from exc


# ----------------------------------------------------------------------
# Record codecs (typed <-> line forms) and the codec registry
# ----------------------------------------------------------------------
class RecordCodec:
    """One line format paired with its typed record form.

    ``encode`` must be the exact inverse of ``decode``: the golden
    equivalence tests run whole joins with records crossing job
    boundaries as objects and again as strings and require byte-for-byte
    identical DFS output.
    """

    #: registry name (stable; job specs and tests refer to codecs by it)
    name: str = "abstract"

    def encode(self, record) -> str:
        raise NotImplementedError

    def decode(self, line: str):
        raise NotImplementedError

    def encode_lines(self, records) -> list[str]:
        """Bulk ``encode`` — one pass over a whole part file.

        Subclasses override with a single-listcomp fast path; the bytes
        must equal ``[self.encode(r) for r in records]`` exactly (the
        part-file writers charge and store these lines verbatim).
        """
        return [self.encode(r) for r in records]

    def decode_lines(self, lines) -> list[Any]:
        """Bulk ``decode`` — the split loader decodes a file in one call."""
        return [self.decode(line) for line in lines]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class RectCodec(RecordCodec):
    """Base relation records: ``(rid, Rect)`` <-> ``rid,x,y,l,b``."""

    name = "rect"

    def encode(self, record) -> str:
        rid, rect = record
        return encode_rect(rid, rect)

    def decode(self, line: str):
        return decode_rect(line)

    def encode_lines(self, records) -> list[str]:
        return [f"{rid},{_rect_csv(rect)}" for rid, rect in records]

    def decode_lines(self, lines) -> list[Any]:
        return lines_to_rects(lines)


class TaggedCodec(RecordCodec):
    """Marked rectangles: :class:`TaggedRect` <-> ``dataset|rid|marked|...``."""

    name = "tagged"

    def encode(self, record) -> str:
        return encode_tagged(record)

    def decode(self, line: str):
        return decode_tagged(line)

    def encode_lines(self, records) -> list[str]:
        out: list[str] = []
        append = out.append
        for t in records:
            dataset = t.dataset
            if "|" in dataset or "," in dataset:
                raise DFSError(f"dataset name {dataset!r} contains a delimiter")
            append(f"{dataset}|{t.rid}|{int(t.marked)}|{_rect_csv(t.rect)}")
        return out


class TupleCodec(RecordCodec):
    """Cascade intermediates: :class:`TupleRecord` <-> its own line.

    Encoding returns the record's carried line (computed at
    construction), so writing a part file never re-serializes.
    """

    name = "tuple"

    def encode(self, record) -> str:
        return record.line

    def decode(self, line: str):
        return TupleRecord.from_line(line)

    def encode_lines(self, records) -> list[str]:
        return [r.line for r in records]


RECT_CODEC = RectCodec()
TAGGED_CODEC = TaggedCodec()
TUPLE_CODEC = TupleCodec()

#: the codec registry: stable name -> shared codec instance
CODECS: dict[str, RecordCodec] = {
    c.name: c for c in (RECT_CODEC, TAGGED_CODEC, TUPLE_CODEC)
}


def get_codec(name: str) -> RecordCodec:
    """Look up a codec by registry name."""
    try:
        return CODECS[name]
    except KeyError:
        raise DFSError(
            f"unknown codec {name!r}; registered: {sorted(CODECS)}"
        ) from None
