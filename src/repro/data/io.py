"""Record codecs: how rectangles and tuples cross DFS job boundaries.

All records are single text lines (the DFS is line-oriented), and floats
are encoded with ``repr`` so every coordinate round-trips exactly —
duplicate avoidance compares start-points for cell ownership, so lossy
encodings would corrupt results.

Formats
-------
* rectangle input record     ``rid,x,y,l,b``
* tagged rectangle record    ``dataset|rid|marked|x,y,l,b``
  (output of Controlled-Replicate's round 1: which dataset the rectangle
  belongs to and whether round 2 must replicate it)
* tuple record               ``slot=rid:x:y:l:b;slot=rid:x:y:l:b;...``
  (2-way Cascade intermediates: partially-joined tuples)
* result record              ``rid<TAB>rid<TAB>...`` in query slot order
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DFSError
from repro.geometry.rectangle import Rect

__all__ = [
    "encode_rect",
    "decode_rect",
    "TaggedRect",
    "encode_tagged",
    "decode_tagged",
    "encode_tuple",
    "decode_tuple",
    "encode_result",
    "decode_result",
    "rects_to_lines",
    "lines_to_rects",
]


def encode_rect(rid: int, rect: Rect) -> str:
    """``rid,x,y,l,b`` — the base relation record."""
    return f"{rid},{rect.x!r},{rect.y!r},{rect.l!r},{rect.b!r}"


def decode_rect(line: str) -> tuple[int, Rect]:
    """Inverse of :func:`encode_rect`."""
    try:
        rid_s, x, y, l, b = line.split(",")
        return int(rid_s), Rect(float(x), float(y), float(l), float(b))
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed rectangle record {line!r}") from exc


def rects_to_lines(rects) -> list[str]:
    """Encode an iterable of ``(rid, Rect)`` pairs."""
    return [encode_rect(rid, rect) for rid, rect in rects]


def lines_to_rects(lines) -> list[tuple[int, Rect]]:
    """Decode a sequence of rectangle records."""
    return [decode_rect(line) for line in lines]


# ----------------------------------------------------------------------
# Tagged rectangles (Controlled-Replicate round-1 output)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TaggedRect:
    """A rectangle annotated with its dataset and the replication mark."""

    dataset: str
    rid: int
    rect: Rect
    marked: bool


def encode_tagged(tagged: TaggedRect) -> str:
    """``dataset|rid|marked|x,y,l,b``."""
    if "|" in tagged.dataset or "," in tagged.dataset:
        raise DFSError(f"dataset name {tagged.dataset!r} contains a delimiter")
    r = tagged.rect
    return (
        f"{tagged.dataset}|{tagged.rid}|{int(tagged.marked)}|"
        f"{r.x!r},{r.y!r},{r.l!r},{r.b!r}"
    )


def decode_tagged(line: str) -> TaggedRect:
    """Inverse of :func:`encode_tagged`."""
    try:
        dataset, rid_s, marked_s, coords = line.split("|")
        x, y, l, b = (float(v) for v in coords.split(","))
        return TaggedRect(
            dataset=dataset,
            rid=int(rid_s),
            rect=Rect(x, y, l, b),
            marked=bool(int(marked_s)),
        )
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed tagged record {line!r}") from exc


# ----------------------------------------------------------------------
# Partially-joined tuples (Cascade intermediates)
# ----------------------------------------------------------------------
def encode_tuple(bindings: dict[str, tuple[int, Rect]]) -> str:
    """``slot=rid:x:y:l:b;...`` with slots in sorted order (deterministic)."""
    parts = []
    for slot in sorted(bindings):
        if any(ch in slot for ch in "=;:|,"):
            raise DFSError(f"slot name {slot!r} contains a delimiter")
        rid, r = bindings[slot]
        parts.append(f"{slot}={rid}:{r.x!r}:{r.y!r}:{r.l!r}:{r.b!r}")
    return ";".join(parts)


def decode_tuple(line: str) -> dict[str, tuple[int, Rect]]:
    """Inverse of :func:`encode_tuple`."""
    try:
        bindings: dict[str, tuple[int, Rect]] = {}
        for part in line.split(";"):
            slot, payload = part.split("=")
            rid_s, x, y, l, b = payload.split(":")
            bindings[slot] = (
                int(rid_s),
                Rect(float(x), float(y), float(l), float(b)),
            )
        return bindings
    except (ValueError, TypeError) as exc:
        raise DFSError(f"malformed tuple record {line!r}") from exc


# ----------------------------------------------------------------------
# Final results
# ----------------------------------------------------------------------
def encode_result(slot_order: tuple[str, ...], bindings: dict[str, int]) -> str:
    """Tab-separated rids in query slot order — the join output record."""
    return "\t".join(str(bindings[slot]) for slot in slot_order)


def decode_result(line: str) -> tuple[int, ...]:
    """Inverse of :func:`encode_result` (rids in query slot order)."""
    try:
        return tuple(int(v) for v in line.split("\t"))
    except ValueError as exc:
        raise DFSError(f"malformed result record {line!r}") from exc
