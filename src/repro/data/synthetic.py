"""The synthetic-workload generator of Section 7.8.2.

The paper's generator takes (a) the number of rectangles ``nI``, (b) the
distributions of the start-point coordinates (``dX``, ``dY``), (c) the
distributions of length and breadth (``dL``, ``dB``), (d) the space
ranges, and (e) the side-length ranges.  All of the paper's synthetic
experiments use uniform distributions; gaussian and clustered variants
are provided for the extension benchmarks.

Rectangles are always fully contained in the declared space: sides are
clipped so a rectangle sampled near the right/bottom border does not
stick out (this mirrors "all rectangles lie within this space" in
Section 4 and keeps grid routing total).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import DataGenerationError
from repro.geometry.rectangle import Rect

__all__ = ["SyntheticSpec", "generate_rects", "generate_relations"]

_DISTRIBUTIONS = ("uniform", "gaussian", "clustered")


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic relation (the paper's script knobs)."""

    n: int
    x_range: tuple[float, float] = (0.0, 100_000.0)
    y_range: tuple[float, float] = (0.0, 100_000.0)
    l_range: tuple[float, float] = (0.0, 100.0)
    b_range: tuple[float, float] = (0.0, 100.0)
    dx: str = "uniform"
    dy: str = "uniform"
    dl: str = "uniform"
    db: str = "uniform"
    #: number of cluster centers when a coordinate uses ``"clustered"``
    clusters: int = 32
    #: cluster spread as a fraction of the coordinate range
    cluster_sigma: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 0:
            raise DataGenerationError(f"n must be >= 0, got {self.n}")
        for name in ("x_range", "y_range", "l_range", "b_range"):
            lo, hi = getattr(self, name)
            if hi < lo:
                raise DataGenerationError(f"{name} is empty: ({lo}, {hi})")
        for name in ("dx", "dy", "dl", "db"):
            if getattr(self, name) not in _DISTRIBUTIONS:
                raise DataGenerationError(
                    f"{name} must be one of {_DISTRIBUTIONS}, got {getattr(self, name)!r}"
                )
        if self.l_range[1] > self.x_range[1] - self.x_range[0]:
            raise DataGenerationError("l_max exceeds the space width")
        if self.b_range[1] > self.y_range[1] - self.y_range[0]:
            raise DataGenerationError("b_max exceeds the space height")

    def with_seed(self, seed: int) -> "SyntheticSpec":
        """The same spec with a different RNG seed (one per relation)."""
        return replace(self, seed=seed)

    @property
    def space(self) -> Rect:
        """The declared space as a rectangle (grid partitioning input)."""
        return Rect.from_corners(
            self.x_range[0], self.y_range[0], self.x_range[1], self.y_range[1]
        )

    @property
    def max_diagonal(self) -> float:
        """Upper bound on any generated diagonal — C-Rep-L's ``d_max``."""
        return float(np.hypot(self.l_range[1], self.b_range[1]))


def _sample(
    rng: np.random.Generator,
    dist: str,
    lo: float,
    hi: float,
    n: int,
    clusters: int,
    sigma_frac: float,
) -> np.ndarray:
    span = hi - lo
    if span == 0:
        return np.full(n, lo)
    if dist == "uniform":
        return rng.uniform(lo, hi, n)
    if dist == "gaussian":
        vals = rng.normal(loc=(lo + hi) / 2.0, scale=span / 6.0, size=n)
        return np.clip(vals, lo, hi)
    # clustered: gaussian bumps around uniformly placed centers
    centers = rng.uniform(lo, hi, clusters)
    which = rng.integers(0, clusters, n)
    vals = rng.normal(loc=centers[which], scale=span * sigma_frac)
    return np.clip(vals, lo, hi)


def generate_rects(spec: SyntheticSpec) -> list[tuple[int, Rect]]:
    """Generate one relation as ``(rid, Rect)`` pairs, rids 0..n-1.

    Deterministic in ``spec.seed``.
    """
    rng = np.random.default_rng(spec.seed)
    xs = _sample(
        rng, spec.dx, *spec.x_range, spec.n, spec.clusters, spec.cluster_sigma
    )
    ys = _sample(
        rng, spec.dy, *spec.y_range, spec.n, spec.clusters, spec.cluster_sigma
    )
    ls = _sample(
        rng, spec.dl, *spec.l_range, spec.n, spec.clusters, spec.cluster_sigma
    )
    bs = _sample(
        rng, spec.db, *spec.b_range, spec.n, spec.clusters, spec.cluster_sigma
    )
    # Containment: keep the start-point, clip the sides to the space.
    ls = np.minimum(ls, spec.x_range[1] - xs)
    # The start-point is the *top*-left vertex: the rectangle hangs down
    # from y, so its breadth is limited by the gap to the space bottom.
    bs = np.minimum(bs, ys - spec.y_range[0])
    return [
        (rid, Rect(float(xs[rid]), float(ys[rid]), float(ls[rid]), float(bs[rid])))
        for rid in range(spec.n)
    ]


def generate_relations(
    base: SyntheticSpec, names: list[str], seed0: int | None = None
) -> dict[str, list[tuple[int, Rect]]]:
    """Generate several same-spec relations with decorrelated seeds.

    This is how the paper's experiments build R1, R2, R3: identical
    parameters, independent draws.
    """
    start = base.seed if seed0 is None else seed0
    return {
        name: generate_rects(base.with_seed(start + i))
        for i, name in enumerate(names)
    }
