"""Data-set level transformations used by the experiments.

* :func:`enlarge_dataset` — Table 4's "enlarging by factor k" applied to
  every rectangle (center-preserving scaling, Section 7.8.6).
* :func:`compress_space` — coordinate down-scaling that keeps rectangle
  sizes: the laptop-scale experiments shrink the space instead of
  inflating counts into the millions, preserving the paper's overlap
  density (see DESIGN.md's substitution table).
* :func:`sample_dataset` — Bernoulli sampling (Tables 7 and 9 retain the
  road data with probability 0.5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataGenerationError
from repro.geometry.ops import bounding_rect
from repro.geometry.rectangle import Rect

__all__ = [
    "enlarge_dataset",
    "compress_space",
    "sample_dataset",
    "dataset_space",
    "max_diagonal",
]


def enlarge_dataset(
    rects: list[tuple[int, Rect]], k: float
) -> list[tuple[int, Rect]]:
    """Enlarge every rectangle by factor ``k`` about its center (§7.8.6)."""
    return [(rid, r.enlarge_by_factor(k)) for rid, r in rects]


def compress_space(
    rects: list[tuple[int, Rect]], factor: float
) -> list[tuple[int, Rect]]:
    """Divide every start-point coordinate by ``factor``, keep sizes.

    Densifies the workload: the same rectangles in a ``factor``-times
    smaller span of space, raising overlap probability the same way the
    paper's million-scale counts do in the full-size space.
    """
    if factor <= 0:
        raise DataGenerationError(f"compression factor must be > 0, got {factor}")
    return [
        (rid, Rect(r.x / factor, r.y / factor, r.l, r.b)) for rid, r in rects
    ]


def sample_dataset(
    rects: list[tuple[int, Rect]], probability: float, seed: int = 0
) -> list[tuple[int, Rect]]:
    """Keep each rectangle independently with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise DataGenerationError(
            f"sampling probability must be in [0, 1], got {probability}"
        )
    rng = np.random.default_rng(seed)
    keep = rng.random(len(rects)) < probability
    return [pair for pair, k in zip(rects, keep) if k]


def dataset_space(
    datasets: dict[str, list[tuple[int, Rect]]], margin: float = 0.0
) -> Rect:
    """The joint bounding space of several datasets (grid input).

    ``margin`` expands the box on every side (useful when rectangles
    were enlarged and may touch the original space boundary).
    """
    all_rects = [r for rects in datasets.values() for __, r in rects]
    if not all_rects:
        raise DataGenerationError("cannot derive space from empty datasets")
    box = bounding_rect(all_rects)
    if margin:
        return Rect.from_corners(
            box.x_min - margin, box.y_min - margin, box.x_max + margin, box.y_max + margin
        )
    return box


def max_diagonal(datasets: dict[str, list[tuple[int, Rect]]]) -> float:
    """The observed ``d_max`` over all datasets (C-Rep-L's bound input)."""
    diag = 0.0
    for rects in datasets.values():
        for __, r in rects:
            if r.diagonal > diag:
                diag = r.diagonal
    return diag
