"""A calibrated stand-in for the Census 2000 TIGER/Line California roads.

The paper builds its real-life data-set from the road layer of the
Census 2000 TIGER/Line shape files, flattened to XY with OpenMap
(Section 7.8.2).  The shape files are not redistributable here, so this
module synthesises a data-set reproducing every aggregate statistic the
paper reports about the real one:

* 2,092,079 road MBBs (scaled down by ``n``),
* x-range [0, 63K], y-range [0, 100K] (|x|/|y| = 0.63),
* average length 18 and breadth 8,
* minimum side 1; maximum length 2285, maximum breadth 1344,
* 97% of rectangles with both sides < 100, 99% with both < 1000.

Side lengths are log-normal (road segments have heavy-tailed extents),
truncated to the reported min/max; the log-normal parameters below are
solved analytically from the reported mean and the 97%/99% percentile
constraints (derivation in DESIGN.md).

Crucially, the *join structure* of the real data is also reproduced:
TIGER road objects are consecutive segments of polylines, so each MBB
overlaps its chain neighbours (shared endpoints) plus occasional
crossing roads — a sparse, chain-like overlap graph.  The generator
therefore grows each road as a direction-persistent random walk whose
step extents are the calibrated log-normal draws; segment MBBs touch
their predecessors by construction.  (A naive blob-cluster placement
would instead create overlap *cliques*, whose self-join triple counts
explode cubically — nothing like the real workload.)  Walk origins mix
uniform background with urban clusters.

``dataset_statistics`` recomputes the published aggregates so tests can
assert the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenerationError
from repro.geometry.rectangle import Rect

__all__ = [
    "CaliforniaSpec",
    "generate_california",
    "dataset_statistics",
    "CALIFORNIA_X_RANGE",
    "CALIFORNIA_Y_RANGE",
    "CALIFORNIA_FULL_SIZE",
]

CALIFORNIA_X_RANGE = (0.0, 63_000.0)
CALIFORNIA_Y_RANGE = (0.0, 100_000.0)
#: number of road MBBs in the paper's full data-set
CALIFORNIA_FULL_SIZE = 2_092_079

# Log-normal parameters solved from mean(l)=18, P(l<100)=0.97 and
# mean(b)=8 with max(b)=1344 near the 1-in-2M quantile (see DESIGN.md).
_L_MU, _L_SIGMA = 1.679, 1.556
_B_MU, _B_SIGMA = 1.310, 1.240
_L_MIN, _L_MAX = 1.0, 2285.0
_B_MIN, _B_MAX = 1.0, 1344.0


@dataclass(frozen=True)
class CaliforniaSpec:
    """Sizing and seeding of a synthetic California road sample.

    ``n`` is the number of road-segment MBBs (the full data-set has
    2.09M); the paper samples it with probability 0.5 for the range
    experiments.
    """

    n: int
    seed: int = 7
    #: number of urban cluster centers for road-origin placement
    clusters: int = 64
    #: fraction of road origins placed on the uniform rural background
    background: float = 0.3
    #: average number of consecutive segments per road polyline
    segments_per_road: float = 25.0
    #: probability that a walk keeps its previous step direction
    direction_persistence: float = 0.9

    def __post_init__(self) -> None:
        if self.n < 0:
            raise DataGenerationError(f"n must be >= 0, got {self.n}")
        if not 0.0 <= self.background <= 1.0:
            raise DataGenerationError(
                f"background fraction must be in [0, 1], got {self.background}"
            )
        if self.clusters < 1:
            raise DataGenerationError(f"clusters must be >= 1, got {self.clusters}")
        if self.segments_per_road < 1:
            raise DataGenerationError(
                f"segments_per_road must be >= 1, got {self.segments_per_road}"
            )
        if not 0.0 <= self.direction_persistence <= 1.0:
            raise DataGenerationError(
                f"direction_persistence must be in [0, 1], "
                f"got {self.direction_persistence}"
            )

    @property
    def space(self) -> Rect:
        """The flattened California bounding space."""
        return Rect.from_corners(
            CALIFORNIA_X_RANGE[0],
            CALIFORNIA_Y_RANGE[0],
            CALIFORNIA_X_RANGE[1],
            CALIFORNIA_Y_RANGE[1],
        )

    @property
    def max_diagonal(self) -> float:
        """Upper bound on road-MBB diagonals — C-Rep-L's ``d_max``."""
        return math.hypot(_L_MAX, _B_MAX)


def generate_california(spec: CaliforniaSpec) -> list[tuple[int, Rect]]:
    """Generate ``spec.n`` road-segment MBBs as ``(rid, Rect)`` pairs.

    Roads are direction-persistent random walks: each step's per-axis
    extents are the calibrated log-normal draws, so the published side
    statistics hold exactly, and consecutive segment MBBs share an
    endpoint, giving the chain-shaped overlap graph of real road data.
    Walks reflect off the space borders.
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.n
    if n == 0:
        return []

    ls = np.clip(rng.lognormal(_L_MU, _L_SIGMA, n), _L_MIN, _L_MAX)
    bs = np.clip(rng.lognormal(_B_MU, _B_SIGMA, n), _B_MIN, _B_MAX)

    x_lo, x_hi = CALIFORNIA_X_RANGE
    y_lo, y_hi = CALIFORNIA_Y_RANGE
    centers_x = rng.uniform(x_lo, x_hi, spec.clusters)
    centers_y = rng.uniform(y_lo, y_hi, spec.clusters)
    spread_x = (x_hi - x_lo) * 0.008
    spread_y = (y_hi - y_lo) * 0.008
    flip_p = 1.0 - spec.direction_persistence

    rects: list[tuple[int, Rect]] = []
    i = 0
    while i < n:
        # --- a new road: origin (urban cluster or rural background) ---
        if rng.random() < spec.background:
            px = float(rng.uniform(x_lo, x_hi))
            py = float(rng.uniform(y_lo, y_hi))
        else:
            c = int(rng.integers(spec.clusters))
            px = float(np.clip(rng.normal(centers_x[c], spread_x), x_lo, x_hi))
            py = float(np.clip(rng.normal(centers_y[c], spread_y), y_lo, y_hi))
        segments = int(rng.geometric(1.0 / spec.segments_per_road))
        sx = 1.0 if rng.random() < 0.5 else -1.0
        sy = 1.0 if rng.random() < 0.5 else -1.0

        # --- grow the polyline, one calibrated step per segment -------
        for __ in range(max(1, segments)):
            if i >= n:
                break
            if rng.random() < flip_p:
                sx = -sx
            if rng.random() < flip_p:
                sy = -sy
            step_x = float(ls[i])
            step_y = float(bs[i])
            # reflect at the space borders (steps never exceed the span)
            if not x_lo <= px + sx * step_x <= x_hi:
                sx = -sx
            if not y_lo <= py + sy * step_y <= y_hi:
                sy = -sy
            nx = px + sx * step_x
            ny = py + sy * step_y
            rects.append(
                (i, Rect(min(px, nx), max(py, ny), step_x, step_y))
            )
            i += 1
            px, py = nx, ny
    return rects


def dataset_statistics(rects: list[tuple[int, Rect]]) -> dict[str, float]:
    """The aggregate statistics the paper reports for the road data."""
    if not rects:
        raise DataGenerationError("statistics of an empty data-set")
    ls = np.array([r.l for __, r in rects])
    bs = np.array([r.b for __, r in rects])
    both_lt_100 = float(np.mean((ls < 100) & (bs < 100)))
    both_lt_1000 = float(np.mean((ls < 1000) & (bs < 1000)))
    return {
        "count": float(len(rects)),
        "mean_l": float(ls.mean()),
        "mean_b": float(bs.mean()),
        "min_l": float(ls.min()),
        "max_l": float(ls.max()),
        "min_b": float(bs.min()),
        "max_b": float(bs.max()),
        "min_area": float((ls * bs).min()),
        "max_area": float((ls * bs).max()),
        "frac_both_lt_100": both_lt_100,
        "frac_both_lt_1000": both_lt_1000,
    }
