"""Workload generators and record codecs."""

from repro.data.california import (
    CALIFORNIA_FULL_SIZE,
    CALIFORNIA_X_RANGE,
    CALIFORNIA_Y_RANGE,
    CaliforniaSpec,
    dataset_statistics,
    generate_california,
)
from repro.data.io import (
    TaggedRect,
    decode_rect,
    decode_result,
    decode_tagged,
    decode_tuple,
    encode_rect,
    encode_result,
    encode_tagged,
    encode_tuple,
    lines_to_rects,
    rects_to_lines,
)
from repro.data.loader import load_rect_file, load_rect_lines
from repro.data.synthetic import SyntheticSpec, generate_rects, generate_relations
from repro.data.transforms import (
    compress_space,
    dataset_space,
    enlarge_dataset,
    max_diagonal,
    sample_dataset,
)

__all__ = [
    "SyntheticSpec",
    "generate_rects",
    "generate_relations",
    "CaliforniaSpec",
    "generate_california",
    "dataset_statistics",
    "CALIFORNIA_FULL_SIZE",
    "CALIFORNIA_X_RANGE",
    "CALIFORNIA_Y_RANGE",
    "TaggedRect",
    "encode_rect",
    "decode_rect",
    "encode_tagged",
    "decode_tagged",
    "encode_tuple",
    "decode_tuple",
    "encode_result",
    "decode_result",
    "rects_to_lines",
    "lines_to_rects",
    "load_rect_file",
    "load_rect_lines",
    "enlarge_dataset",
    "compress_space",
    "sample_dataset",
    "dataset_space",
    "max_diagonal",
]
