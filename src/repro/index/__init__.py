"""Local (in-reducer) spatial indexes: grid buckets, STR R-tree, scan."""

from repro.index.base import Entry, NestedLoopIndex, SpatialIndex
from repro.index.grid_index import GridIndex
from repro.index.rtree import RTree

__all__ = ["Entry", "SpatialIndex", "NestedLoopIndex", "GridIndex", "RTree"]


def make_index(
    kind: str, entries=None, kernel: str = "python", pairs=None, **kwargs
):
    """Index factory used by the join algorithms and ablation benches.

    ``kind`` is one of ``"grid"``, ``"rtree"`` or ``"scan"``.  ``kernel``
    selects the build/probe implementation where one exists (only the
    grid index has a columnar fast path; the others ignore it).  The
    rectangles come in as ``entries`` or as raw ``(rid, rect)`` pairs —
    the grid index consumes pairs directly and materializes Entry
    objects only if a caller asks for them.
    """
    if kind == "grid":
        return GridIndex(entries, kernel=kernel, pairs=pairs, **kwargs)
    if entries is None:
        entries = [Entry(rect=r, payload=rid) for rid, r in pairs]
    if kind == "rtree":
        return RTree(entries, **kwargs)
    if kind == "scan":
        return NestedLoopIndex(entries)
    raise ValueError(f"unknown index kind {kind!r}")
