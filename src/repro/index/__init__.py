"""Local (in-reducer) spatial indexes: grid buckets, STR R-tree, scan."""

from repro.index.base import Entry, NestedLoopIndex, SpatialIndex
from repro.index.grid_index import GridIndex
from repro.index.rtree import RTree

__all__ = ["Entry", "SpatialIndex", "NestedLoopIndex", "GridIndex", "RTree"]


def make_index(kind: str, entries, **kwargs):
    """Index factory used by the join algorithms and ablation benches.

    ``kind`` is one of ``"grid"``, ``"rtree"`` or ``"scan"``.
    """
    if kind == "grid":
        return GridIndex(entries, **kwargs)
    if kind == "rtree":
        return RTree(entries, **kwargs)
    if kind == "scan":
        return NestedLoopIndex(entries)
    raise ValueError(f"unknown index kind {kind!r}")
