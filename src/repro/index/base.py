"""Common interface of the in-reducer spatial indexes.

Reducers of every join algorithm evaluate a *local* multi-way join over
the rectangles routed to them.  The backtracking join probes an index per
relation for candidate partners; indexes return a **Chebyshev** superset
(``chebyshev_distance <= d``) and the join applies the exact predicate —
for overlap (``d = 0``) the Chebyshev test already *is* exact, for range
edges it is the same enlarged-rectangle filter the 2-way range join of
Section 5.3 routes with.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.geometry.rectangle import Rect

__all__ = ["Entry", "SpatialIndex", "NestedLoopIndex"]


@dataclass(frozen=True, slots=True)
class Entry:
    """One indexed rectangle with an opaque payload (record id, flags...)."""

    rect: Rect
    payload: Any


@runtime_checkable
class SpatialIndex(Protocol):
    """Protocol implemented by every local index."""

    def search(self, rect: Rect, d: float = 0.0) -> Iterator[Entry]:
        """Entries within Chebyshev distance ``d`` of ``rect``.

        ``d = 0`` returns exactly the entries whose rectangle intersects
        ``rect``.
        """
        ...

    def __len__(self) -> int: ...


class NestedLoopIndex:
    """The no-index baseline: scan everything (ablation reference)."""

    def __init__(self, entries: Iterable[Entry]) -> None:
        self._entries = list(entries)
        #: entries examined across all searches (compute-cost measure)
        self.probes = 0

    def search(self, rect: Rect, d: float = 0.0) -> Iterator[Entry]:
        query = rect.enlarge(d) if d > 0 else rect
        for entry in self._entries:
            self.probes += 1
            if query.intersects(entry.rect):
                yield entry

    def __len__(self) -> int:
        return len(self._entries)
