"""A uniform-grid bucket index over rectangles.

The workhorse local index: build time is linear, probes touch only the
buckets overlapping the (enlarged) query rectangle, and the uniform and
mildly-clustered workloads of the paper keep buckets balanced.  Entries
spanning several buckets are registered in each; probes deduplicate by
entry identity.

With ``kernel="numpy"`` the bucket assignment is computed columnarly
(one stable argsort instead of a per-entry insertion loop) and the
index additionally exposes :meth:`search_batch` plus columnar bound
arrays (:attr:`batch`) for vectorized callers.  Bucket contents, probe
order and probe counts are identical to the scalar build — the numpy
path only changes how fast the same structure is produced.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import Any

from repro.geometry.rectangle import Rect
from repro.index.base import Entry
from repro.kernels import numpy_or_none
from repro.kernels.batch import RectBatch

__all__ = ["GridIndex"]

#: sentinel for numpy-side lazy attributes not yet materialized
_UNSET = object()


class GridIndex:
    """Bucketed index with ``O(1)`` expected probe cost on uniform data.

    Parameters
    ----------
    entries:
        The rectangles to index (the index is static once built, like
        everything inside a reduce call).
    target_per_bucket:
        Sizing knob: the grid aims for this many entries per bucket
        under a uniform spread.
    """

    def __init__(
        self,
        entries: Iterable[Entry] | None = None,
        target_per_bucket: int = 8,
        kernel: str = "python",
        pairs: list[tuple[Any, Rect]] | None = None,
    ) -> None:
        # The index can be fed ``(rid, rect)`` pairs instead of Entry
        # objects; the Entry list is then materialized lazily, only if a
        # caller actually asks for entries (the columnar probe paths
        # never do).
        if pairs is not None:
            self._ent: list[Entry] | None = None
            self._pairs: list[tuple[Any, Rect]] | None = (
                pairs if isinstance(pairs, list) else list(pairs)
            )
            n = len(self._pairs)
        else:
            self._ent = list(entries)
            self._pairs = None
            n = len(self._ent)
        self._n = n
        #: bucket entries examined across all searches (compute-cost measure)
        self.probes = 0
        #: columnar bound arrays (numpy kernel only; None on the scalar path)
        self.batch: RectBatch | None = None
        self._rid_array: Any = None
        self._np = None
        if n == 0:
            self._nx = self._ny = 1
            self._buckets: dict[tuple[int, int], list[int]] = {}
            self._bounds_list: list[tuple[float, float, float, float]] | None = []
            return
        np = numpy_or_none() if kernel == "numpy" else None
        if np is not None:
            self._build_numpy(np, n, target_per_bucket)
            return
        # Bounds are kept as exact corner floats: round-tripping them
        # through a Rect can shrink the box by an ulp and wrongly fail
        # the early-exit test for boundary-touching queries.  Each
        # entry's extent is extracted once here — probes compare plain
        # floats instead of calling four Rect properties per test.
        self._bounds_list = [
            (e.rect.x, e.rect.x + e.rect.l, e.rect.y - e.rect.b, e.rect.y)
            for e in self._entries
        ]
        self._x_lo = min(b[0] for b in self._bounds_list)
        self._x_hi = max(b[1] for b in self._bounds_list)
        self._y_lo = min(b[2] for b in self._bounds_list)
        self._y_hi = max(b[3] for b in self._bounds_list)
        side = max(1, math.isqrt(max(1, n // max(1, target_per_bucket))))
        self._nx = side
        self._ny = side
        self._bw = max((self._x_hi - self._x_lo) / self._nx, 1e-12)
        self._bh = max((self._y_hi - self._y_lo) / self._ny, 1e-12)
        self._buckets = {}
        setdefault = self._buckets.setdefault
        for idx, (ex_min, ex_max, ey_min, ey_max) in enumerate(self._bounds_list):
            ix_lo = self._clamp_x(ex_min)
            ix_hi = self._clamp_x(ex_max)
            iy_lo = self._clamp_y(ey_min)
            iy_hi = self._clamp_y(ey_max)
            for ix in range(ix_lo, ix_hi + 1):
                for iy in range(iy_lo, iy_hi + 1):
                    setdefault((ix, iy), []).append(idx)

    @property
    def _entries(self) -> list[Entry]:
        ent = self._ent
        if ent is None:
            ent = self._ent = [
                Entry(rect=r, payload=rid) for rid, r in self._pairs
            ]
        return ent

    @property
    def _bounds(self) -> list[tuple[float, float, float, float]]:
        bounds = self._bounds_list
        if bounds is None:
            batch = self.batch
            bounds = self._bounds_list = list(
                zip(
                    batch.x_min.tolist(),
                    batch.x_max.tolist(),
                    batch.y_min.tolist(),
                    batch.y_max.tolist(),
                )
            )
        return bounds

    @property
    def _rid_rects(self) -> list[tuple[Any, Rect]]:
        pairs = self._pairs
        if pairs is None:
            pairs = self._pairs = [(e.payload, e.rect) for e in self._ent]
        return pairs

    def _build_numpy(self, np, n: int, target_per_bucket: int) -> None:
        """Columnar build: same buckets, same order, no per-entry loop.

        A bucket's list is its member entry indices in ascending order —
        exactly what the scalar insertion loop produces, because each
        entry appears at most once per bucket.  The stable argsort over
        the expanded (bucket-key, entry) pairs preserves that order.
        """
        self._np = np
        pairs = self._pairs
        if pairs is not None:
            batch = RectBatch.from_pairs(np, pairs)
        else:
            batch = RectBatch.from_pairs(
                np, ((e.payload, e.rect) for e in self._ent)
            )
        self.batch = batch
        bx_min, bx_max = batch.x_min, batch.x_max
        by_min, by_max = batch.y_min, batch.y_max
        self._bounds_list = None  # materialized on first scalar search
        self._rid_array = _UNSET  # materialized on first rid_array use
        self._x_lo = float(bx_min.min())
        self._x_hi = float(bx_max.max())
        self._y_lo = float(by_min.min())
        self._y_hi = float(by_max.max())
        side = max(1, math.isqrt(max(1, n // max(1, target_per_bucket))))
        self._nx = side
        self._ny = side
        self._bw = max((self._x_hi - self._x_lo) / self._nx, 1e-12)
        self._bh = max((self._y_hi - self._y_lo) / self._ny, 1e-12)
        # int() and astype(int64) both truncate toward zero; the offsets
        # are non-negative so the clamp reproduces _clamp_x/_clamp_y.
        last = side - 1
        ix_lo = np.minimum(np.maximum(((bx_min - self._x_lo) / self._bw).astype(np.int64), 0), last)
        ix_hi = np.minimum(np.maximum(((bx_max - self._x_lo) / self._bw).astype(np.int64), 0), last)
        iy_lo = np.minimum(np.maximum(((by_min - self._y_lo) / self._bh).astype(np.int64), 0), last)
        iy_hi = np.minimum(np.maximum(((by_max - self._y_lo) / self._bh).astype(np.int64), 0), last)
        ny_span = iy_hi - iy_lo + 1
        cnt = (ix_hi - ix_lo + 1) * ny_span
        total = int(cnt.sum())
        buckets: dict[tuple[int, int], list[int]] = {}
        ny = self._ny
        if total == n:
            # No entry spans buckets: group directly.
            keys = ix_lo * ny + iy_lo
            eidx = np.arange(n, dtype=np.int64)
        else:
            eidx = np.repeat(np.arange(n, dtype=np.int64), cnt)
            starts = np.cumsum(cnt) - cnt
            offs = np.arange(total, dtype=np.int64) - np.repeat(starts, cnt)
            nys = np.repeat(ny_span, cnt)
            keys = (np.repeat(ix_lo, cnt) + offs // nys) * ny + (
                np.repeat(iy_lo, cnt) + offs % nys
            )
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        sidx = eidx[order]
        sidx_list = sidx.tolist()
        cut = np.flatnonzero(skeys[1:] != skeys[:-1]) + 1
        bucket_starts = [0, *cut.tolist()]
        bucket_keys = skeys[np.concatenate(([0], cut))].tolist() if total else []
        bucket_starts.append(total)
        # ``_bucket_arrays`` mirrors ``_buckets`` as zero-copy views of
        # the sorted index array, so :meth:`search_batch` never rebuilds
        # an array from a Python list.
        bucket_arrays: dict[tuple[int, int], Any] = {}
        for pos, key in enumerate(bucket_keys):
            s, e = bucket_starts[pos], bucket_starts[pos + 1]
            bkey = (key // ny, key % ny)
            buckets[bkey] = sidx_list[s:e]
            bucket_arrays[bkey] = sidx[s:e]
        self._buckets = buckets
        self._bucket_arrays = bucket_arrays
        self._empty = np.empty(0, dtype=np.int64)
        # CSR twin of ``_buckets``: ``_csr_entries[_csr_offsets[b] :
        # _csr_offsets[b + 1]]`` is bucket ``b``'s member list (b = ix *
        # ny + iy).  ``skeys`` is sorted, so a dense offsets table is one
        # searchsorted — done lazily on the first :meth:`probe_frontier`,
        # since per-cell marking indexes only ever take the per-query
        # probe paths.
        self._csr_keys = skeys
        self._csr_offsets_cache = None
        self._csr_entries = sidx

    @property
    def rid_array(self):
        """int64 payload array (numpy kernel with integer payloads), lazy."""
        arr = self._rid_array
        if arr is _UNSET:
            np = self._np
            try:
                arr = np.array(self.batch.ids, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                arr = None
            self._rid_array = arr
        return arr

    @property
    def _csr_offsets(self):
        offs = self._csr_offsets_cache
        if offs is None:
            np = self._np
            offs = self._csr_offsets_cache = np.searchsorted(
                self._csr_keys,
                np.arange(self._nx * self._ny + 1, dtype=np.int64),
                side="left",
            )
        return offs

    # ------------------------------------------------------------------
    def _clamp_x(self, x: float) -> int:
        i = int((x - self._x_lo) / self._bw)
        return min(max(i, 0), self._nx - 1)

    def _clamp_y(self, y: float) -> int:
        i = int((y - self._y_lo) / self._bh)
        return min(max(i, 0), self._ny - 1)

    # ------------------------------------------------------------------
    def search(self, rect: Rect, d: float = 0.0) -> Iterator[Entry]:
        """Entries within Chebyshev distance ``d`` of ``rect`` (exact)."""
        if not self._n:
            return
        # Same arithmetic as ``rect.enlarge(d)`` (corner moves first,
        # then sides), so boundary-touching queries behave bit-exactly
        # like the Rect-based test this replaces.
        if d > 0:
            qx_min = rect.x - d
            qx_max = qx_min + (rect.l + 2 * d)
            qy_max = rect.y + d
            qy_min = qy_max - (rect.b + 2 * d)
        else:
            qx_min = rect.x
            qx_max = qx_min + rect.l
            qy_max = rect.y
            qy_min = qy_max - rect.b
        if (
            qx_max < self._x_lo
            or qx_min > self._x_hi
            or qy_max < self._y_lo
            or qy_min > self._y_hi
        ):
            return
        ix_lo = self._clamp_x(qx_min)
        ix_hi = self._clamp_x(qx_max)
        iy_lo = self._clamp_y(qy_min)
        iy_hi = self._clamp_y(qy_max)
        buckets = self._buckets
        bounds = self._bounds
        entries = self._entries
        if ix_lo == ix_hi and iy_lo == iy_hi:
            # Single-bucket probe (the common case for small queries):
            # a bucket lists each entry once, so no dedup set is needed.
            for idx in buckets.get((ix_lo, iy_lo), ()):
                self.probes += 1
                ex_min, ex_max, ey_min, ey_max = bounds[idx]
                if (
                    qx_min <= ex_max
                    and ex_min <= qx_max
                    and qy_min <= ey_max
                    and ey_min <= qy_max
                ):
                    yield entries[idx]
            return
        seen: set[int] = set()
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                for idx in buckets.get((ix, iy), ()):
                    self.probes += 1
                    if idx in seen:
                        continue
                    seen.add(idx)
                    ex_min, ex_max, ey_min, ey_max = bounds[idx]
                    if (
                        qx_min <= ex_max
                        and ex_min <= qx_max
                        and qy_min <= ey_max
                        and ey_min <= qy_max
                    ):
                        yield entries[idx]

    def search_batch(self, rect: Rect, d: float = 0.0):
        """Eager, order-preserving equivalent of exhausting :meth:`search`.

        Returns ``(matched, scanned)``: ``matched`` is an int64 array of
        entry indices in the exact order :meth:`search` would yield the
        entries, ``scanned`` the number of bucket slots examined.
        ``probes`` is charged for every scanned slot up front — the same
        total a fully-consumed scalar search accumulates.  Only
        available on an index built with ``kernel="numpy"``.
        """
        if not self._n:
            return (), 0
        if d > 0:
            qx_min = rect.x - d
            qx_max = qx_min + (rect.l + 2 * d)
            qy_max = rect.y + d
            qy_min = qy_max - (rect.b + 2 * d)
        else:
            qx_min = rect.x
            qx_max = qx_min + rect.l
            qy_max = rect.y
            qy_min = qy_max - rect.b
        if (
            qx_max < self._x_lo
            or qx_min > self._x_hi
            or qy_max < self._y_lo
            or qy_min > self._y_hi
        ):
            return self._empty, 0
        return self._search_bounds(qx_min, qx_max, qy_min, qy_max)

    def _search_bounds(self, qx_min, qx_max, qy_min, qy_max):
        """:meth:`search_batch` body for precomputed, in-range bounds."""
        np = self._np
        empty = self._empty
        ix_lo = self._clamp_x(qx_min)
        ix_hi = self._clamp_x(qx_max)
        iy_lo = self._clamp_y(qy_min)
        iy_hi = self._clamp_y(qy_max)
        arrays = self._bucket_arrays
        if ix_lo == ix_hi and iy_lo == iy_hi:
            cand = arrays.get((ix_lo, iy_lo))
            if cand is None:
                return empty, 0
            scanned = len(cand)
            self.probes += scanned
        else:
            parts = [
                b
                for ix in range(ix_lo, ix_hi + 1)
                for iy in range(iy_lo, iy_hi + 1)
                if (b := arrays.get((ix, iy))) is not None
            ]
            if not parts:
                return empty, 0
            cand = parts[0] if len(parts) == 1 else np.concatenate(parts)
            scanned = len(cand)
            self.probes += scanned
            if len(parts) > 1:
                # First-occurrence dedup, preserving scan order
                # (duplicates are scanned — and charged — but yield
                # nothing).
                __, first = np.unique(cand, return_index=True)
                cand = cand[np.sort(first)]
        batch = self.batch
        mask = (
            (qx_min <= batch.x_max[cand])
            & (batch.x_min[cand] <= qx_max)
            & (qy_min <= batch.y_max[cand])
            & (batch.y_min[cand] <= qy_max)
        )
        return cand[mask], scanned

    def probe_batch(self, rect: Rect, d: float = 0.0):
        """Eager probe with scan positions, for *exact* lazy accounting.

        Returns ``(entries, positions, scanned)``: the entries
        :meth:`search` would yield, in yield order; for each, the number
        of bucket slots the generator had scanned when it yielded it,
        minus one (its 0-based flat scan position, duplicates included);
        and the slots a fully-exhausted scan examines.  ``probes`` is
        **not** charged — the caller charges ``positions[j] + 1`` when it
        abandons the scan after candidate ``j``, or ``scanned`` when it
        exhausts it, reproducing the scalar generator's incremental
        accounting to the slot.  Only on a ``kernel="numpy"`` index.
        """
        if not self._n:
            return [], [], 0
        np = self._np
        if d > 0:
            qx_min = rect.x - d
            qx_max = qx_min + (rect.l + 2 * d)
            qy_max = rect.y + d
            qy_min = qy_max - (rect.b + 2 * d)
        else:
            qx_min = rect.x
            qx_max = qx_min + rect.l
            qy_max = rect.y
            qy_min = qy_max - rect.b
        if (
            qx_max < self._x_lo
            or qx_min > self._x_hi
            or qy_max < self._y_lo
            or qy_min > self._y_hi
        ):
            return [], [], 0
        ix_lo = self._clamp_x(qx_min)
        ix_hi = self._clamp_x(qx_max)
        iy_lo = self._clamp_y(qy_min)
        iy_hi = self._clamp_y(qy_max)
        buckets = self._buckets
        plists = [
            b
            for ix in range(ix_lo, ix_hi + 1)
            for iy in range(iy_lo, iy_hi + 1)
            if (b := buckets.get((ix, iy))) is not None
        ]
        if not plists:
            return [], [], 0
        scanned = 0
        for b in plists:
            scanned += len(b)
        if scanned <= 48:
            # Tiny candidate set (the common case at target bucket
            # size): the plain float-compare loop beats array-op
            # dispatch overhead.  Same yields, positions and scan count
            # as the vectorized body below.
            bounds = self._bounds
            pairs = self._rid_rects
            out: list = []
            positions: list[int] = []
            if len(plists) == 1:
                for p, idx in enumerate(plists[0]):
                    ex_min, ex_max, ey_min, ey_max = bounds[idx]
                    if (
                        qx_min <= ex_max
                        and ex_min <= qx_max
                        and qy_min <= ey_max
                        and ey_min <= qy_max
                    ):
                        out.append(pairs[idx])
                        positions.append(p)
            else:
                seen: set[int] = set()
                p = -1
                for b in plists:
                    for idx in b:
                        p += 1
                        if idx in seen:
                            continue
                        seen.add(idx)
                        ex_min, ex_max, ey_min, ey_max = bounds[idx]
                        if (
                            qx_min <= ex_max
                            and ex_min <= qx_max
                            and qy_min <= ey_max
                            and ey_min <= qy_max
                        ):
                            out.append(pairs[idx])
                            positions.append(p)
            return out, positions, scanned
        arrays = self._bucket_arrays
        if ix_lo == ix_hi and iy_lo == iy_hi:
            cand = arrays[(ix_lo, iy_lo)]
            pos = np.arange(scanned, dtype=np.int64)
        else:
            parts = [
                b
                for ix in range(ix_lo, ix_hi + 1)
                for iy in range(iy_lo, iy_hi + 1)
                if (b := arrays.get((ix, iy))) is not None
            ]
            cand = parts[0] if len(parts) == 1 else np.concatenate(parts)
            if len(parts) > 1:
                # A duplicate is yielded at its first occurrence; its
                # scan position is that first flat slot.
                __, first = np.unique(cand, return_index=True)
                pos = np.sort(first)
                cand = cand[pos]
            else:
                pos = np.arange(scanned, dtype=np.int64)
        batch = self.batch
        mask = (
            (qx_min <= batch.x_max[cand])
            & (batch.x_min[cand] <= qx_max)
            & (qy_min <= batch.y_max[cand])
            & (batch.y_min[cand] <= qy_max)
        )
        pairs = self._rid_rects
        return (
            [pairs[i] for i in cand[mask].tolist()],
            pos[mask].tolist(),
            scanned,
        )

    def probe_frontier(self, batch_q: RectBatch, pos, d: float = 0.0):
        """Bulk probe: one query per row ``pos[i]`` of ``batch_q``.

        Returns ``(parents, entries)`` — aligned int64 arrays holding,
        for every candidate that passes the bucket-extent test, the
        querying row's position *within ``pos``* and the entry index.
        Pairs are ordered by query, then by scan order within a query:
        exactly the concatenation of the per-query :meth:`search_batch`
        results, computed as one two-level CSR gather (queries expand to
        their bucket ranges x-major, buckets to their slot slices) plus
        one global first-occurrence dedup.  ``probes`` is charged per
        scanned slot — duplicates included — as the individual searches
        would charge.  Only on a ``kernel="numpy"`` index.
        """
        np = self._np
        x = batch_q.x[pos]
        length = batch_q.length[pos]
        y = batch_q.y[pos]
        breadth = batch_q.breadth[pos]
        if d > 0:
            qx_min = x - d
            qx_max = qx_min + (length + 2 * d)
            qy_max = y + d
            qy_min = qy_max - (breadth + 2 * d)
        else:
            qx_min = x
            qx_max = qx_min + length
            qy_max = y
            qy_min = qy_max - breadth
        m = len(x)
        inb = ~(
            (qx_max < self._x_lo)
            | (qx_min > self._x_hi)
            | (qy_max < self._y_lo)
            | (qy_min > self._y_hi)
        )
        last_x = self._nx - 1
        last_y = self._ny - 1
        ix_lo = np.minimum(np.maximum(((qx_min - self._x_lo) / self._bw).astype(np.int64), 0), last_x)
        ix_hi = np.minimum(np.maximum(((qx_max - self._x_lo) / self._bw).astype(np.int64), 0), last_x)
        iy_lo = np.minimum(np.maximum(((qy_min - self._y_lo) / self._bh).astype(np.int64), 0), last_y)
        iy_hi = np.minimum(np.maximum(((qy_max - self._y_lo) / self._bh).astype(np.int64), 0), last_y)
        ny = self._ny
        offsets = self._csr_offsets
        wy = iy_hi - iy_lo + 1
        nb = np.where(inb, (ix_hi - ix_lo + 1) * wy, 0)
        spanning = bool((nb > 1).any())
        if not spanning:
            # Every query hits at most one bucket: one expansion level.
            bsel = ix_lo * ny + iy_lo
            start = offsets[bsel]
            cnt = np.where(nb > 0, offsets[bsel + 1] - start, 0)
            total = int(cnt.sum())
            self.probes += total
            if not total:
                return self._empty, self._empty
            parent = np.repeat(np.arange(m, dtype=np.int64), cnt)
            base = np.cumsum(cnt) - cnt
            flat = np.arange(total, dtype=np.int64) - base[parent] + start[parent]
            e = self._csr_entries[flat]
        else:
            # Level 1: queries -> buckets, x-major within each query
            # (the scalar scan order).
            nbuckets = int(nb.sum())
            qidx = np.repeat(np.arange(m, dtype=np.int64), nb)
            qbase = np.cumsum(nb) - nb
            o = np.arange(nbuckets, dtype=np.int64) - qbase[qidx]
            wyq = wy[qidx]
            bsel = (ix_lo[qidx] + o // wyq) * ny + (iy_lo[qidx] + o % wyq)
            start = offsets[bsel]
            cnt = offsets[bsel + 1] - start
            # Level 2: buckets -> slots.
            total = int(cnt.sum())
            self.probes += total
            if not total:
                return self._empty, self._empty
            bidx = np.repeat(np.arange(nbuckets, dtype=np.int64), cnt)
            bbase = np.cumsum(cnt) - cnt
            flat = np.arange(total, dtype=np.int64) - bbase[bidx] + start[bidx]
            e = self._csr_entries[flat]
            parent = qidx[bidx]
            # Global first-occurrence dedup per (query, entry): the flat
            # array is query-major in scan order, so the first global
            # occurrence of a key is the first within its query, and
            # sorting the kept positions restores the exact scan order.
            # Single-bucket queries have no duplicates; including them
            # changes nothing.
            keep = np.sort(np.unique(parent * self._n + e, return_index=True)[1])
            parent = parent[keep]
            e = e[keep]
        batch = self.batch
        keep = (
            (qx_min[parent] <= batch.x_max[e])
            & (batch.x_min[e] <= qx_max[parent])
            & (qy_min[parent] <= batch.y_max[e])
            & (batch.y_min[e] <= qy_max[parent])
        )
        return parent[keep], e[keep]

    def entry_at(self, i: int) -> Entry:
        """The entry behind an index returned by :meth:`search_batch`."""
        return self._entries[i]

    def __len__(self) -> int:
        return self._n

    @property
    def probe_cost_hint(self) -> float:
        """Average entries per bucket (diagnostics / ablation reporting)."""
        if not self._buckets:
            return 0.0
        return sum(len(v) for v in self._buckets.values()) / len(self._buckets)
