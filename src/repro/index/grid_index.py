"""A uniform-grid bucket index over rectangles.

The workhorse local index: build time is linear, probes touch only the
buckets overlapping the (enlarged) query rectangle, and the uniform and
mildly-clustered workloads of the paper keep buckets balanced.  Entries
spanning several buckets are registered in each; probes deduplicate by
entry identity.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from repro.geometry.rectangle import Rect
from repro.index.base import Entry

__all__ = ["GridIndex"]


class GridIndex:
    """Bucketed index with ``O(1)`` expected probe cost on uniform data.

    Parameters
    ----------
    entries:
        The rectangles to index (the index is static once built, like
        everything inside a reduce call).
    target_per_bucket:
        Sizing knob: the grid aims for this many entries per bucket
        under a uniform spread.
    """

    def __init__(self, entries: Iterable[Entry], target_per_bucket: int = 8) -> None:
        self._entries = list(entries)
        #: bucket entries examined across all searches (compute-cost measure)
        self.probes = 0
        n = len(self._entries)
        if n == 0:
            self._nx = self._ny = 1
            self._buckets: dict[tuple[int, int], list[int]] = {}
            return
        # Bounds are kept as exact corner floats: round-tripping them
        # through a Rect can shrink the box by an ulp and wrongly fail
        # the early-exit test for boundary-touching queries.
        self._x_lo = min(e.rect.x_min for e in self._entries)
        self._x_hi = max(e.rect.x_max for e in self._entries)
        self._y_lo = min(e.rect.y_min for e in self._entries)
        self._y_hi = max(e.rect.y_max for e in self._entries)
        side = max(1, math.isqrt(max(1, n // max(1, target_per_bucket))))
        self._nx = side
        self._ny = side
        self._bw = max((self._x_hi - self._x_lo) / self._nx, 1e-12)
        self._bh = max((self._y_hi - self._y_lo) / self._ny, 1e-12)
        self._buckets = {}
        for idx, entry in enumerate(self._entries):
            for key in self._bucket_span(entry.rect):
                self._buckets.setdefault(key, []).append(idx)

    # ------------------------------------------------------------------
    def _bucket_span(self, rect: Rect) -> Iterator[tuple[int, int]]:
        """Bucket keys overlapped by a rectangle (clamped to the grid)."""
        ix_lo = self._clamp_x(rect.x_min)
        ix_hi = self._clamp_x(rect.x_max)
        iy_lo = self._clamp_y(rect.y_min)
        iy_hi = self._clamp_y(rect.y_max)
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                yield (ix, iy)

    def _clamp_x(self, x: float) -> int:
        i = int((x - self._x_lo) / self._bw)
        return min(max(i, 0), self._nx - 1)

    def _clamp_y(self, y: float) -> int:
        i = int((y - self._y_lo) / self._bh)
        return min(max(i, 0), self._ny - 1)

    # ------------------------------------------------------------------
    def search(self, rect: Rect, d: float = 0.0) -> Iterator[Entry]:
        """Entries within Chebyshev distance ``d`` of ``rect`` (exact)."""
        if not self._entries:
            return
        query = rect.enlarge(d) if d > 0 else rect
        if (
            query.x_max < self._x_lo
            or query.x_min > self._x_hi
            or query.y_max < self._y_lo
            or query.y_min > self._y_hi
        ):
            return
        seen: set[int] = set()
        for key in self._bucket_span(query):
            for idx in self._buckets.get(key, ()):
                self.probes += 1
                if idx in seen:
                    continue
                seen.add(idx)
                entry = self._entries[idx]
                if query.intersects(entry.rect):
                    yield entry

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def probe_cost_hint(self) -> float:
        """Average entries per bucket (diagnostics / ablation reporting)."""
        if not self._buckets:
            return 0.0
        return sum(len(v) for v in self._buckets.values()) / len(self._buckets)
