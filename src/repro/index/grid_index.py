"""A uniform-grid bucket index over rectangles.

The workhorse local index: build time is linear, probes touch only the
buckets overlapping the (enlarged) query rectangle, and the uniform and
mildly-clustered workloads of the paper keep buckets balanced.  Entries
spanning several buckets are registered in each; probes deduplicate by
entry identity.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from repro.geometry.rectangle import Rect
from repro.index.base import Entry

__all__ = ["GridIndex"]


class GridIndex:
    """Bucketed index with ``O(1)`` expected probe cost on uniform data.

    Parameters
    ----------
    entries:
        The rectangles to index (the index is static once built, like
        everything inside a reduce call).
    target_per_bucket:
        Sizing knob: the grid aims for this many entries per bucket
        under a uniform spread.
    """

    def __init__(self, entries: Iterable[Entry], target_per_bucket: int = 8) -> None:
        self._entries = list(entries)
        #: bucket entries examined across all searches (compute-cost measure)
        self.probes = 0
        n = len(self._entries)
        if n == 0:
            self._nx = self._ny = 1
            self._buckets: dict[tuple[int, int], list[int]] = {}
            self._bounds: list[tuple[float, float, float, float]] = []
            return
        # Bounds are kept as exact corner floats: round-tripping them
        # through a Rect can shrink the box by an ulp and wrongly fail
        # the early-exit test for boundary-touching queries.  Each
        # entry's extent is extracted once here — probes compare plain
        # floats instead of calling four Rect properties per test.
        self._bounds = [
            (e.rect.x, e.rect.x + e.rect.l, e.rect.y - e.rect.b, e.rect.y)
            for e in self._entries
        ]
        self._x_lo = min(b[0] for b in self._bounds)
        self._x_hi = max(b[1] for b in self._bounds)
        self._y_lo = min(b[2] for b in self._bounds)
        self._y_hi = max(b[3] for b in self._bounds)
        side = max(1, math.isqrt(max(1, n // max(1, target_per_bucket))))
        self._nx = side
        self._ny = side
        self._bw = max((self._x_hi - self._x_lo) / self._nx, 1e-12)
        self._bh = max((self._y_hi - self._y_lo) / self._ny, 1e-12)
        self._buckets = {}
        setdefault = self._buckets.setdefault
        for idx, (ex_min, ex_max, ey_min, ey_max) in enumerate(self._bounds):
            ix_lo = self._clamp_x(ex_min)
            ix_hi = self._clamp_x(ex_max)
            iy_lo = self._clamp_y(ey_min)
            iy_hi = self._clamp_y(ey_max)
            for ix in range(ix_lo, ix_hi + 1):
                for iy in range(iy_lo, iy_hi + 1):
                    setdefault((ix, iy), []).append(idx)

    # ------------------------------------------------------------------
    def _clamp_x(self, x: float) -> int:
        i = int((x - self._x_lo) / self._bw)
        return min(max(i, 0), self._nx - 1)

    def _clamp_y(self, y: float) -> int:
        i = int((y - self._y_lo) / self._bh)
        return min(max(i, 0), self._ny - 1)

    # ------------------------------------------------------------------
    def search(self, rect: Rect, d: float = 0.0) -> Iterator[Entry]:
        """Entries within Chebyshev distance ``d`` of ``rect`` (exact)."""
        if not self._entries:
            return
        # Same arithmetic as ``rect.enlarge(d)`` (corner moves first,
        # then sides), so boundary-touching queries behave bit-exactly
        # like the Rect-based test this replaces.
        if d > 0:
            qx_min = rect.x - d
            qx_max = qx_min + (rect.l + 2 * d)
            qy_max = rect.y + d
            qy_min = qy_max - (rect.b + 2 * d)
        else:
            qx_min = rect.x
            qx_max = qx_min + rect.l
            qy_max = rect.y
            qy_min = qy_max - rect.b
        if (
            qx_max < self._x_lo
            or qx_min > self._x_hi
            or qy_max < self._y_lo
            or qy_min > self._y_hi
        ):
            return
        ix_lo = self._clamp_x(qx_min)
        ix_hi = self._clamp_x(qx_max)
        iy_lo = self._clamp_y(qy_min)
        iy_hi = self._clamp_y(qy_max)
        buckets = self._buckets
        bounds = self._bounds
        entries = self._entries
        if ix_lo == ix_hi and iy_lo == iy_hi:
            # Single-bucket probe (the common case for small queries):
            # a bucket lists each entry once, so no dedup set is needed.
            for idx in buckets.get((ix_lo, iy_lo), ()):
                self.probes += 1
                ex_min, ex_max, ey_min, ey_max = bounds[idx]
                if (
                    qx_min <= ex_max
                    and ex_min <= qx_max
                    and qy_min <= ey_max
                    and ey_min <= qy_max
                ):
                    yield entries[idx]
            return
        seen: set[int] = set()
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                for idx in buckets.get((ix, iy), ()):
                    self.probes += 1
                    if idx in seen:
                        continue
                    seen.add(idx)
                    ex_min, ex_max, ey_min, ey_max = bounds[idx]
                    if (
                        qx_min <= ex_max
                        and ex_min <= qx_max
                        and qy_min <= ey_max
                        and ey_min <= qy_max
                    ):
                        yield entries[idx]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def probe_cost_hint(self) -> float:
        """Average entries per bucket (diagnostics / ablation reporting)."""
        if not self._buckets:
            return 0.0
        return sum(len(v) for v in self._buckets.values()) / len(self._buckets)
