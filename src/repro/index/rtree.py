"""A bulk-loaded (Sort-Tile-Recursive) R-tree.

The classical spatial-join index: R-trees underpin most of the
single-node spatial-join literature the paper builds on (Brinkhoff et
al.).  This implementation is query-only and STR bulk-loaded — reducers
build it once over their input and probe it during the backtracking join.
It exists alongside :class:`~repro.index.grid_index.GridIndex` so the
local-index ablation benchmark can compare the two.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.geometry.ops import bounding_rect
from repro.geometry.rectangle import Rect
from repro.index.base import Entry

__all__ = ["RTree"]


@dataclass(slots=True)
class _Node:
    mbr: Rect
    children: list["_Node"] | None  # None for leaves
    entries: list[Entry] | None  # None for internal nodes


class RTree:
    """STR-packed R-tree with configurable fan-out."""

    def __init__(self, entries: Iterable[Entry], fanout: int = 16) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self._fanout = fanout
        items = list(entries)
        self._size = len(items)
        #: nodes and entries examined across all searches
        self.probes = 0
        self._root = self._bulk_load(items) if items else None

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _bulk_load(self, items: list[Entry]) -> _Node:
        leaves = self._pack_leaves(items)
        level: list[_Node] = leaves
        while len(level) > 1:
            level = self._pack_internal(level)
        return level[0]

    def _pack_leaves(self, items: list[Entry]) -> list[_Node]:
        """Sort-Tile-Recursive packing of entries into leaf nodes."""
        m = self._fanout
        num_leaves = math.ceil(len(items) / m)
        num_slices = math.ceil(math.sqrt(num_leaves))
        by_x = sorted(items, key=lambda e: e.rect.center[0])
        slice_size = math.ceil(len(items) / num_slices)
        leaves: list[_Node] = []
        for s in range(0, len(by_x), slice_size):
            chunk = sorted(
                by_x[s : s + slice_size], key=lambda e: e.rect.center[1]
            )
            for t in range(0, len(chunk), m):
                group = chunk[t : t + m]
                leaves.append(
                    _Node(
                        mbr=bounding_rect(e.rect for e in group),
                        children=None,
                        entries=group,
                    )
                )
        return leaves

    def _pack_internal(self, nodes: list[_Node]) -> list[_Node]:
        """Pack one level of nodes into parents, STR on node MBR centers."""
        m = self._fanout
        num_parents = math.ceil(len(nodes) / m)
        num_slices = math.ceil(math.sqrt(num_parents))
        by_x = sorted(nodes, key=lambda n: n.mbr.center[0])
        slice_size = math.ceil(len(nodes) / num_slices)
        parents: list[_Node] = []
        for s in range(0, len(by_x), slice_size):
            chunk = sorted(by_x[s : s + slice_size], key=lambda n: n.mbr.center[1])
            for t in range(0, len(chunk), m):
                group = chunk[t : t + m]
                parents.append(
                    _Node(
                        mbr=bounding_rect(n.mbr for n in group),
                        children=group,
                        entries=None,
                    )
                )
        return parents

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, rect: Rect, d: float = 0.0) -> Iterator[Entry]:
        """Entries within Chebyshev distance ``d`` of ``rect`` (exact)."""
        if self._root is None:
            return
        query = rect.enlarge(d) if d > 0 else rect
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.probes += 1
            if not query.intersects(node.mbr):
                continue
            if node.entries is not None:
                for entry in node.entries:
                    self.probes += 1
                    if query.intersects(entry.rect):
                        yield entry
            else:
                assert node.children is not None
                stack.extend(node.children)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (1 = a single leaf); diagnostics for tests."""
        h = 0
        node = self._root
        while node is not None:
            h += 1
            node = node.children[0] if node.children else None
        return h
