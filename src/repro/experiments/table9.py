"""Table 9 — hybrid query Q4s on California road data (Section 9.1).

Paper setting: Q4s = R Ov R and R Ra(d) R over a 1-million-road sample
(probability-0.5 sample of the full data-set), sweeping d from 10 to 40:
road triples (rd1, rd2, rd3) with rd1 overlapping rd2 and rd2 within
distance d of rd3.

Reproduction scaling: 6k calibrated synthetic roads at original
coordinates, d sweep verbatim.

Expected shape: times grow with d; C-Rep-L consistently out-performs
C-Rep with a widening after-replication gap.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import california_self
from repro.query.predicates import Overlap, Range
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

PAPER_MINUTES = {
    "c-rep": [28, 39, 51, 63],
    "c-rep-l": [26, 30, 41, 48],
}
PAPER_MARKED_M = {
    "c-rep": [0.08, 0.11, 0.14, 0.18],
    "c-rep-l": [0.08, 0.11, 0.14, 0.18],
}
PAPER_AFTER_REP_M = {
    "c-rep": [5.0, 5.9, 6.7, 7.5],
    "c-rep-l": [3.6, 3.8, 3.9, 4.1],
}

D_VALUES = [10.0, 20.0, 30.0, 40.0]
N = 6_000
PAPER_N = 1e6
COMPRESS = 1.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    seed: int = 7,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 9 at the given workload scale."""
    entries = []
    n_scaled = max(500, int(N * scale))
    compress = COMPRESS
    for d in D_VALUES:
        slots = [f"roads#{i}" for i in (1, 2, 3)]
        query = Query.chain(
            slots,
            [Overlap(), Range(d)],
            datasets={s: "roads" for s in slots},
        )
        workload = california_self(
            n_scaled, compress=compress, paper_n=PAPER_N, seed=seed
        )
        entries.append((f"d={d:.0f}", query, workload, ["c-rep", "c-rep-l"]))
    return execute_sweep(
        table="Table 9",
        title="Query Q4s, California road data",
        parameters=(
            f"nI={n_scaled} roads (paper 1m sample), compressed {compress:.1f}x, "
            f"scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
