"""Table 5 — query Q3 (range chain), varying the data-set size (Section 8.1).

Paper setting: Q3 = R1 Ra(d) R2 and R2 Ra(d) R3 with d = 100 over three
uniform relations of nI = 1..5 million, sides U(0, 100), space 100K².
Range predicates are far less selective than overlap, so everything is
heavier: Cascade exceeds six hours at 5m, and C-Rep-L's limited
replication (about 30% of C-Rep's communicated rectangles) wins big.

Reproduction scaling: nI = 4k..20k in a 35K x 35K space, d = 100
verbatim: the d-enlarged join window (300 x 300 per pair) then spans the
same fraction of a partition-cell as in the paper, which is what drives
replication volume.

Expected shape: Cascade worst and degrading fastest; C-Rep-L clearly
below C-Rep with an after-replication ratio around 1/3.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import synthetic_chain
from repro.query.predicates import Range
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

PAPER_MINUTES = {
    "cascade": [11, 56, 147, 263, None],  # None = aborted ">06:00"
    "c-rep": [10, 27, 72, 103, 157],
    "c-rep-l": [6, 12, 23, 39, 63],
}
PAPER_MARKED_M = {
    "c-rep": [0.36, 0.61, 0.96, 1.3, 1.7],
    "c-rep-l": [0.36, 0.61, 0.96, 1.3, 1.7],
}
PAPER_AFTER_REP_M = {
    "c-rep": [9.1, 16.5, 26.2, 41.6, 58.4],
    "c-rep-l": [3.0, 6.1, 9.7, 12.8, 15.8],
}

ROWS = [(4_000, 1e6), (8_000, 2e6), (12_000, 3e6), (16_000, 4e6), (20_000, 5e6)]
D = 100.0
SPACE_SIDE = 35_000.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    seed: int = 31,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 5 at the given workload scale."""
    query = Query.chain(["R1", "R2", "R3"], Range(D))
    entries = []
    side = SPACE_SIDE * scale**0.5
    for i, (n, paper_n) in enumerate(ROWS):
        n_scaled = max(200, int(n * scale))
        workload = synthetic_chain(n_scaled, side, paper_n=paper_n, seed=seed + i)
        entries.append(
            (
                f"nI={n_scaled} (paper {paper_n:.0e})",
                query,
                workload,
                ["cascade", "c-rep", "c-rep-l"],
            )
        )
    return execute_sweep(
        table="Table 5",
        title="Query Q3, varying the dataset size",
        parameters=(
            f"d={D:.0f}, space {side:.0f}x{side:.0f}, sides (0,100), scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
