"""Table 7 — query Q3s on California road data (Section 8.1).

Paper setting: the range self-chain Q3s = R Ra(d) R and R Ra(d) R (road
triples within distance d of each other) over a 1-million-road sample
(the full data-set sampled with probability 0.5), sweeping d from 5 to
20.  Cascade is an order of magnitude slower; C-Rep-L is slightly ahead
of C-Rep because the tiny road MBBs keep replication volumes low.

Reproduction scaling: 6k calibrated synthetic roads at original
coordinates (the same chain-density argument as Table 4), d sweep
verbatim.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import california_self
from repro.query.predicates import Range
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

PAPER_MINUTES = {
    "cascade": [76, 122, 172, 246],
    "c-rep": [14, 21, 36, 46],
    "c-rep-l": [11, 16, 23, 31],
}
PAPER_MARKED_M = {
    "c-rep": [0.04, 0.07, 0.09, 0.10],
    # The paper's Table 7 C-Rep-L marked column repeats Table 5's values
    # (0.36, 0.61, ...); marked counts are by construction identical
    # between C-Rep and C-Rep-L, so we treat that as a typesetting slip.
    "c-rep-l": [0.04, 0.07, 0.09, 0.10],
}
PAPER_AFTER_REP_M = {
    "c-rep": [4.1, 4.9, 5.4, 5.9],
    "c-rep-l": [3.1, 3.2, 3.2, 3.3],
}

D_VALUES = [5.0, 10.0, 15.0, 20.0]
N = 6_000
PAPER_N = 1e6
COMPRESS = 1.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    seed: int = 7,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 7 at the given workload scale."""
    entries = []
    n_scaled = max(500, int(N * scale))
    compress = COMPRESS
    for d in D_VALUES:
        query = Query.self_chain("roads", 3, Range(d))
        workload = california_self(
            n_scaled, compress=compress, paper_n=PAPER_N, seed=seed
        )
        entries.append(
            (f"d={d:.0f}", query, workload, ["cascade", "c-rep", "c-rep-l"])
        )
    return execute_sweep(
        table="Table 7",
        title="Query Q3s, California road data",
        parameters=(
            f"nI={n_scaled} roads (paper 1m sample), compressed {compress:.1f}x, "
            f"scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
