"""Shared experiment harness: run algorithms, collect the paper's metrics.

Each ``tableN`` module defines one experiment mirroring a table of the
paper's evaluation: a workload builder, a swept parameter, and the
algorithm line-up of that table.  This module provides the machinery:
staging, per-algorithm execution on a fresh simulated cluster, metric
extraction (Section 7.8.3's *time taken*, *rectangles replicated* and
*rectangles after replication*), cross-algorithm output verification and
plain-text rendering in the paper's table style.

Scaling: the paper joins millions of rectangles on a 16-core cluster;
the reproduction defaults to thousands on one process.  Workloads are
constructed to preserve the paper's *join selectivity* (expected join
partners per rectangle) so relative behaviour — who wins, how the gap
grows along the sweep — carries over; every table module documents its
scaling rule.  ``scale`` multiplies workload sizes for quick smoke runs
(benchmarks use ``scale < 1``).
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.data.transforms import dataset_space, max_diagonal
from repro.errors import ExperimentError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.base import Datasets, JoinResult
from repro.joins.registry import make_algorithm
from repro.mapreduce.cost import CostModel
from repro.mapreduce.engine import Cluster
from repro.obs.dashboard import render_workflow_dashboard
from repro.obs.skew import workflow_skew
from repro.obs.trace import NullRecorder
from repro.query.query import Query

__all__ = [
    "AlgoMetrics",
    "ExperimentRow",
    "ExperimentResult",
    "run_algorithms",
    "format_hms",
    "derive_grid",
]

#: the paper's reducer count: an 8x8 grid, 64 reduce processes
DEFAULT_GRID_CELLS = 64


@dataclass(frozen=True)
class AlgoMetrics:
    """One algorithm's measurements for one experiment row."""

    simulated_seconds: float
    shuffled_records: int
    rectangles_marked: int
    rectangles_after_replication: int
    output_tuples: int
    wall_seconds: float
    #: resolved compute kernel the run executed with ("numpy"/"python")
    kernel: str = "python"
    #: max/mean reduce input records of the heaviest reduce job in the
    #: chain (1.0 = perfectly even; 0.0 when nothing reduced)
    reduce_skew: float = 0.0
    #: measured wall clock per engine stage, summed over the job chain
    phase_wall_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentRow:
    """One swept-parameter point: label + per-algorithm metrics."""

    label: str
    metrics: dict[str, AlgoMetrics] = field(default_factory=dict)
    #: True when every algorithm produced the identical tuple set
    consistent: bool = True
    output_tuples: int = 0


@dataclass
class ExperimentResult:
    """A full table: swept rows for a fixed query and workload family."""

    table: str
    title: str
    query: str
    parameters: str
    rows: list[ExperimentRow] = field(default_factory=list)

    @property
    def algorithms(self) -> list[str]:
        seen: dict[str, None] = {}
        for row in self.rows:
            for name in row.metrics:
                seen.setdefault(name, None)
        return list(seen)

    def column(self, algorithm: str, metric: str) -> list[float]:
        """One metric across the sweep (missing rows skipped)."""
        out = []
        for row in self.rows:
            m = row.metrics.get(algorithm)
            if m is not None:
                out.append(getattr(m, metric))
        return out

    def format(self) -> str:
        """Render in the paper's table layout (times + replication counts)."""
        algos = self.algorithms
        header = [self.rows[0].label.split("=")[0] if self.rows else "param"]
        header += [f"time {a}" for a in algos]
        header += [f"#rep {a}" for a in algos if self._replicates(a)]
        lines = [
            f"{self.table}: {self.title}",
            f"  query: {self.query}",
            f"  parameters: {self.parameters}",
            "",
        ]
        widths = [max(len(h), 12) for h in header]
        lines.append("  " + " | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  " + "-+-".join("-" * w for w in widths))
        for row in self.rows:
            cells = [row.label.split("=", 1)[-1]]
            for a in algos:
                m = row.metrics.get(a)
                cells.append(format_hms(m.simulated_seconds) if m else "-")
            for a in algos:
                if not self._replicates(a):
                    continue
                m = row.metrics.get(a)
                if m is None:
                    cells.append("-")
                else:
                    cells.append(
                        f"{m.rectangles_marked} ({m.rectangles_after_replication})"
                    )
            lines.append(
                "  " + " | ".join(c.ljust(w) for c, w in zip(cells, widths))
            )
            if not row.consistent:
                lines.append("  !! algorithms disagreed on this row")
        return "\n".join(lines)

    def _replicates(self, algorithm: str) -> bool:
        return any(
            row.metrics.get(algorithm)
            and row.metrics[algorithm].rectangles_after_replication > 0
            for row in self.rows
        )


def format_hms(seconds: float) -> str:
    """``hh:mm:ss`` rendering of simulated time (the paper prints hh:mm)."""
    s = int(round(seconds))
    return f"{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}"


def derive_grid(
    datasets: Datasets, num_cells: int = DEFAULT_GRID_CELLS, margin: float = 0.0
) -> GridPartitioning:
    """An ``sqrt(k) x sqrt(k)`` grid over the datasets' joint space."""
    space = dataset_space(datasets, margin=margin)
    # Guard against degenerate spaces (all rects on a line).
    if space.l <= 0 or space.b <= 0:
        space = Rect.from_corners(
            space.x_min - 1.0, space.y_min - 1.0, space.x_max + 1.0, space.y_max + 1.0
        )
    return GridPartitioning.square(space, num_cells)


def execute_sweep(
    *,
    table: str,
    title: str,
    parameters: str,
    entries: Sequence[tuple[str, Query, "object", Sequence[str]]],
    grid_cells: int = DEFAULT_GRID_CELLS,
    verify: bool = True,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder: NullRecorder | None = None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Run one table: a sequence of (label, query, workload, algorithms).

    Each row runs on its own grid (derived from its data, as the
    paper re-partitions per data-set) and a cost model scaled to the
    workload's paper-equivalent size.  ``executor``/``num_workers``/
    ``kernel`` pick the cluster's task back-end and compute kernel
    (results are identical for all).  ``recorder`` traces every row into
    one timeline, ``ledger``/``profiler`` journal and profile every
    row's clusters (see :mod:`repro.obs.ledger` /
    :mod:`repro.obs.profile`), and ``verbose`` prints the per-row skew
    dashboards as the sweep runs.
    """
    result = ExperimentResult(
        table=table,
        title=title,
        query=str(entries[0][1]) if entries else "",
        parameters=parameters,
    )
    for label, query, workload, algorithms in entries:
        grid = derive_grid(workload.datasets, grid_cells)
        if verbose:
            print(f"### {table} row {label}")
        metrics, consistent, output_tuples = run_algorithms(
            query,
            workload.datasets,
            grid,
            algorithms,
            d_max=workload.d_max,
            cost_model=CostModel.scaled(workload.paper_scale),
            verify=verify,
            executor=executor,
            num_workers=num_workers,
            kernel=kernel,
            recorder=recorder,
            verbose=verbose,
            ledger=ledger,
            profiler=profiler,
        )
        result.rows.append(
            ExperimentRow(
                label=label,
                metrics=metrics,
                consistent=consistent,
                output_tuples=output_tuples,
            )
        )
    return result


def _phase_wall_totals(job_results) -> dict[str, float]:
    """Sum each job's wall-clock phase decomposition across a chain."""
    totals: dict[str, float] = {}
    for result in job_results:
        for phase, seconds in result.phases.as_dict().items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return totals


def run_algorithms(
    query: Query,
    datasets: Datasets,
    grid: GridPartitioning,
    algorithms: Sequence[str],
    *,
    d_max: float | Mapping[str, float] | None = None,
    cost_model: CostModel | None = None,
    verify: bool = True,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder: NullRecorder | None = None,
    verbose: bool = False,
    sink: dict[str, JoinResult] | None = None,
    dfs=None,
    retry=None,
    fault_plan=None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    memory_budget: int | None = None,
    replication: int | None = None,
    ledger=None,
    profiler=None,
) -> tuple[dict[str, AlgoMetrics], bool, int]:
    """Run each named algorithm on a fresh cluster over the same workload.

    Returns ``(metrics by algorithm, outputs agree, output tuple count)``.
    ``d_max`` defaults to the observed maximum diagonal (what a C-Rep-L
    deployment would precompute while loading the data).
    ``executor``/``num_workers`` select the cluster's task back-end and
    ``kernel`` its compute kernel (``"auto"``/``"numpy"``/``"python"``);
    the kernel each run actually resolved to is recorded on its
    :class:`AlgoMetrics`.
    ``recorder`` (a live :class:`~repro.obs.trace.TraceRecorder`) traces
    every algorithm's jobs into one timeline; ``ledger`` (a live
    :class:`~repro.obs.ledger.RunLedger`) journals every algorithm's
    clusters into one event stream and ``profiler`` (a
    :class:`~repro.obs.profile.TaskProfiler`) merges their per-task
    cProfile stats; ``verbose`` prints the per-job skew dashboard after
    each algorithm; ``sink`` receives each algorithm's full
    :class:`~repro.joins.base.JoinResult` keyed by name (for metrics
    export).

    The fault-tolerance knobs pass straight to the cluster: ``retry`` (a
    :class:`~repro.mapreduce.faults.RetryPolicy`, whose
    ``blacklist_after``/``heartbeat_interval_s`` fields also engage the
    named-worker failure domains), ``fault_plan`` (including
    ``fail-worker``/``join-worker`` specs — worker loss mid-join is
    absorbed with byte-identical part files), ``checkpoint_dir``,
    ``resume`` and ``memory_budget`` (per-map-task
    shuffle-buffer bound in bytes — spills change telemetry only, never
    output); ``replication`` engages the durable-storage plane
    (block-level checksums, replica placement, locality-aware map
    scheduling — again telemetry-only for canonical results); ``dfs``
    substitutes a shared
    backend (e.g. a :class:`~repro.mapreduce.localfs.LocalFSDFS` so a
    later process can resume from its durable outputs) for the default
    fresh in-memory DFS per algorithm.
    """
    if not algorithms:
        raise ExperimentError("no algorithms requested")
    if d_max is None:
        d_max = max_diagonal(datasets)
    metrics: dict[str, AlgoMetrics] = {}
    reference: set[tuple[int, ...]] | None = None
    consistent = True
    output_tuples = 0
    for name in algorithms:
        algorithm = make_algorithm(name, query=query, d_max=d_max)
        cluster_kwargs = {} if dfs is None else {"dfs": dfs}
        if retry is not None:
            cluster_kwargs["retry"] = retry
        if ledger is not None:
            cluster_kwargs["ledger"] = ledger
        if profiler is not None:
            cluster_kwargs["profiler"] = profiler
        cluster = Cluster(
            cost_model=cost_model or CostModel(),
            executor=executor,
            num_workers=num_workers,
            kernel=kernel,
            recorder=recorder if recorder is not None else NullRecorder(),
            fault_plan=fault_plan,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            memory_budget=memory_budget,
            replication=replication,
            **cluster_kwargs,
        )
        if recorder is not None and recorder.enabled:
            recorder.instant(
                f"algorithm:{name}", cat="experiment", track="workflow"
            )
        started = time.perf_counter()
        result: JoinResult = algorithm.run(query, datasets, grid, cluster)
        wall = time.perf_counter() - started
        job_results = result.workflow.job_results
        metrics[name] = AlgoMetrics(
            simulated_seconds=result.stats.simulated_seconds,
            shuffled_records=result.stats.shuffled_records,
            rectangles_marked=result.stats.rectangles_marked,
            rectangles_after_replication=result.stats.rectangles_after_replication,
            output_tuples=len(result.tuples),
            wall_seconds=wall,
            kernel=cluster.resolved_kernel,
            reduce_skew=workflow_skew(job_results),
            phase_wall_seconds=_phase_wall_totals(job_results),
        )
        if sink is not None:
            sink[name] = result
        if verbose:
            print(render_workflow_dashboard(job_results, title=name))
        output_tuples = len(result.tuples)
        if verify:
            if reference is None:
                reference = result.tuples
            elif result.tuples != reference:
                consistent = False
    return metrics, consistent, output_tuples
