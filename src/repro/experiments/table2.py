"""Table 2 — query Q2, varying the data-set size (Section 7.8.4).

Paper setting: Q2 = R1 Ov R2 and R2 Ov R3 over three uniform synthetic
relations of nI = 1..5 million rectangles, sides U(0, 100), space
100K x 100K, comparing 2-way Cascade, All-Replicate, C-Rep and C-Rep-L.

Reproduction scaling: nI = 4k..20k inside a 10K x 10K space — the same
per-rectangle join selectivity trajectory (about 0.4..2 expected overlap
partners per rectangle across the sweep) as the paper's 1m..5m in 100K².
All-Replicate is run only on the first ``all_rep_rows`` rows, mirroring
the paper's abandonment of All-Rep beyond 2m (">03:00").

Expected shape: All-Rep communicates orders of magnitude more rectangles
than C-Rep and its time explodes first; Cascade degrades super-linearly
as the intermediate pair count grows; C-Rep-L ≈ C-Rep here because small
rectangles make the replication limit barely bind.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import synthetic_chain
from repro.query.predicates import Overlap
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

#: the paper's reported end-to-end times, minutes per row (None = aborted ">03:00")
PAPER_MINUTES = {
    "cascade": [5, 10, 13, 24, 35],
    "all-rep": [32, 82, None, None, None],
    "c-rep": [5, 7, 8, 11, 15],
    "c-rep-l": [5, 7, 9, 11, 13],
}
#: rectangles marked for replication, millions
PAPER_MARKED_M = {
    "all-rep": [3, 6, 9, 12, 15],
    "c-rep": [0.05, 0.1, 0.19, 0.23, 0.31],
    "c-rep-l": [0.05, 0.1, 0.19, 0.23, 0.31],
}
#: rectangles communicated after replication, millions
PAPER_AFTER_REP_M = {
    "all-rep": [64.3, 128.7, None, None, None],
    "c-rep": [3.9, 7.6, 12.5, 15.6, 19.8],
    "c-rep-l": [3.0, 6.1, 9.2, 12.2, 17.9],
}

#: (reproduced nI, paper nI) per row
ROWS = [(4_000, 1e6), (8_000, 2e6), (12_000, 3e6), (16_000, 4e6), (20_000, 5e6)]
#: chosen so the expected overlap partners per rectangle run ~1..5 across
#: the sweep, the paper's trajectory at 1m..5m in a 100K x 100K space
SPACE_SIDE = 6_300.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    all_rep_rows: int = 2,
    seed: int = 11,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 2 at the given workload scale."""
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    entries = []
    side = SPACE_SIDE * scale**0.5  # keep per-row selectivity under scaling
    for i, (n, paper_n) in enumerate(ROWS):
        n_scaled = max(200, int(n * scale))
        workload = synthetic_chain(
            n_scaled, side, paper_n=paper_n, seed=seed + i
        )
        algorithms = ["cascade", "c-rep", "c-rep-l"]
        if i < all_rep_rows:
            algorithms.insert(1, "all-rep")
        entries.append((f"nI={n_scaled} (paper {paper_n:.0e})", query, workload, algorithms))
    return execute_sweep(
        table="Table 2",
        title="Query Q2, varying the dataset size",
        parameters=(
            f"dX,dY,dL,dB=Uniform, space {side:.0f}x{side:.0f}, sides (0,100), "
            f"scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
