"""Table 3 — query Q2, varying the rectangle dimensions (Section 7.8.5).

Paper setting: Q2 over three relations of nI = 2 million, sweeping
l_max = b_max from 100 to 500 in a 100K x 100K space.  Larger rectangles
overlap more, the output grows sharply, and 2-way Cascade's intermediate
results blow up (00:10 -> 05:14) while C-Rep grows gently and C-Rep-L —
whose replication radius tracks the diagonal bound — wins visibly.

Reproduction scaling: nI = 6k in a 24K x 24K space; the l_max sweep is
kept verbatim, putting the top row at the same "a few partners per
rectangle" selectivity the paper reaches.

Expected shape: Cascade's time grows much faster than C-Rep's along the
sweep; the gap between C-Rep and C-Rep-L (rectangles after replication)
widens with l_max because the limit trims more of the 4th quadrant.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import synthetic_chain
from repro.query.predicates import Overlap
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

PAPER_MINUTES = {
    "cascade": [10, 13, 30, 143, 314],
    "c-rep": [7, 9, 16, 28, 59],
    "c-rep-l": [7, 8, 13, 20, 33],
}
PAPER_MARKED_M = {
    "c-rep": [0.11, 0.25, 0.39, 0.53, 0.67],
    "c-rep-l": [0.11, 0.25, 0.39, 0.53, 0.67],
}
PAPER_AFTER_REP_M = {
    "c-rep": [7.6, 10.1, 12.0, 14.5, 16.8],
    "c-rep-l": [6.1, 6.5, 6.8, 7.1, 7.3],
}

L_MAX_VALUES = [100.0, 200.0, 300.0, 400.0, 500.0]
N = 6_000
PAPER_N = 2e6
#: chosen so the l_max sweep spans ~0.2 .. ~4.6 expected overlap
#: partners per rectangle — the same two-orders-of-magnitude output
#: growth that makes the paper's Cascade explode (00:10 -> 05:14)
SPACE_SIDE = 18_000.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    seed: int = 23,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 3 at the given workload scale."""
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    entries = []
    side = SPACE_SIDE * scale**0.5
    n_scaled = max(200, int(N * scale))
    for i, l_max in enumerate(L_MAX_VALUES):
        workload = synthetic_chain(
            n_scaled,
            side,
            l_max=l_max,
            b_max=l_max,
            paper_n=PAPER_N,
            seed=seed + i,
        )
        entries.append(
            (
                f"lmax={l_max:.0f}",
                query,
                workload,
                ["cascade", "c-rep", "c-rep-l"],
            )
        )
    return execute_sweep(
        table="Table 3",
        title="Query Q2, varying rectangle dimensions",
        parameters=(
            f"nI={n_scaled} (paper 2m), space {side:.0f}x{side:.0f}, "
            f"sides (0,lmax), scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
