"""Workload builders shared by the table experiments.

Scaling discipline (documented per table in DESIGN.md): the paper joins
relations of 1-5 million rectangles inside a 100K x 100K space; the
reproduction keeps the rectangle-size distributions and shrinks counts
and space *together* so the expected number of join partners per
rectangle — the quantity that drives intermediate-result and output
sizes — tracks the paper's.  Each builder also reports the workload's
``paper_scale``: how many paper rectangles one reproduced rectangle
stands for, which feeds :meth:`CostModel.scaled` so simulated times land
in the paper's hh:mm regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.california import CaliforniaSpec, generate_california
from repro.data.synthetic import SyntheticSpec, generate_rects, generate_relations
from repro.data.transforms import compress_space, enlarge_dataset, max_diagonal
from repro.joins.base import Datasets

__all__ = [
    "Workload",
    "synthetic_chain",
    "dense_corner_chain",
    "california_self",
]


@dataclass
class Workload:
    """Datasets plus the bounds the algorithms and cost model need."""

    datasets: Datasets
    d_max: float
    #: paper rectangles represented by one reproduced rectangle
    paper_scale: float


def synthetic_chain(
    n: int,
    space_side: float,
    *,
    names: tuple[str, ...] = ("R1", "R2", "R3"),
    l_max: float = 100.0,
    b_max: float = 100.0,
    paper_n: float = 1_000_000.0,
    seed: int = 11,
) -> Workload:
    """Independent uniform relations, the paper's synthetic setting.

    ``space_side`` is chosen per experiment so the sweep's join
    selectivity matches the paper's regime (see the table modules).
    """
    spec = SyntheticSpec(
        n=n,
        x_range=(0.0, space_side),
        y_range=(0.0, space_side),
        l_range=(0.0, l_max),
        b_range=(0.0, b_max),
        seed=seed,
    )
    datasets = generate_relations(spec, list(names))
    return Workload(
        datasets=datasets,
        d_max=spec.max_diagonal,
        paper_scale=paper_n / n,
    )


def dense_corner_chain(
    n: int,
    space_side: float,
    *,
    names: tuple[str, ...] = ("R1", "R2", "R3"),
    dense_fraction: float = 0.5,
    corner_fraction: float = 0.1,
    l_max: float = 100.0,
    b_max: float = 100.0,
    paper_n: float = 1_000_000.0,
    seed: int = 11,
) -> Workload:
    """Uniform relations plus a dense corner blob — the skew workload.

    Each relation is ``n`` uniform rectangles over the whole space plus
    ``n * dense_fraction`` rectangles confined to the top-left corner
    square of side ``space_side * corner_fraction``.  The grid cells
    covering that corner receive a disproportionate share of the input —
    and under Controlled-Replicate the replicated rectangles concentrate
    there too (the §6 4th-quadrant condition), so one reducer's input
    dwarfs the average.  This is the deliberate-skew counterpart of
    :func:`synthetic_chain`, used by the reducer-skew telemetry tests
    and the memory-budget stress runs.
    """
    base = SyntheticSpec(
        n=n,
        x_range=(0.0, space_side),
        y_range=(0.0, space_side),
        l_range=(0.0, l_max),
        b_range=(0.0, b_max),
        seed=seed,
    )
    corner = space_side * corner_fraction
    dense_n = max(1, int(n * dense_fraction))
    # Start-points are top-left vertices (breadth hangs down from y), so
    # the high-y corner keeps blob rectangles inside the space unclipped.
    blob = SyntheticSpec(
        n=dense_n,
        x_range=(0.0, corner),
        y_range=(space_side - corner, space_side),
        l_range=(0.0, min(l_max, corner)),
        b_range=(0.0, min(b_max, corner)),
        seed=seed + 1000,
    )
    datasets: Datasets = {}
    for i, name in enumerate(names):
        uniform = generate_rects(base.with_seed(base.seed + i))
        dense = generate_rects(blob.with_seed(blob.seed + i))
        # Blob rids continue after the uniform ones so every rid in the
        # relation stays unique.
        datasets[name] = uniform + [(n + rid, rect) for rid, rect in dense]
    return Workload(
        datasets=datasets,
        d_max=max(base.max_diagonal, blob.max_diagonal),
        paper_scale=paper_n / (n + dense_n),
    )


def california_self(
    n: int,
    *,
    dataset_name: str = "roads",
    compress: float = 1.0,
    enlarge: float | None = None,
    paper_n: float = 2_092_079.0,
    seed: int = 7,
) -> Workload:
    """A synthetic-California road sample, optionally enlarged (Table 4).

    The chain-structured generator already reproduces the real data's
    overlap degree (about two neighbours per segment plus occasional
    crossings) at any sample size, so the default keeps the original
    coordinates; ``compress`` optionally shrinks the coordinate span
    (sides unchanged) to densify cross-road overlaps, and ``enlarge``
    applies the factor-k scaling of Section 7.8.6, exactly as the paper
    derives its Table 4 variants from the base data.
    """
    rects = generate_california(CaliforniaSpec(n=n, seed=seed))
    rects = compress_space(rects, compress)
    if enlarge is not None and enlarge != 1.0:
        rects = enlarge_dataset(rects, enlarge)
    datasets = {dataset_name: rects}
    return Workload(
        datasets=datasets,
        d_max=max_diagonal(datasets),
        paper_scale=paper_n / n,
    )
