"""Table 4 — query Q2s on California road data (Section 7.8.6).

Paper setting: the star self-join Q2s = R Ov R and R Ov R (road triples
(rd1, rd2, rd3) with rd1 overlapping rd2 and rd2 overlapping rd3) over
the 2.09M-road California data-set, each row enlarging every MBB by
factor k ∈ {1.0, 1.25, 1.5, 1.75, 2.0} to raise the overlap density.

Reproduction scaling: a 6k-road calibrated synthetic California sample
at original coordinates — the chain-structured generator matches the
full data-set's per-segment overlap degree at any sample size (see
``repro.data.california`` and DESIGN.md); the enlargement sweep is
verbatim.

Expected shape: all times grow with k; Cascade degrades fastest;
C-Rep-L's improvement over C-Rep is small because road MBBs are tiny
relative to cells, so the limit trims little — but the trim grows
with k.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import california_self
from repro.query.predicates import Overlap
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

PAPER_MINUTES = {
    "cascade": [19, 27, 43, 64, 95],
    "c-rep": [15, 24, 25, 46, 57],
    "c-rep-l": [14, 21, 24, 42, 53],
}
PAPER_MARKED_M = {
    "c-rep": [0.08, 0.12, 0.18, 0.23, 0.32],
    "c-rep-l": [0.08, 0.12, 0.18, 0.23, 0.32],
}
PAPER_AFTER_REP_M = {
    "c-rep": [0.8, 0.9, 1.0, 1.14, 1.33],
    "c-rep-l": [0.64, 0.65, 0.66, 0.67, 0.68],
}

ENLARGE_FACTORS = [1.0, 1.25, 1.5, 1.75, 2.0]
N = 6_000
COMPRESS = 1.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    seed: int = 7,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 4 at the given workload scale."""
    query = Query.self_chain("roads", 3, Overlap())
    entries = []
    n_scaled = max(500, int(N * scale))
    compress = COMPRESS
    for k in ENLARGE_FACTORS:
        workload = california_self(
            n_scaled, compress=compress, enlarge=k, seed=seed
        )
        entries.append(
            (f"k={k}", query, workload, ["cascade", "c-rep", "c-rep-l"])
        )
    return execute_sweep(
        table="Table 4",
        title="Query Q2s, California road data",
        parameters=(
            f"nI={n_scaled} roads (paper 2.09m), space compressed {compress:.1f}x, "
            f"scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
