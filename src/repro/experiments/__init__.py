"""Experiment runners, one per table of the paper's evaluation."""

from repro.experiments import (
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.common import (
    AlgoMetrics,
    ExperimentResult,
    ExperimentRow,
    execute_sweep,
    format_hms,
    run_algorithms,
)

#: table name -> runner module
TABLES = {
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
}

__all__ = [
    "TABLES",
    "AlgoMetrics",
    "ExperimentRow",
    "ExperimentResult",
    "execute_sweep",
    "run_algorithms",
    "format_hms",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
]
