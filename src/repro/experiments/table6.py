"""Table 6 — query Q3, varying the distance parameter d (Section 8.1).

Paper setting: Q3 over three 1-million-rectangle relations, sweeping
d from 100 to 500.  The replication radius of C-Rep-L grows with d much
slower than C-Rep's blanket 4th-quadrant replication, so the gap widens
sharply: the paper's after-replication count grows 9.1m -> 24.8m for
C-Rep but only 3.0m -> 3.5m for C-Rep-L.

Reproduction scaling: nI = 6k in a 60K x 60K space, d sweep verbatim.

Expected shape: both times grow with d; C-Rep-L's after-replication
count grows far slower than C-Rep's and its time advantage widens.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import synthetic_chain
from repro.query.predicates import Range
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

PAPER_MINUTES = {
    "c-rep": [10, 18, 42, 76, 100],
    "c-rep-l": [6, 8, 15, 25, 41],
}
PAPER_MARKED_M = {
    "c-rep": [0.36, 0.53, 0.72, 0.94, 1.06],
    "c-rep-l": [0.36, 0.53, 0.72, 0.94, 1.06],
}
PAPER_AFTER_REP_M = {
    "c-rep": [9.1, 13.1, 16.5, 20.3, 24.8],
    "c-rep-l": [3.0, 3.2, 3.3, 3.4, 3.5],
}

D_VALUES = [100.0, 200.0, 300.0, 400.0, 500.0]
N = 6_000
PAPER_N = 1e6
SPACE_SIDE = 60_000.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    seed: int = 43,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 6 at the given workload scale."""
    entries = []
    side = SPACE_SIDE * scale**0.5
    n_scaled = max(200, int(N * scale))
    for i, d in enumerate(D_VALUES):
        query = Query.chain(["R1", "R2", "R3"], Range(d))
        workload = synthetic_chain(n_scaled, side, paper_n=PAPER_N, seed=seed + i)
        entries.append((f"d={d:.0f}", query, workload, ["c-rep", "c-rep-l"]))
    return execute_sweep(
        table="Table 6",
        title="Query Q3, varying distance parameter d",
        parameters=(
            f"nI={n_scaled} (paper 1m), space {side:.0f}x{side:.0f}, "
            f"sides (0,100), scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
