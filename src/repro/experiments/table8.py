"""Table 8 — hybrid query Q4, varying the data-set size (Section 9.1).

Paper setting: Q4 = R1 Ov R2 and R2 Ra(200) R3 — one overlap edge, one
range edge — over three uniform relations of nI = 1..5 million.  The
hybrid condition C2 applies the crossing test on the overlap edge and
the near-cell test on the range edge; C-Rep-L derives per-relation
replication bounds from the mixed-weight join graph.

Reproduction scaling: nI = 4k..20k in a 40K x 40K space, d = 200
verbatim.

Expected shape: C-Rep-L consistently below C-Rep, with the
after-replication ratio around 1/3, growing along the sweep.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, execute_sweep
from repro.experiments.workloads import synthetic_chain
from repro.query.predicates import Overlap, Range
from repro.query.query import Query

__all__ = ["run", "PAPER_MINUTES", "PAPER_MARKED_M", "PAPER_AFTER_REP_M"]

PAPER_MINUTES = {
    "c-rep": [7, 16, 39, 68, 117],
    "c-rep-l": [6, 12, 23, 44, 76],
}
PAPER_MARKED_M = {
    "c-rep": [0.27, 0.57, 0.94, 1.22, 1.54],
    "c-rep-l": [0.27, 0.57, 0.94, 1.22, 1.54],
}
PAPER_AFTER_REP_M = {
    "c-rep": [8.0, 15.8, 26.5, 33.0, 46.3],
    "c-rep-l": [3.1, 6.3, 9.6, 12.7, 16.1],
}

ROWS = [(4_000, 1e6), (8_000, 2e6), (12_000, 3e6), (16_000, 4e6), (20_000, 5e6)]
D = 200.0
SPACE_SIDE = 40_000.0


def run(
    scale: float = 1.0,
    verify: bool = True,
    seed: int = 53,
    executor: str = "serial",
    num_workers: int | None = None,
    kernel: str = "auto",
    recorder=None,
    verbose: bool = False,
    ledger=None,
    profiler=None,
) -> ExperimentResult:
    """Regenerate Table 8 at the given workload scale."""
    query = Query.chain(["R1", "R2", "R3"], [Overlap(), Range(D)])
    entries = []
    side = SPACE_SIDE * scale**0.5
    for i, (n, paper_n) in enumerate(ROWS):
        n_scaled = max(200, int(n * scale))
        workload = synthetic_chain(n_scaled, side, paper_n=paper_n, seed=seed + i)
        entries.append(
            (
                f"nI={n_scaled} (paper {paper_n:.0e})",
                query,
                workload,
                ["c-rep", "c-rep-l"],
            )
        )
    return execute_sweep(
        table="Table 8",
        title="Query Q4, varying the dataset size",
        parameters=(
            f"d={D:.0f}, space {side:.0f}x{side:.0f}, sides (0,100), scale={scale}"
        ),
        entries=entries,
        verify=verify,
        executor=executor,
        num_workers=num_workers,
        kernel=kernel,
        recorder=recorder,
        verbose=verbose,
        ledger=ledger,
        profiler=profiler,
    )
