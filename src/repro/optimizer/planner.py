"""Greedy join-order planning for the 2-way Cascade.

The cascade evaluates one 2-way join per step; each step's cost is
driven by the size of the partial-tuple relation it reads, shuffles and
writes.  The planner chooses a connected slot order minimising the sum
of estimated intermediate cardinalities:

* start with the edge of smallest estimated join size,
* repeatedly attach the frontier slot whose join multiplies the current
  intermediate cardinality the least (its estimated per-probe degree).

This is the classical greedy left-deep heuristic; with at most a
handful of relations it is exact often enough, and the experiments only
need it to avoid pathological orders (e.g. starting with the two huge
relations of a star when a selective leaf exists).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.geometry.rectangle import Rect
from repro.optimizer.stats import (
    DatasetProfile,
    estimate_join_size,
    estimate_selectivity_per_probe,
    profiles_for_query,
)
from repro.query.query import Query

__all__ = ["CascadePlan", "plan_cascade_order"]


@dataclass(frozen=True)
class CascadePlan:
    """A planned slot order plus the estimates that justified it."""

    order: tuple[str, ...]
    #: estimated cardinality after each step (index 0 = first join)
    estimated_sizes: tuple[float, ...]

    @property
    def estimated_total_intermediate(self) -> float:
        """Sum of intermediate sizes — the quantity the planner minimises."""
        return sum(self.estimated_sizes[:-1]) if self.estimated_sizes else 0.0


def plan_cascade_order(
    query: Query,
    datasets: dict[str, list[tuple[int, Rect]]] | None = None,
    *,
    profiles: dict[str, DatasetProfile] | None = None,
    space_area: float | None = None,
) -> CascadePlan:
    """Choose a cascade slot order from data (or precomputed) profiles.

    Provide either ``datasets`` (profiled on the fly) or per-slot
    ``profiles`` plus ``space_area``.
    """
    if profiles is None:
        if datasets is None:
            raise ExperimentError("need datasets or profiles to plan")
        profiles = profiles_for_query(query, datasets)
    if space_area is None:
        if datasets is None:
            raise ExperimentError("need datasets or an explicit space_area")
        all_rects = [r for rects in datasets.values() for __, r in rects]
        if not all_rects:
            raise ExperimentError("cannot plan over empty datasets")
        from repro.geometry.ops import bounding_rect

        box = bounding_rect(all_rects)
        space_area = max(box.area, 1.0)

    # --- pick the cheapest starting edge ------------------------------
    best_edge = None
    best_size = None
    for t in query.triples:
        size = estimate_join_size(
            profiles[t.left], profiles[t.right], t, space_area
        )
        if best_size is None or size < best_size:
            best_edge, best_size = t, size
    assert best_edge is not None and best_size is not None

    # Put the smaller relation first (it is read as the tuple side).
    first, second = best_edge.left, best_edge.right
    if profiles[second].count < profiles[first].count:
        first, second = second, first
    order = [first, second]
    sizes = [best_size]
    current = best_size

    # --- greedy expansion ---------------------------------------------
    while len(order) < len(query.slots):
        frontier: dict[str, float] = {}
        for slot in query.slots:
            if slot in order:
                continue
            touching = [
                t for t in query.triples_touching(slot) if t.other(slot) in order
            ]
            if not touching:
                continue
            # Expected growth factor: the product of the new slot's
            # per-probe degrees over every edge into the bound set.
            growth = 1.0
            for t in touching:
                growth *= max(
                    estimate_selectivity_per_probe(
                        profiles[slot], t, space_area
                    ),
                    1e-12,
                )
            frontier[slot] = growth
        if not frontier:  # pragma: no cover - connectivity bars this
            raise ExperimentError("join graph is disconnected")
        nxt = min(frontier, key=lambda s: frontier[s])
        current = current * frontier[nxt]
        order.append(nxt)
        sizes.append(current)
    return CascadePlan(order=tuple(order), estimated_sizes=tuple(sizes))
