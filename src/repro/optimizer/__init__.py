"""Join-order optimization for the 2-way Cascade."""

from repro.optimizer.histogram import (
    HistogramProfile,
    estimate_join_size_histogram,
)
from repro.optimizer.planner import CascadePlan, plan_cascade_order
from repro.optimizer.stats import (
    DatasetProfile,
    estimate_join_size,
    profile_dataset,
    profiles_for_query,
)

__all__ = [
    "CascadePlan",
    "plan_cascade_order",
    "DatasetProfile",
    "profile_dataset",
    "profiles_for_query",
    "estimate_join_size",
    "HistogramProfile",
    "estimate_join_size_histogram",
]
