"""Histogram-based join-size estimation for skewed data.

The uniform-assumption estimator (`repro.optimizer.stats`) ranks join
orders well on the paper's uniform workloads but can be badly off on
clustered data, where join partners concentrate.  This estimator keeps a
per-cell count histogram per dataset (the same statistics pass a grid
advisor runs — see ``examples/custom_mapreduce.py``) and estimates

    |R1 join R2| ~= sum_cells  n1(cell) * n2(cell) * window / area(cell)

i.e. the uniform formula applied cell-locally, which captures the
first-order effect of correlated density.  The estimate degrades to the
global uniform one on flat histograms (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.optimizer.stats import DatasetProfile, profile_dataset
from repro.query.query import Triple

__all__ = ["HistogramProfile", "estimate_join_size_histogram"]


@dataclass(frozen=True)
class HistogramProfile:
    """A dataset profile plus a per-cell start-point histogram."""

    base: DatasetProfile
    grid: GridPartitioning
    counts: tuple[int, ...]

    @classmethod
    def build(
        cls,
        name: str,
        rects: list[tuple[int, Rect]],
        grid: GridPartitioning,
    ) -> "HistogramProfile":
        """One pass over the data: aggregate profile + cell counts."""
        counts = [0] * grid.num_cells
        for __, r in rects:
            counts[grid.cell_of(r).cell_id] += 1
        return cls(
            base=profile_dataset(name, rects),
            grid=grid,
            counts=tuple(counts),
        )

    @property
    def skew(self) -> float:
        """Hottest cell's share relative to a flat histogram (1.0 = flat)."""
        total = sum(self.counts)
        if total == 0:
            return 1.0
        flat = total / len(self.counts)
        return max(self.counts) / flat


def estimate_join_size_histogram(
    left: HistogramProfile, right: HistogramProfile, triple: Triple
) -> float:
    """Cell-local uniform estimate of one join edge's output size.

    Both histograms must be built over the same grid.  The join window
    (mean extents plus twice the range distance) is assumed small
    relative to a cell, matching how the estimator is used: ranking
    orders on the reducer grid whose cells are much larger than
    rectangles.
    """
    if left.grid is not right.grid and (
        left.grid.num_cells != right.grid.num_cells
        or left.grid.space != right.grid.space
    ):
        raise ExperimentError("histograms built over different grids")
    if left.base.is_empty or right.base.is_empty:
        return 0.0
    d = triple.predicate.distance
    window = (left.base.mean_l + right.base.mean_l + 2 * d) * (
        left.base.mean_b + right.base.mean_b + 2 * d
    )
    total = 0.0
    for cell, (n1, n2) in zip(
        left.grid.cells(), zip(left.counts, right.counts)
    ):
        if n1 == 0 or n2 == 0:
            continue
        area = max(cell.extent.area, 1e-12)
        total += n1 * n2 * min(1.0, window / area)
    return total
