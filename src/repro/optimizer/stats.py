"""Dataset profiles and join-selectivity estimation.

The 2-way Cascade's cost is dominated by its intermediate result sizes,
which depend on the join order (the paper evaluates the given order and
footnotes "assuming that this is the optimal order").  This module
provides the estimation layer an optimizer needs: per-dataset aggregate
profiles and the classical uniform-assumption estimate of spatial-join
cardinality,

    |R1 join R2| ~= n1 * n2 * (l1 + l2 + 2d)(b1 + b2 + 2d) / A

— the expected number of pairs whose d-enlarged extents meet, with
``l``/``b`` the mean side lengths and ``A`` the space area.  For the
d = 0 overlap case this is the textbook MBR-join estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.geometry.rectangle import Rect
from repro.query.query import Query, Triple

__all__ = ["DatasetProfile", "profile_dataset", "estimate_join_size"]


@dataclass(frozen=True)
class DatasetProfile:
    """Aggregates of one dataset used by the selectivity estimator."""

    name: str
    count: int
    mean_l: float
    mean_b: float

    @property
    def is_empty(self) -> bool:
        return self.count == 0


def profile_dataset(name: str, rects: list[tuple[int, Rect]]) -> DatasetProfile:
    """Profile a dataset (one pass; experiments profile samples)."""
    if not rects:
        return DatasetProfile(name=name, count=0, mean_l=0.0, mean_b=0.0)
    n = len(rects)
    return DatasetProfile(
        name=name,
        count=n,
        mean_l=sum(r.l for __, r in rects) / n,
        mean_b=sum(r.b for __, r in rects) / n,
    )


def estimate_join_size(
    left: DatasetProfile,
    right: DatasetProfile,
    triple: Triple,
    space_area: float,
) -> float:
    """Expected output pairs of one join edge under uniformity.

    The estimate is intentionally simple — it only has to *rank* join
    orders, and the ranking is driven by counts and extent products that
    the uniform assumption preserves on the paper's workloads.
    """
    if space_area <= 0:
        raise ExperimentError(f"space area must be positive, got {space_area}")
    if left.is_empty or right.is_empty:
        return 0.0
    d = triple.predicate.distance
    window = (left.mean_l + right.mean_l + 2 * d) * (
        left.mean_b + right.mean_b + 2 * d
    )
    selectivity = min(1.0, window / space_area)
    return left.count * right.count * selectivity


def estimate_selectivity_per_probe(
    partner: DatasetProfile, triple: Triple, space_area: float
) -> float:
    """Expected partners per probing rectangle (degree), for planning."""
    if space_area <= 0:
        raise ExperimentError(f"space area must be positive, got {space_area}")
    d = triple.predicate.distance
    window = (2 * partner.mean_l + 2 * d) * (2 * partner.mean_b + 2 * d)
    return partner.count * min(1.0, window / space_area)


def profiles_for_query(
    query: Query, datasets: dict[str, list[tuple[int, Rect]]]
) -> dict[str, DatasetProfile]:
    """Per-slot profiles (slots of the same dataset share one profile)."""
    by_dataset = {
        name: profile_dataset(name, rects) for name, rects in datasets.items()
    }
    return {slot: by_dataset[query.dataset_of(slot)] for slot in query.slots}
