"""Free-standing geometric helpers used across the join algorithms."""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import GeometryError
from repro.geometry.rectangle import Rect

__all__ = [
    "bounding_rect",
    "point_rect_distance",
    "axis_gaps",
    "chebyshev_distance",
]


def bounding_rect(rects: Iterable[Rect]) -> Rect:
    """A bounding rectangle of a non-empty collection — **conservative**.

    The ``(x, y, l, b)`` representation stores extents as differences,
    so a naive ``from_corners`` build can round the far corner inwards
    by an ulp and *exclude* an input's boundary.  Spatial-index
    correctness (bounds tests, R-tree node MBRs) requires containment,
    so the sides are nudged outwards until every input is covered; the
    result may exceed the tight box by a few ulps.
    """
    iterator = iter(rects)
    try:
        first = next(iterator)
    except StopIteration:
        raise GeometryError("bounding_rect() of an empty collection") from None
    x_min, x_max = first.x_min, first.x_max
    y_min, y_max = first.y_min, first.y_max
    for r in iterator:
        x_min = min(x_min, r.x_min)
        x_max = max(x_max, r.x_max)
        y_min = min(y_min, r.y_min)
        y_max = max(y_max, r.y_max)
    box = Rect.from_corners(x_min, y_min, x_max, y_max)
    l, b = box.l, box.b
    while box.x_max < x_max:
        l = math.nextafter(l, math.inf)
        box = Rect(x=x_min, y=box.y, l=l, b=b)
    while box.y_min > y_min:
        b = math.nextafter(b, math.inf)
        box = Rect(x=x_min, y=y_max, l=l, b=b)
    return box


def point_rect_distance(px: float, py: float, rect: Rect) -> float:
    """Minimum Euclidean distance from a point to a closed rectangle."""
    dx = max(0.0, rect.x_min - px, px - rect.x_max)
    dy = max(0.0, rect.y_min - py, py - rect.y_max)
    return math.hypot(dx, dy)


def axis_gaps(a: Rect, b: Rect) -> tuple[float, float]:
    """Per-axis separation ``(dx, dy)`` between two closed rectangles.

    Both components are 0 when the projections on the respective axis
    overlap.  ``hypot(dx, dy)`` is the Euclidean minimum distance and
    ``max(dx, dy)`` the Chebyshev one.
    """
    dx = max(0.0, a.x_min - b.x_max, b.x_min - a.x_max)
    dy = max(0.0, a.y_min - b.y_max, b.y_min - a.y_max)
    return dx, dy


def chebyshev_distance(a: Rect, b: Rect) -> float:
    """Chebyshev (L-infinity) distance between two closed rectangles.

    ``chebyshev_distance(a, b) <= d`` is the real-arithmetic condition
    ``a.enlarge(d).intersects(b)`` — the routing test the 2-way range
    join of Section 5.3 uses — and is the metric the safe variant of the
    C-Rep-L replication limit is expressed in (see DESIGN.md).  In
    floats the two can disagree within rounding distance of the exact-
    ``d`` boundary (each rounds a different subtraction); the routing
    predicates therefore use the :meth:`Rect.enlarge` expressions, not
    this value (DESIGN.md §6).
    """
    dx, dy = axis_gaps(a, b)
    return max(dx, dy)
