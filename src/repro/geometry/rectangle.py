"""The rectangle (MBR) object model of the paper (Section 1.1).

A rectangle is represented as ``(x, y, l, b)`` where ``(x, y)`` are the
coordinates of the **top-left vertex** (also called the *start-point*),
``l`` is the length (extent along the x axis) and ``b`` the breadth
(extent along the y axis).  The y axis points *up*, so a rectangle spans

* ``x`` range ``[x, x + l]`` and
* ``y`` range ``[y - b, y]``.

Two geometric facts from this convention are load-bearing for the join
algorithms and are exercised heavily by the test-suite:

1. A rectangle extends only to the *right* and *down* from its
   start-point.  Hence every partition-cell a rectangle intersects lies in
   the 4th quadrant with respect to the cell containing its start-point.
   This is why *All-Replicate* and *Controlled-Replicate* replicate into
   the 4th quadrant and why the duplicate-avoidance point
   ``(u_r.x, u_l.y)`` is reachable by every member of an output tuple.
2. Intersection tests and minimum distances are computed on the *closed*
   extents: rectangles that merely touch are considered overlapping and
   have distance 0.  The paper does not state which convention it uses;
   the closed convention is the common one in the spatial-join literature
   and is what makes the filter step a superset of the refinement step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GeometryError

__all__ = ["Rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle with a top-left start-point.

    Parameters
    ----------
    x, y:
        Coordinates of the top-left vertex (the *start-point*).
    l:
        Length: extent along the x axis, ``>= 0``.
    b:
        Breadth: extent along the y axis (downwards), ``>= 0``.

    Degenerate rectangles (``l == 0`` or ``b == 0``) are permitted: they
    model points and axis-parallel segments, which occur naturally as
    MBRs of point/segment spatial objects.
    """

    x: float
    y: float
    l: float
    b: float
    #: memoized ``repr(x),repr(y),repr(l),repr(b)`` — the canonical CSV
    #: coordinate form every line codec embeds.  Late-bound by the first
    #: encode (never seeded from decoded input text, whose spelling may
    #: differ from ``repr``), then reused: a rectangle crossing several
    #: job boundaries is formatted exactly once.
    _csv: str | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not all(math.isfinite(v) for v in (self.x, self.y, self.l, self.b)):
            raise GeometryError(f"rectangle coordinates must be finite, got {self!r}")
        if self.l < 0 or self.b < 0:
            raise GeometryError(f"rectangle sides must be non-negative, got {self!r}")

    # Compact pickling: a bare 4-float tuple instead of the slots-dict
    # state the dataclass machinery generates.  Rectangles dominate
    # cross-process task results, so dropping the per-instance field
    # dict (and the derivable ``_csv`` cache) measurably slims IPC.
    def __getstate__(self):
        return (self.x, self.y, self.l, self.b)

    def __setstate__(self, state) -> None:
        sa = object.__setattr__
        x, y, l, b = state
        sa(self, "x", x)
        sa(self, "y", y)
        sa(self, "l", l)
        sa(self, "b", b)
        sa(self, "_csv", None)

    # ------------------------------------------------------------------
    # Extent accessors
    # ------------------------------------------------------------------
    @property
    def x_min(self) -> float:
        """Left edge (equals the start-point x)."""
        return self.x

    @property
    def x_max(self) -> float:
        """Right edge."""
        return self.x + self.l

    @property
    def y_min(self) -> float:
        """Bottom edge."""
        return self.y - self.b

    @property
    def y_max(self) -> float:
        """Top edge (equals the start-point y)."""
        return self.y

    @property
    def start_point(self) -> tuple[float, float]:
        """The top-left vertex ``(x, y)`` used by Project and dedup rules."""
        return (self.x, self.y)

    @property
    def bottom_right(self) -> tuple[float, float]:
        """The bottom-right vertex ``(x + l, y - b)``."""
        return (self.x + self.l, self.y - self.b)

    @property
    def center(self) -> tuple[float, float]:
        """The center point of the rectangle."""
        return (self.x + self.l / 2.0, self.y - self.b / 2.0)

    @property
    def area(self) -> float:
        """Area ``l * b`` (0 for degenerate rectangles)."""
        return self.l * self.b

    @property
    def diagonal(self) -> float:
        """Euclidean length of the diagonal; the paper's ``d_max`` bounds this."""
        return math.hypot(self.l, self.b)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_corners(cls, x_min: float, y_min: float, x_max: float, y_max: float) -> "Rect":
        """Build a rectangle from its extent (inverse of the accessors)."""
        if x_max < x_min or y_max < y_min:
            raise GeometryError(
                f"empty extent: x [{x_min}, {x_max}], y [{y_min}, {y_max}]"
            )
        return cls(x=x_min, y=y_max, l=x_max - x_min, b=y_max - y_min)

    @classmethod
    def from_point(cls, x: float, y: float) -> "Rect":
        """A degenerate rectangle covering the single point ``(x, y)``."""
        return cls(x=x, y=y, l=0.0, b=0.0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, px: float, py: float) -> bool:
        """Whether ``(px, py)`` lies inside the closed extent."""
        return self.x_min <= px <= self.x_max and self.y_min <= py <= self.y_max

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other``'s closed extent lies within this one."""
        return (
            self.x_min <= other.x_min
            and other.x_max <= self.x_max
            and self.y_min <= other.y_min
            and other.y_max <= self.y_max
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed-extent intersection test: touching rectangles overlap.

        This is the paper's ``Overlap`` predicate on MBRs.
        """
        return (
            self.x_min <= other.x_max
            and other.x_min <= self.x_max
            and self.y_min <= other.y_max
            and other.y_min <= self.y_max
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping area as a rectangle, or ``None`` if disjoint.

        The start-point of the returned rectangle drives the 2-way-join
        duplicate-avoidance rule of Section 5.2.
        """
        x_min = max(self.x_min, other.x_min)
        x_max = min(self.x_max, other.x_max)
        y_min = max(self.y_min, other.y_min)
        y_max = min(self.y_max, other.y_max)
        if x_max < x_min or y_max < y_min:
            return None
        return Rect.from_corners(x_min, y_min, x_max, y_max)

    def min_distance(self, other: "Rect") -> float:
        """Minimum Euclidean distance between the two closed extents.

        Zero when the rectangles intersect.  This realises the paper's
        ``Range`` predicate: ``Range(r1, r2, d)`` holds iff
        ``r1.min_distance(r2) <= d``.
        """
        dx = max(0.0, self.x_min - other.x_max, other.x_min - self.x_max)
        dy = max(0.0, self.y_min - other.y_max, other.y_min - self.y_max)
        return math.hypot(dx, dy)

    def within_distance(self, other: "Rect", d: float) -> bool:
        """Whether the rectangles are within Euclidean distance ``d``.

        Defined to be *consistent with the routing tests*: the join
        algorithms route range candidates through enlarged-rectangle
        intersection (Section 5.3), so this predicate first applies the
        same enlarged test — evaluated with exactly the float
        expressions of :meth:`enlarge` — and only then the Euclidean
        check.  Without that, 1-ulp rounding differences at exact-``d``
        boundaries could let the predicate accept a pair the routing
        never brings together.
        """
        if d < 0:
            raise GeometryError(f"distance parameter must be non-negative, got {d}")
        if not self._enlarged_intersects(other, d) or not other._enlarged_intersects(
            self, d
        ):
            return False
        dx = max(0.0, self.x_min - other.x_max, other.x_min - self.x_max)
        dy = max(0.0, self.y_min - other.y_max, other.y_min - self.y_max)
        # Avoid the sqrt of min_distance on the hot path.
        return dx * dx + dy * dy <= d * d

    def _enlarged_intersects(self, other: "Rect", d: float) -> bool:
        """``self.enlarge(d).intersects(other)`` without the allocation.

        Bit-for-bit identical to the allocating form: the boundary
        expressions replicate :meth:`enlarge`'s arithmetic.
        """
        ex_min = self.x - d
        ex_max = ex_min + (self.l + 2 * d)
        ey_max = self.y + d
        ey_min = ey_max - (self.b + 2 * d)
        return (
            ex_min <= other.x_max
            and other.x_min <= ex_max
            and ey_min <= other.y_max
            and other.y_min <= ey_max
        )

    # ------------------------------------------------------------------
    # Transformations (Sections 5.3 and 7.8.6)
    # ------------------------------------------------------------------
    def enlarge(self, d: float) -> "Rect":
        """Enlarge by ``d`` units on every side (Section 5.3).

        The top-left vertex moves to ``(x - d, y + d)`` and the
        bottom-right vertex to ``(x + l + d, y - b - d)``.  A rectangle
        ``r2`` intersecting ``r1.enlarge(d)`` is a *necessary* condition
        for ``Range(r1, r2, d)`` (Chebyshev distance ``<= d``), but not
        sufficient: the corner regions admit pairs with Euclidean
        distance up to ``d * sqrt(2)``.
        """
        if d < 0:
            raise GeometryError(f"enlargement must be non-negative, got {d}")
        return Rect(x=self.x - d, y=self.y + d, l=self.l + 2 * d, b=self.b + 2 * d)

    def enlarge_by_factor(self, k: float) -> "Rect":
        """Scale both sides by factor ``k`` about the center (Section 7.8.6).

        Used to derive progressively denser variants of the California
        road data-set (Table 4).
        """
        if k <= 0:
            raise GeometryError(f"enlargement factor must be positive, got {k}")
        grow_x = self.l * (k - 1.0) / 2.0
        grow_y = self.b * (k - 1.0) / 2.0
        return Rect(
            x=self.x - grow_x,
            y=self.y + grow_y,
            l=self.l * k,
            b=self.b * k,
        )

    def translate(self, dx: float, dy: float) -> "Rect":
        """The rectangle moved by ``(dx, dy)``."""
        return Rect(x=self.x + dx, y=self.y + dy, l=self.l, b=self.b)

    def scale(self, factor: float) -> "Rect":
        """Scale position *and* size about the origin (workload re-scaling)."""
        if factor <= 0:
            raise GeometryError(f"scale factor must be positive, got {factor}")
        return Rect(
            x=self.x * factor, y=self.y * factor, l=self.l * factor, b=self.b * factor
        )
