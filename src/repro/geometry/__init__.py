"""Geometric object model: rectangles (MBRs) and distance helpers."""

from repro.geometry.ops import (
    axis_gaps,
    bounding_rect,
    chebyshev_distance,
    point_rect_distance,
)
from repro.geometry.rectangle import Rect

__all__ = [
    "Rect",
    "bounding_rect",
    "point_rect_distance",
    "axis_gaps",
    "chebyshev_distance",
]
