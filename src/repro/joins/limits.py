"""Replication distance limits for Controlled-Replicate-in-Limit (§7.9, §8).

C-Rep decides *which* rectangles replicate; C-Rep-L additionally bounds
*how far*.  A rectangle of slot ``A`` only ever meets tuple members
within the cheapest join-graph path cost (edge range parameters plus
interior rectangle diagonals — :meth:`JoinGraph.replication_bounds`), so
it is replicated with ``f2`` at that bound instead of ``f1``.

Metric choice: the tuple owner point ``(u_r.x, u_l.y)`` mixes the
coordinates of two different members, so its per-axis distance from the
rectangle is bounded by the path bound but its Euclidean distance may
reach ``sqrt(2)`` times it.  The default here is therefore the *safe*
per-axis (Chebyshev) bound; ``metric="euclidean"`` reproduces the
paper's rule literally (possible under-replication, measurable in the
limits ablation benchmark).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import JoinError
from repro.query.graph import JoinGraph
from repro.query.query import Query

__all__ = ["ReplicationLimits"]


@dataclass(frozen=True)
class ReplicationLimits:
    """Per-dataset replication distance bounds plus the metric to apply."""

    by_dataset: Mapping[str, float]
    metric: str = "chebyshev"

    def __post_init__(self) -> None:
        if self.metric not in ("chebyshev", "euclidean"):
            raise JoinError(f"unknown limit metric {self.metric!r}")
        for dataset, bound in self.by_dataset.items():
            if bound < 0 or math.isnan(bound):
                raise JoinError(
                    f"replication bound for {dataset!r} must be >= 0, got {bound}"
                )

    @classmethod
    def unlimited(cls) -> "ReplicationLimits":
        """No limit: C-Rep-L degenerates to plain C-Rep (``f1``)."""
        return cls(by_dataset={}, metric="chebyshev")

    @classmethod
    def from_query(
        cls,
        query: Query,
        d_max: float | Mapping[str, float],
        *,
        metric: str = "chebyshev",
    ) -> "ReplicationLimits":
        """Derive bounds from the join graph and the diagonal bound(s).

        ``d_max`` is a global diagonal upper bound or a per-*dataset*
        mapping (e.g. measured from the generated data).  A dataset
        serving several slots takes the largest of its slots' bounds —
        its rectangles may appear at any of them.
        """
        if isinstance(d_max, Mapping):
            diag_by_slot = {
                slot: d_max[query.dataset_of(slot)] for slot in query.slots
            }
            slot_bounds = JoinGraph(query).replication_bounds(diag_by_slot)
        else:
            slot_bounds = JoinGraph(query).replication_bounds(float(d_max))
        by_dataset: dict[str, float] = {}
        for slot, bound in slot_bounds.items():
            dataset = query.dataset_of(slot)
            by_dataset[dataset] = max(by_dataset.get(dataset, 0.0), bound)
        return cls(by_dataset=by_dataset, metric=metric)

    def bound_for(self, dataset: str) -> float:
        """The replication distance for one dataset (``inf`` = unlimited)."""
        return self.by_dataset.get(dataset, math.inf)

    @property
    def is_unlimited(self) -> bool:
        """Whether every dataset is effectively unbounded."""
        return all(math.isinf(b) for b in self.by_dataset.values()) or not self.by_dataset
