"""Conditions C1-C4 of Controlled-Replicate (Sections 7.4, 8 and 9).

The reducers of Controlled-Replicate's first round receive every
rectangle overlapping their cell ``c`` (via Split) and must decide which
of the rectangles *starting* in ``c`` to mark for replication.  The
paper marks the union ``uS_c`` of all *maximal* rectangle-sets satisfying

* **C1** — the set is consistent (its members satisfy every query
  predicate among its slots),
* **C2** — for every join edge from a slot inside the set to a slot
  outside it, the member at the inside slot can reach past the cell:
  it *crosses* the cell boundary for an overlap edge, or has another
  cell within distance ``d`` for a ``Ra(d)`` edge,
* **C3** — at least one such outside edge exists,
* **C4** — maximality (no qualifying superset).

Because every qualifying set extends to a maximal qualifying set, a
rectangle is marked **iff it belongs to some set satisfying C1-C3**, and
w.l.o.g. that witness set induces a *connected* subgraph of the join
graph containing the rectangle's slot (dropping foreign components never
invalidates C1-C3; see the correctness notes in DESIGN.md).  The marking
test is therefore an existence search: for each candidate rectangle, try
every connected proper slot-subset containing one of its slots and look
for one consistent embedding among the rectangles received at the cell.

The two C2 variants unify cleanly: with closed cell extents a rectangle
crosses the boundary iff its distance to the nearest other cell is 0, so
every outside edge imposes ``gap(u) <= d_edge`` with ``d_edge = 0`` for
overlap.  A slot with several outside edges must satisfy the smallest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.rectangle import Rect
from repro.grid.cell import Cell
from repro.grid.partitioning import GridPartitioning
from repro.index import make_index
from repro.kernels import numpy_or_none
from repro.kernels import transforms as _kt
from repro.kernels.batch import RectBatch
from repro.query.graph import JoinGraph
from repro.query.predicates import Overlap
from repro.query.query import Query, Triple

__all__ = ["MarkingEngine", "MarkingDecision"]


@dataclass(frozen=True)
class _Step:
    """One slot binding of the witness-embedding search."""

    slot: str
    anchor: Triple | None
    anchor_slot: str | None
    checks: tuple[tuple[Triple, str], ...]
    same_dataset: tuple[str, ...]
    #: the slot's dataset, resolved once at plan build (the embedding
    #: search visits steps far more often than plans are built)
    dataset: str = ""


@dataclass
class MarkingDecision:
    """Outcome of marking at one cell."""

    #: (dataset, rid) pairs to replicate (all start in the cell)
    marked: set[tuple[str, int]]
    #: candidate checks performed (compute-cost measure)
    ops: int
    #: the rectangles starting in the cell, in received order — exactly
    #: the ones the round-1 reducer must emit (tagged marked or not).
    #: ``None`` from a custom marking strategy; the reducer then
    #: recomputes ownership itself.
    starts_here: list[tuple[str, int, Rect]] | None = None


class MarkingEngine:
    """Implements the C1-C3 existence test for one query on one grid."""

    def __init__(
        self,
        query: Query,
        grid: GridPartitioning,
        index_kind: str = "grid",
        kernel: str = "python",
    ) -> None:
        self.query = query
        self.grid = grid
        self.index_kind = index_kind
        self.kernel = kernel
        self._np = numpy_or_none() if kernel == "numpy" else None
        self.graph = JoinGraph(query)
        self._subsets = {
            slot: self.graph.connected_subsets_containing(slot)
            for slot in query.slots
        }
        self._req_cache: dict[frozenset[str], dict[str, float]] = {}
        self._plan_cache: dict[tuple[frozenset[str], str], tuple[_Step, ...]] = {}

    # ------------------------------------------------------------------
    # Per-subset precomputation
    # ------------------------------------------------------------------
    def _requirements(self, subset: frozenset[str]) -> dict[str, float]:
        """Per-slot C2 gap bound: ``min`` distance over outside edges.

        ``inf`` means the slot has no outside edge (no constraint).
        """
        cached = self._req_cache.get(subset)
        if cached is not None:
            return cached
        reqs = {slot: math.inf for slot in subset}
        for t in self.graph.outside_triples(subset):
            inside = t.left if t.left in subset else t.right
            reqs[inside] = min(reqs[inside], t.predicate.distance)
        self._req_cache[subset] = reqs
        return reqs

    def _plan(self, subset: frozenset[str], start: str) -> tuple[_Step, ...]:
        """Connected binding order over ``subset`` starting at ``start``."""
        key = (subset, start)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        inside = self.graph.inside_triples(subset)
        order: list[str] = [start]
        placed = {start}
        while len(order) < len(subset):
            nxt = next(
                s
                for s in sorted(subset)
                if s not in placed
                and any(
                    t.touches(s) and t.other(s) in placed for t in inside
                )
            )
            order.append(nxt)
            placed.add(nxt)

        steps: list[_Step] = []
        bound: list[str] = []
        for slot in order:
            anchor: Triple | None = None
            anchor_slot: str | None = None
            checks: list[tuple[Triple, str]] = []
            for t in inside:
                if not t.touches(slot):
                    continue
                other = t.other(slot)
                if other not in bound:
                    continue
                if anchor is None:
                    anchor, anchor_slot = t, other
                else:
                    checks.append((t, other))
            same_dataset = tuple(
                s
                for s in bound
                if self.query.dataset_of(s) == self.query.dataset_of(slot)
            )
            steps.append(
                _Step(
                    slot=slot,
                    anchor=anchor,
                    anchor_slot=anchor_slot,
                    checks=tuple(checks),
                    same_dataset=same_dataset,
                    dataset=self.query.dataset_of(slot),
                )
            )
            bound.append(slot)
        plan = tuple(steps)
        self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------
    # The marking decision at one cell
    # ------------------------------------------------------------------
    def select_marked(
        self, cell: Cell, received: dict[str, list[tuple[int, Rect]]]
    ) -> MarkingDecision:
        """Which rectangles starting in ``cell`` must be replicated.

        Parameters
        ----------
        cell:
            The reducer's partition-cell.
        received:
            Rectangles split onto this cell, grouped by dataset.
        """
        indexes = {
            dataset: make_index(self.index_kind, kernel=self.kernel, pairs=rects)
            for dataset, rects in received.items()
        }

        # Per-rectangle C2 measure: distance to the nearest foreign cell,
        # plus the start-point owner id (reused for witness members
        # below).  The numpy kernel computes both columnarly per bag,
        # reusing the index's column arrays (same rects, same order).
        np = self._np
        # Nested per-dataset maps: the embedding search looks gaps up per
        # probe candidate, so ``gap[dataset][rid]`` avoids building a
        # ``(dataset, rid)`` tuple on every lookup in that hot loop.
        gap: dict[str, dict[int, float]] = {}
        owner: dict[str, dict[int, int]] = {}
        starts_here: list[tuple[str, int, Rect]] = []
        for dataset, rects in received.items():
            gap_d = gap[dataset] = {}
            own_d = owner[dataset] = {}
            if np is not None and rects:
                batch = getattr(indexes[dataset], "batch", None)
                if batch is None:
                    batch = RectBatch.from_pairs(np, rects)
                gaps = _kt.min_gaps_to_other_cell(np, self.grid, batch, cell).tolist()
                cids = _kt.cell_ids_of_starts(np, self.grid, batch).tolist()
                for (rid, rect), g, cid in zip(rects, gaps, cids):
                    gap_d[rid] = g
                    own_d[rid] = cid
                    if cid == cell.cell_id:
                        starts_here.append((dataset, rid, rect))
            else:
                for rid, rect in rects:
                    gap_d[rid] = self.grid.min_gap_to_other_cell(rect, cell)
                    cid = self.grid.cell_of(rect).cell_id
                    own_d[rid] = cid
                    if cid == cell.cell_id:
                        starts_here.append((dataset, rid, rect))

        marked: set[tuple[str, int]] = set()
        ops = 0
        # Probe results are memoized across the witness searches of one
        # cell: the same (dataset, anchor rect, d) probe recurs across
        # candidates and subsets.  The memo carries scan positions, so
        # the searches still charge probes exactly as their lazy scalar
        # generators would (see ``probe_batch``).
        probe_cache: dict | None = {} if np is not None else None
        # The subsets a slot can witness with are fixed per cell (they
        # depend only on which datasets sent candidates here), as are
        # their C2 requirement tables — hoisted out of the per-rectangle
        # loop.  Order and ops accounting are unchanged: the filter and
        # the requirement lookup never charged ops.
        dataset_of = self.query.dataset_of
        usable: dict[str, list] = {}
        for dataset, rid, rect in starts_here:
            if (dataset, rid) in marked:
                continue  # already part of an earlier witness
            witness = None
            rect_gap = gap[dataset][rid]
            for slot in self.query.slots_of_dataset(dataset):
                cands = usable.get(slot)
                if cands is None:
                    cands = usable[slot] = [
                        (subset, self._requirements(subset), self._plan(subset, slot))
                        for subset in self._subsets[slot]
                        # skip subsets where some slot has no candidates
                        if all(dataset_of(s) in received for s in subset)
                    ]
                for subset, reqs, plan in cands:
                    if rect_gap > reqs[slot]:
                        continue  # the candidate itself fails C2 here
                    witness, probe_ops = self._find_embedding(
                        subset,
                        slot,
                        (rid, rect),
                        received,
                        indexes,
                        gap,
                        probe_cache,
                        reqs,
                        plan,
                    )
                    ops += probe_ops
                    if witness is not None:
                        break
                if witness is not None:
                    break
            if witness is None:
                continue
            # Every member of a qualifying set is itself marked by the
            # paper's rule; record the ones this cell is responsible for.
            for w_slot, (w_rid, __w_rect) in witness.items():
                w_dataset = self.query.dataset_of(w_slot)
                if owner[w_dataset][w_rid] == cell.cell_id:
                    marked.add((w_dataset, w_rid))
        ops += sum(idx.probes for idx in indexes.values())
        return MarkingDecision(marked=marked, ops=ops, starts_here=starts_here)

    # ------------------------------------------------------------------
    def _find_embedding(
        self,
        subset: frozenset[str],
        start: str,
        fixed: tuple[int, Rect],
        received: dict[str, list[tuple[int, Rect]]],
        indexes,
        gap: dict[str, dict[int, float]],
        probe_cache: dict | None = None,
        reqs: dict[str, float] | None = None,
        plan: tuple | None = None,
    ) -> tuple[dict[str, tuple[int, Rect]] | None, int]:
        """First consistent C2-respecting embedding of ``subset``.

        ``fixed`` is pinned at slot ``start``; other slots draw from the
        received bags.  Returns ``(assignment | None, candidate_checks)``.

        With ``probe_cache`` (numpy kernel), probes run eagerly through
        :meth:`GridIndex.probe_batch` and are memoized; probe accounting
        stays *lazy-exact*: a search abandoned after candidate ``j``
        (witness found) charges only the slots scanned up to ``j``, as
        the scalar generator would.
        """
        if reqs is None:
            reqs = self._requirements(subset)
        if plan is None:
            plan = self._plan(subset, start)
        assignment: dict[str, tuple[int, Rect]] = {start: fixed}
        ops = 0

        def bind(depth: int) -> bool:
            nonlocal ops
            if depth == len(plan):
                return True
            step = plan[depth]
            dataset = step.dataset
            assert step.anchor is not None  # depth 0 is the fixed start
            anchor_rect = assignment[step.anchor_slot][1]
            d = step.anchor.predicate.distance
            idx = indexes[dataset]
            slot = step.slot
            req = reqs[slot]
            gap_d = gap[dataset]
            same_dataset = step.same_dataset
            step_checks = step.checks
            anchor_holds = step.anchor.holds_with
            # A strict-``Overlap`` anchor is already settled by the
            # probe: the index yields exactly the entries whose closed
            # extents intersect the (unenlarged) anchor box, which IS
            # the predicate.  The candidate check (and its op charge)
            # still runs; only the redundant re-test is skipped.
            anchor_settled = type(step.anchor.predicate) is Overlap
            if probe_cache is not None and getattr(idx, "batch", None) is not None:
                # Memoized eager probe.  Same candidate body as the
                # scalar loop below; only the probe accounting differs —
                # it is settled when the scan is abandoned or exhausted.
                key = (dataset, id(anchor_rect), d)
                hit = probe_cache.get(key)
                if hit is None:
                    hit = probe_cache[key] = idx.probe_batch(anchor_rect, d)
                cands, pos_list, scanned = hit
                for j, (rid, rect) in enumerate(cands):
                    ops += 1
                    if not (
                        anchor_settled
                        or anchor_holds(slot, rect, anchor_rect)
                    ):
                        continue
                    if gap_d[rid] > req:
                        continue  # fails C2 at this slot
                    if any(assignment[s][0] == rid for s in same_dataset):
                        continue
                    ok = True
                    for triple, other in step_checks:
                        ops += 1
                        if not triple.holds_with(
                            slot, rect, assignment[other][1]
                        ):
                            ok = False
                            break
                    if not ok:
                        continue
                    assignment[slot] = (rid, rect)
                    if bind(depth + 1):
                        # The scalar generator is abandoned here, having
                        # scanned through this candidate's bucket slot.
                        idx.probes += pos_list[j] + 1
                        return True
                    del assignment[slot]
                idx.probes += scanned
                return False
            for entry in idx.search(anchor_rect, d):
                rid, rect = entry.payload, entry.rect
                ops += 1
                if not (
                    anchor_settled
                    or anchor_holds(slot, rect, anchor_rect)
                ):
                    continue
                if gap_d[rid] > req:
                    continue  # fails C2 at this slot
                if any(assignment[s][0] == rid for s in same_dataset):
                    continue
                ok = True
                for triple, other in step_checks:
                    ops += 1
                    if not triple.holds_with(slot, rect, assignment[other][1]):
                        ok = False
                        break
                if not ok:
                    continue
                assignment[slot] = (rid, rect)
                if bind(depth + 1):
                    return True
                del assignment[slot]
            return False

        if bind(1):
            return dict(assignment), ops
        return None, ops
