"""Multi-way spatial join algorithms on map-reduce (the paper's core)."""

from repro.joins.all_replicate import AllReplicateJoin
from repro.joins.base import (
    Datasets,
    JoinResult,
    JoinStats,
    MultiWayJoinAlgorithm,
    stage_datasets,
)
from repro.joins.cascade import CascadeJoin
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.dedup import (
    tuple_owner,
    two_way_overlap_owner,
    two_way_range_owner,
)
from repro.joins.limits import ReplicationLimits
from repro.joins.local import LocalJoiner
from repro.joins.marking import MarkingDecision, MarkingEngine
from repro.joins.reference import brute_force_join
from repro.joins.registry import ALGORITHMS, make_algorithm
from repro.joins.sweep import sweep_pairs
from repro.joins.two_way import two_way_join, two_way_overlap, two_way_range

__all__ = [
    "Datasets",
    "JoinStats",
    "JoinResult",
    "MultiWayJoinAlgorithm",
    "stage_datasets",
    "CascadeJoin",
    "AllReplicateJoin",
    "ControlledReplicateJoin",
    "ReplicationLimits",
    "LocalJoiner",
    "MarkingEngine",
    "MarkingDecision",
    "brute_force_join",
    "tuple_owner",
    "two_way_overlap_owner",
    "two_way_range_owner",
    "two_way_join",
    "two_way_overlap",
    "two_way_range",
    "ALGORITHMS",
    "make_algorithm",
    "sweep_pairs",
]
