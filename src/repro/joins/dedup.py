"""Duplicate-avoidance rules (Sections 5.2, 5.3 and 6.2).

Split/replicate routing sends the members of an output tuple to several
common reducers; exactly one of them must report the tuple.  The paper's
rules pick a canonical *owner cell* per tuple — a cell guaranteed to
receive every member — and only the owner reports:

* 2-way overlap: the cell owning the start-point of ``r1 ∩ r2``;
* 2-way range:   the cell owning the start-point of ``r1^e(d) ∩ r2``;
* multi-way:     the cell owning the point ``(u_r.x, u_l.y)`` where
  ``u_r`` is the member with the largest start-x and ``u_l`` the member
  with the smallest start-y.

The multi-way point is reachable by every member because rectangles
extend only right/down from their start-points: the owner cell lies in
the 4th quadrant of every member's start cell, which is exactly the
``f1`` replication target set.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning

__all__ = [
    "two_way_overlap_owner",
    "two_way_range_owner",
    "tuple_owner",
]


def two_way_overlap_owner(
    r1: Rect, r2: Rect, grid: GridPartitioning
) -> int | None:
    """Owner cell id of an overlapping pair, or ``None`` if disjoint.

    Section 5.2: the cell containing the start-point of the overlap
    area computes the output pair.
    """
    overlap = r1.intersection(r2)
    if overlap is None:
        return None
    return grid.cell_id_of(overlap)


def two_way_range_owner(
    r1: Rect, r2: Rect, d: float, grid: GridPartitioning
) -> int | None:
    """Owner cell id of a candidate range pair, or ``None`` if too far.

    Section 5.3: the cell containing the start-point of
    ``r1.enlarge(d) ∩ r2``.  Note the asymmetry — ``r1`` is the
    replicated side, ``r2`` the split side; callers must use the same
    orientation they routed with.  Returns an owner for every pair whose
    *enlarged* rectangles intersect (the filter superset); the exact
    Euclidean distance check remains the caller's responsibility, just
    as the paper's reducers re-check ``dist(r1, r2) <= d``.
    """
    if d < 0:
        raise JoinError(f"range distance must be non-negative, got {d}")
    overlap = r1.enlarge(d).intersection(r2) if d > 0 else r1.intersection(r2)
    if overlap is None:
        return None
    return grid.cell_id_of(overlap)


def tuple_owner(rects: Iterable[Rect], grid: GridPartitioning) -> int:
    """Owner cell id of a multi-way output tuple (Section 6.2).

    ``(u_r.x, u_l.y)``: the largest start-x paired with the smallest
    start-y over the members.
    """
    xs_ys = [(r.x, r.y) for r in rects]
    if not xs_ys:
        raise JoinError("tuple_owner() of an empty tuple")
    max_x = max(x for x, __ in xs_ys)
    min_y = min(y for __, y in xs_ys)
    return grid.cell_id_of_point(max_x, min_y)
