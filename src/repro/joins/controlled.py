"""*Controlled-Replicate* and *C-Rep-L* (Sections 7, 8 and 9).

A round of two map-reduce jobs:

**Round 1 (mark).**  Map splits every relation, so reducer ``c`` sees
every rectangle overlapping its cell.  The reducer runs the C1-C4
marking test (:class:`~repro.joins.marking.MarkingEngine`) and emits
each rectangle *starting* in its cell exactly once, tagged with the
replication flag — every rectangle leaves round 1 exactly once globally.

**Round 2 (join).**  Map replicates marked rectangles — with ``f1``
(plain C-Rep) or distance-limited ``f2`` (C-Rep-L, bounds from
:class:`~repro.joins.limits.ReplicationLimits`) — and projects unmarked
ones.  Reducers evaluate the local multi-way join and the owner cell of
Section 6.2 reports each tuple once.

Correctness rests on two facts proved in DESIGN.md: every member of an
output tuple that does *not* reach its owner cell by projection is
necessarily marked (the restriction of the tuple to any cell where some
member is missing satisfies C1-C3), and the owner cell lies in the 4th
quadrant of every member within the C-Rep-L Chebyshev bound.  The
property-based tests drive both algorithms against the brute-force
oracle on adversarial random workloads.
"""

from __future__ import annotations

import math

from repro.data.io import RECT_CODEC, TAGGED_CODEC, TaggedRect
from repro.grid.partitioning import GridPartitioning
from repro.grid.transforms import replicate_f2, split
from repro.joins.base import (
    CNT_AFTER_REPLICATION,
    CNT_MARKED,
    JOIN_COUNTERS,
    Datasets,
    JoinResult,
    JoinStats,
    MultiWayJoinAlgorithm,
    dataset_from_path,
    stage_datasets,
)
from repro.joins.limits import ReplicationLimits
from repro.joins.local import LocalJoiner
from repro.joins.marking import MarkingEngine
from repro.kernels import numpy_or_none
from repro.kernels import transforms as _kt
from repro.kernels.batch import RectBatch
from repro.joins.reducers import (
    RECT_SHUFFLE_CODEC,
    make_local_join_reducer,
    rect_value,
)
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapContext, MapReduceJob, ReduceContext
from repro.mapreduce.workflow import Workflow
from repro.query.query import Query

__all__ = ["ControlledReplicateJoin"]


class ControlledReplicateJoin(MultiWayJoinAlgorithm):
    """C-Rep (no limits) or C-Rep-L (with :class:`ReplicationLimits`)."""

    name = "controlled-replicate"

    def __init__(
        self,
        limits: ReplicationLimits | None = None,
        index_kind: str = "grid",
        marking_factory=None,
    ) -> None:
        """``marking_factory(query, grid) -> engine`` lets experiments swap
        the marking strategy (the marking ablation benchmark uses a
        crossing-only variant); the default is the full C1-C4 engine.
        """
        self.limits = limits or ReplicationLimits.unlimited()
        self.index_kind = index_kind
        self.marking_factory = marking_factory
        if not self.limits.is_unlimited:
            self.name = "controlled-replicate-limit"

    def run(
        self,
        query: Query,
        datasets: Datasets,
        grid: GridPartitioning,
        cluster: Cluster | None = None,
    ) -> JoinResult:
        cluster = cluster or Cluster()
        self._check_inputs(query, datasets)
        paths = stage_datasets(cluster, datasets)
        marked_path = f"{self.name}/marked"
        output_path = f"{self.name}/output"
        # Under resume the previous run's outputs ARE the checkpoints —
        # the workflow decides per job whether to restore or re-run.
        if not cluster.resume:
            for path in (marked_path, output_path):
                if cluster.dfs.exists(path):
                    cluster.dfs.delete(path)

        kernel = cluster.resolved_kernel
        batched = kernel == "numpy"
        if self.marking_factory is not None:
            # Custom marking strategies predate the kernel parameter;
            # they run whatever kernel they were built with.
            marking = self.marking_factory(query, grid)
        else:
            marking = MarkingEngine(query, grid, self.index_kind, kernel=kernel)
        round1 = MapReduceJob(
            name=f"{self.name}-mark",
            input_paths=[paths[k] for k in query.dataset_keys],
            output_path=marked_path,
            mapper=_make_mark_mapper(grid),
            reducer=_make_mark_reducer(grid, marking),
            num_reducers=grid.num_cells,
            input_codec=RECT_CODEC,
            output_codec=TAGGED_CODEC,
            shuffle_codec=RECT_SHUFFLE_CODEC,
            batch_mapper=_make_mark_batch_mapper(grid) if batched else None,
        )

        joiner = LocalJoiner(query, self.index_kind, kernel=kernel)
        round2 = MapReduceJob(
            name=f"{self.name}-join",
            input_paths=[marked_path],
            output_path=output_path,
            mapper=_make_route_mapper(grid, self.limits),
            reducer=make_local_join_reducer(query, grid, joiner, kernel=kernel),
            num_reducers=grid.num_cells,
            input_codec=TAGGED_CODEC,
            shuffle_codec=RECT_SHUFFLE_CODEC,
            batch_mapper=(
                _make_route_batch_mapper(grid, self.limits) if batched else None
            ),
        )

        workflow = Workflow(cluster)
        workflow.run_all([round1, round2])
        tuples = self._collect_tuples(cluster, output_path)
        return JoinResult(
            tuples=tuples,
            stats=JoinStats.from_workflow(workflow.result),
            workflow=workflow.result,
        )


# ----------------------------------------------------------------------
# Round 1: mark
# ----------------------------------------------------------------------
def _make_mark_mapper(grid: GridPartitioning):
    """Split every rectangle so each overlapped cell can inspect it."""

    def mapper(key: tuple[str, int], record: tuple, ctx: MapContext) -> None:
        path, __ = key
        dataset = dataset_from_path(path)
        rid, rect = record
        for cell_id, __rect in split(rect, grid):
            ctx.emit(cell_id, rect_value(dataset, rid, rect))

    return mapper


def _make_mark_batch_mapper(grid: GridPartitioning):
    """Columnar twin of :func:`_make_mark_mapper`.

    One vectorized col/row-range computation covers the whole split —
    on the cached columnar ``batch`` when the engine staged one — and
    the flattened per-record cell lists go out in a single
    ``emit_batch`` call: record ``k``'s cells row-major, the exact
    pairs, per-bucket order and byte totals of the scalar mapper.
    """
    np = numpy_or_none()

    def batch_mapper(split_entries, ctx: MapContext, batch=None) -> None:
        if not split_entries:
            return
        if batch is None:
            batch = RectBatch.from_pairs(
                np, (rec for __, __, rec, __ in split_entries)
            )
        keys, counts = _kt.overlap_cell_lists(np, grid, batch)
        ds_cache: dict[str, str] = {}
        # The mark job always ships RECT_SHUFFLE_CODEC, whose pair size
        # depends only on the dataset name — one sizing per dataset.
        size_cache: dict[str, int] = {}
        values = []
        sizes = []
        for path, __lineno, (rid, rect), __nb in split_entries:
            dataset = ds_cache.get(path)
            if dataset is None:
                dataset = ds_cache[path] = dataset_from_path(path)
            value = rect_value(dataset, rid, rect)
            values.append(value)
            size = size_cache.get(dataset)
            if size is None:
                size = size_cache[dataset] = ctx.pair_nbytes(0, value)
            sizes.append(size)
        ctx.emit_batch(keys, counts, values, sizes)

    return batch_mapper


def _make_mark_reducer(grid: GridPartitioning, marking: MarkingEngine):
    """Run C1-C4; emit each rectangle starting here, flagged."""

    def reducer(cell_id: int, values, ctx: ReduceContext) -> None:
        cell = grid.cell_by_id(cell_id)
        received: dict[str, list] = {}
        for dataset, rid, rect in values:
            received.setdefault(dataset, []).append((rid, rect))
        decision = marking.select_marked(cell, received)
        ctx.add_compute(decision.ops)
        # ``starts_here`` is exactly the received rectangles this cell
        # owns, in received order — the ownership filter already ran
        # inside select_marked.  Custom strategies may omit it.
        starts = decision.starts_here
        if starts is None:
            starts = (
                (dataset, rid, rect)
                for dataset, rects in received.items()
                for rid, rect in rects
                if grid.cell_id_of(rect) == cell_id
            )
        marked_set = decision.marked
        tagged = [
            TaggedRect(
                dataset=dataset,
                rid=rid,
                rect=rect,
                marked=(dataset, rid) in marked_set,
            )
            for dataset, rid, rect in starts
        ]
        n_marked = sum(1 for t in tagged if t.marked)
        if n_marked:
            ctx.counter(JOIN_COUNTERS, CNT_MARKED, n_marked)
        ctx.emit_all(tagged)

    return reducer


# ----------------------------------------------------------------------
# Round 2: route and join
# ----------------------------------------------------------------------
def _make_route_mapper(grid: GridPartitioning, limits: ReplicationLimits):
    """Replicate marked rectangles (f1 / limited f2), project the rest."""

    def mapper(key: tuple[str, int], tagged: TaggedRect, ctx: MapContext) -> None:
        value = rect_value(tagged.dataset, tagged.rid, tagged.rect)
        if tagged.marked:
            bound = limits.bound_for(tagged.dataset)
            for cell_id, __rect in replicate_f2(
                tagged.rect, grid, bound, metric=limits.metric
            ):
                ctx.emit(cell_id, value)
                ctx.counter(JOIN_COUNTERS, CNT_AFTER_REPLICATION)
        else:
            ctx.emit(grid.cell_id_of(tagged.rect), value)
            # The paper's "rectangles after replication" metric counts all
            # rectangles communicated to round-2 reducers, projections
            # included (Table 2: 0.05m marked -> 3.9m ≈ 3m projected +
            # 0.9m replicated copies).
            ctx.counter(JOIN_COUNTERS, CNT_AFTER_REPLICATION)

    return mapper


def _make_route_batch_mapper(grid: GridPartitioning, limits: ReplicationLimits):
    """Columnar twin of :func:`_make_route_mapper`.

    Target cells are computed per group — unmarked rectangles in one
    ownership batch, marked ones batched per replication bound (bounds
    differ per dataset under C-Rep-L) — then scattered back into record
    order and flushed in a single ``emit_batch`` call, reproducing the
    scalar mapper's per-bucket emission order exactly.
    """
    np = numpy_or_none()
    metric = limits.metric

    def batch_mapper(split_entries, ctx: MapContext, batch=None) -> None:
        if not split_entries:
            return
        records = [rec for __, __, rec, __ in split_entries]
        n = len(records)
        targets: list = [None] * n
        unmarked = [k for k, t in enumerate(records) if not t.marked]
        if unmarked:
            ub = RectBatch.from_rects(np, (records[k].rect for k in unmarked))
            for k, cid in zip(
                unmarked, _kt.cell_ids_of_starts(np, grid, ub).tolist()
            ):
                targets[k] = cid
        by_bound: dict[float, list[int]] = {}
        for k, tagged in enumerate(records):
            if tagged.marked:
                by_bound.setdefault(limits.bound_for(tagged.dataset), []).append(k)
        for bound, idxs in by_bound.items():
            mb = RectBatch.from_rects(np, (records[k].rect for k in idxs))
            if math.isinf(bound):
                cids, counts = _kt.quadrant_cell_lists(np, grid, mb)
            else:
                cids, counts = _kt.quadrant_cell_lists(
                    np, grid, mb, d=bound, metric=metric
                )
            pos = 0
            for k, cnt in zip(idxs, counts):
                targets[k] = cids[pos : pos + cnt]
                pos += cnt
        flat_keys: list[int] = []
        key_counts: list[int] = []
        values = []
        sizes = []
        # Route also ships RECT_SHUFFLE_CODEC — size once per dataset.
        size_cache: dict[str, int] = {}
        for k, tagged in enumerate(records):
            value = rect_value(tagged.dataset, tagged.rid, tagged.rect)
            tgt = targets[k]
            if tagged.marked:
                flat_keys.extend(tgt)
                key_counts.append(len(tgt))
            else:
                flat_keys.append(tgt)
                key_counts.append(1)
            values.append(value)
            size = size_cache.get(tagged.dataset)
            if size is None:
                size = size_cache[tagged.dataset] = ctx.pair_nbytes(0, value)
            sizes.append(size)
        ctx.emit_batch(flat_keys, key_counts, values, sizes)
        ctx.counter(JOIN_COUNTERS, CNT_AFTER_REPLICATION, len(flat_keys))

    return batch_mapper
