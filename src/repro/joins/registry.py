"""Algorithm registry: names to factories (CLI and experiment harness)."""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import JoinError
from repro.joins.all_replicate import AllReplicateJoin
from repro.joins.base import MultiWayJoinAlgorithm
from repro.joins.cascade import CascadeJoin
from repro.joins.controlled import ControlledReplicateJoin
from repro.joins.limits import ReplicationLimits
from repro.query.query import Query

__all__ = ["ALGORITHMS", "make_algorithm"]

ALGORITHMS = ("cascade", "all-rep", "c-rep", "c-rep-l")


def make_algorithm(
    name: str,
    query: Query | None = None,
    d_max: float | Mapping[str, float] | None = None,
    *,
    limit_metric: str = "chebyshev",
    index_kind: str = "grid",
) -> MultiWayJoinAlgorithm:
    """Instantiate an algorithm by its short name.

    ``c-rep-l`` needs the query and a diagonal bound ``d_max`` (global or
    per dataset) to derive its replication limits.
    """
    factories: dict[str, Callable[[], MultiWayJoinAlgorithm]] = {
        "cascade": lambda: CascadeJoin(index_kind=index_kind),
        "all-rep": lambda: AllReplicateJoin(index_kind=index_kind),
        "c-rep": lambda: ControlledReplicateJoin(index_kind=index_kind),
    }
    if name in factories:
        return factories[name]()
    if name == "c-rep-l":
        if query is None or d_max is None:
            raise JoinError("c-rep-l needs the query and a d_max bound")
        limits = ReplicationLimits.from_query(query, d_max, metric=limit_metric)
        return ControlledReplicateJoin(limits=limits, index_kind=index_kind)
    raise JoinError(f"unknown algorithm {name!r}; choose from {ALGORITHMS}")
