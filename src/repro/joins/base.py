"""Shared infrastructure of the multi-way join algorithms.

Every algorithm (2-way Cascade, All-Replicate, Controlled-Replicate,
C-Rep-L) implements :class:`MultiWayJoinAlgorithm`: given a query, the
named datasets and a grid partitioning, it builds and runs map-reduce
jobs on a cluster and returns a :class:`JoinResult` with

* the output tuples (record ids in query slot order), and
* :class:`JoinStats` holding the paper's three metrics (Section 7.8.3):
  end-to-end simulated time, the number of rectangles marked for
  replication, and the aggregated number of rectangles communicated
  after replication — plus shuffle volumes and per-job breakdowns.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.data.io import RECT_CODEC, decode_result
from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import Cluster
from repro.mapreduce.workflow import WorkflowResult
from repro.query.query import Query

__all__ = [
    "Datasets",
    "JoinStats",
    "JoinResult",
    "MultiWayJoinAlgorithm",
    "stage_datasets",
    "dataset_from_path",
    "JOIN_COUNTERS",
    "CNT_MARKED",
    "CNT_AFTER_REPLICATION",
    "CNT_OUTPUT_TUPLES",
]

#: ``dataset key -> [(rid, Rect), ...]``
Datasets = dict[str, list[tuple[int, Rect]]]

JOIN_COUNTERS = "join"
CNT_MARKED = "rectangles_marked"
CNT_AFTER_REPLICATION = "rectangles_after_replication"
CNT_OUTPUT_TUPLES = "output_tuples"

#: DFS directory the staged relation files live under.
INPUT_PREFIX = "input"


def stage_datasets(cluster: Cluster, datasets: Datasets) -> dict[str, str]:
    """Write each dataset to the DFS; returns ``dataset -> path``.

    Staging is idempotent: re-staging an identical dataset overwrites
    the file in place (experiments stage once and run all algorithms on
    the same cluster).  Files are written through the rect codec, so the
    on-DFS bytes are the canonical ``rid,x,y,l,b`` lines and typed-path
    jobs read the ``(rid, Rect)`` objects back without parsing.
    """
    paths: dict[str, str] = {}
    for name, rects in datasets.items():
        if "/" in name or "|" in name:
            raise JoinError(f"dataset name {name!r} contains a path delimiter")
        path = f"{INPUT_PREFIX}/{name}"
        cluster.dfs.write_records(path, rects, RECT_CODEC)
        paths[name] = path
    return paths


def dataset_from_path(path: str) -> str:
    """Recover the dataset key from a staged input path."""
    prefix = INPUT_PREFIX + "/"
    if not path.startswith(prefix):
        raise JoinError(f"not a staged dataset path: {path!r}")
    return path[len(prefix):]


@dataclass
class JoinStats:
    """The metrics of Section 7.8.3 plus engine-level volumes."""

    simulated_seconds: float = 0.0
    shuffled_records: int = 0
    rectangles_marked: int = 0
    rectangles_after_replication: int = 0
    output_tuples: int = 0
    #: measured host-machine duration of the algorithm's job chain
    wall_clock_seconds: float = 0.0
    job_seconds: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_workflow(cls, workflow: WorkflowResult) -> "JoinStats":
        counters: Counters = workflow.counters
        return cls(
            simulated_seconds=workflow.simulated_seconds,
            wall_clock_seconds=workflow.wall_clock_seconds,
            shuffled_records=workflow.shuffled_records,
            rectangles_marked=counters.get(JOIN_COUNTERS, CNT_MARKED),
            rectangles_after_replication=counters.get(
                JOIN_COUNTERS, CNT_AFTER_REPLICATION
            ),
            output_tuples=counters.get(JOIN_COUNTERS, CNT_OUTPUT_TUPLES),
            job_seconds={
                r.job_name: r.simulated_seconds for r in workflow.job_results
            },
        )


@dataclass
class JoinResult:
    """Join output plus run statistics."""

    tuples: set[tuple[int, ...]]
    stats: JoinStats
    workflow: WorkflowResult

    def __len__(self) -> int:
        return len(self.tuples)


class MultiWayJoinAlgorithm(abc.ABC):
    """Interface of every map-reduce multi-way spatial join algorithm."""

    #: short name used by the registry and experiment reports
    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        query: Query,
        datasets: Datasets,
        grid: GridPartitioning,
        cluster: Cluster | None = None,
    ) -> JoinResult:
        """Execute the join and collect results from the DFS."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_inputs(query: Query, datasets: Datasets) -> None:
        missing = [k for k in query.dataset_keys if k not in datasets]
        if missing:
            raise JoinError(f"query references missing datasets: {missing}")

    @staticmethod
    def _collect_tuples(
        cluster: Cluster, output_path: str
    ) -> set[tuple[int, ...]]:
        """Read the final output directory into a set of rid tuples."""
        lines = cluster.dfs.read_dir(output_path)
        return {decode_result(line) for line in lines}
