"""The *2-way Cascade* naive multi-way join (Section 6).

Evaluates the query as a left-deep chain of 2-way map-reduce joins: one
job per slot after the first.  Step ``i`` joins the partially-bound
tuples (slots bound so far) against the dataset of the next slot of a
connected evaluation order; the tuple side is routed through the 2-way
rules of Section 5 (split for overlap anchors, enlarged split for range
anchors) and every further triple between the new slot and an
already-bound slot is checked in the same reduce, so any connected query
graph — trees and cycles alike — compiles to exactly ``m - 1`` jobs.

This is the paper's first naive baseline: each step materialises its
intermediate result on the DFS and the next step reads, re-routes and
re-shuffles it, so as intermediate results grow the read/write and
communication costs blow up (Tables 2-5 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.io import (
    RECT_CODEC,
    TUPLE_CODEC,
    TupleRecord,
    encode_result,
)
from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.grid.transforms import split
from repro.index import Entry, make_index
from repro.joins.base import (
    CNT_OUTPUT_TUPLES,
    JOIN_COUNTERS,
    Datasets,
    JoinResult,
    JoinStats,
    MultiWayJoinAlgorithm,
    stage_datasets,
)
from repro.joins.dedup import two_way_range_owner
from repro.joins.sweep import sweep_pairs
from repro.kernels.sweep import sweep_pairs_batch
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import (
    MapContext,
    MapReduceJob,
    ReduceContext,
    ShuffleCodec,
)
from repro.mapreduce.workflow import Workflow
from repro.query.graph import JoinGraph
from repro.query.query import Query, Triple

__all__ = ["CascadeJoin"]


def _cascade_value_size(value: tuple) -> int:
    """Byte size of one shuffle value, matching the string-era layout.

    Tuple side ``("T", TupleRecord)`` is charged as ``("T", line)`` was:
    2 bytes framing + 1-char tag + the encoded line.  Base side
    ``("B", rid, Rect)`` is charged as the old flat
    ``("B", rid, x, y, l, b)``: 2 + 1 + five 8-byte numbers.
    """
    if value[0] == "T":
        return 3 + len(value[1].line)
    return 43


#: int cell-id key -> 8 bytes, values per :func:`_cascade_value_size`
CASCADE_SHUFFLE_CODEC = ShuffleCodec(
    key_size=lambda key: 8, value_size=_cascade_value_size
)


@dataclass(frozen=True)
class _Step:
    """One 2-way join step of the cascade plan."""

    new_slot: str
    anchor: Triple
    anchor_slot: str
    checks: tuple[tuple[Triple, str], ...]
    #: earlier slots reading the new slot's dataset (distinctness)
    same_dataset: tuple[str, ...]
    is_final: bool


def _build_plan(
    query: Query, order: tuple[str, ...] | None = None
) -> tuple[str, tuple[_Step, ...]]:
    """Compile the query into (first slot, per-step 2-way joins).

    ``order`` overrides the default connected order — this is the hook
    the cascade-order optimizer (``repro.optimizer``) plugs into.  It
    must be a permutation of the query's slots where every slot after
    the first touches an earlier one.
    """
    if order is not None:
        if sorted(order) != sorted(query.slots):
            raise JoinError(
                f"order {order!r} is not a permutation of the query slots"
            )
    graph = JoinGraph(query)
    order = order or graph.connected_order()
    steps: list[_Step] = []
    bound = [order[0]]
    for i, slot in enumerate(order[1:], start=1):
        anchor: Triple | None = None
        anchor_slot: str | None = None
        checks: list[tuple[Triple, str]] = []
        for t in query.triples_touching(slot):
            other = t.other(slot)
            if other not in bound:
                continue
            if anchor is None:
                anchor, anchor_slot = t, other
            else:
                checks.append((t, other))
        if anchor is None:  # pragma: no cover - connectivity bars this
            raise JoinError(f"slot {slot!r} not connected to bound slots")
        same_dataset = tuple(
            s for s in bound if query.dataset_of(s) == query.dataset_of(slot)
        )
        steps.append(
            _Step(
                new_slot=slot,
                anchor=anchor,
                anchor_slot=anchor_slot,
                checks=tuple(checks),
                same_dataset=same_dataset,
                is_final=(i == len(order) - 1),
            )
        )
        bound.append(slot)
    return order[0], tuple(steps)


class CascadeJoin(MultiWayJoinAlgorithm):
    """A cascade of 2-way spatial joins, one map-reduce job per step."""

    name = "two-way-cascade"

    def __init__(
        self, index_kind: str = "grid", order: tuple[str, ...] | None = None
    ) -> None:
        self.index_kind = index_kind
        self.order = order

    def run(
        self,
        query: Query,
        datasets: Datasets,
        grid: GridPartitioning,
        cluster: Cluster | None = None,
    ) -> JoinResult:
        cluster = cluster or Cluster()
        self._check_inputs(query, datasets)
        paths = stage_datasets(cluster, datasets)
        first_slot, steps = _build_plan(query, self.order)
        kernel = cluster.resolved_kernel

        workflow = Workflow(cluster)
        left_path = paths[query.dataset_of(first_slot)]
        left_is_tuples = False
        output_path = f"{self.name}/output"
        for i, step in enumerate(steps):
            step_output = (
                output_path if step.is_final else f"{self.name}/step-{i}"
            )
            # Under resume step outputs are restorable checkpoints.
            if not cluster.resume and cluster.dfs.exists(step_output):
                cluster.dfs.delete(step_output)
            right_path = paths[query.dataset_of(step.new_slot)]
            if left_is_tuples:
                input_codec = {left_path: TUPLE_CODEC, right_path: RECT_CODEC}
            else:
                input_codec = RECT_CODEC  # both sides are base relations
            job = MapReduceJob(
                name=f"{self.name}-step{i}-{step.new_slot}",
                input_paths=(
                    [left_path]
                    if left_path == right_path and not left_is_tuples
                    else [left_path, right_path]
                ),
                output_path=step_output,
                mapper=_make_step_mapper(
                    grid, step, left_path, right_path, left_is_tuples, first_slot
                ),
                reducer=_make_step_reducer(
                    grid, query, step, self.index_kind, kernel
                ),
                num_reducers=grid.num_cells,
                input_codec=input_codec,
                output_codec=None if step.is_final else TUPLE_CODEC,
                shuffle_codec=CASCADE_SHUFFLE_CODEC,
            )
            workflow.run(job)
            left_path = step_output
            left_is_tuples = True

        tuples = self._collect_tuples(cluster, output_path)
        return JoinResult(
            tuples=tuples,
            stats=JoinStats.from_workflow(workflow.result),
            workflow=workflow.result,
        )


# ----------------------------------------------------------------------
# Map side: route tuples through the anchor rectangle, split base rects
# ----------------------------------------------------------------------
def _make_step_mapper(
    grid: GridPartitioning,
    step: _Step,
    left_path: str,
    right_path: str,
    left_is_tuples: bool,
    first_slot: str,
):
    d = step.anchor.predicate.distance
    self_first = left_path == right_path and not left_is_tuples

    def emit_tuple_side(record: TupleRecord, ctx: MapContext) -> None:
        routing = record.bindings[step.anchor_slot][1]
        if d > 0:
            routing = routing.enlarge(d)
        for cell_id, __ in split(routing, grid):
            ctx.emit(cell_id, ("T", record))

    def emit_base_side(rid: int, rect: Rect, ctx: MapContext) -> None:
        for cell_id, __ in split(rect, grid):
            ctx.emit(cell_id, ("B", rid, rect))

    def mapper(key: tuple[str, int], record, ctx: MapContext) -> None:
        path, __ = key
        from_left = path == left_path or path.startswith(left_path + "/")
        if from_left:
            if left_is_tuples:
                emit_tuple_side(record, ctx)
                return
            # First step: the left side is a base relation; wrap each
            # rectangle as a singleton tuple bound to the first slot.
            rid, rect = record
            emit_tuple_side(TupleRecord({first_slot: (rid, rect)}), ctx)
            if self_first:
                emit_base_side(rid, rect, ctx)
            return
        rid, rect = record
        emit_base_side(rid, rect, ctx)

    return mapper


# ----------------------------------------------------------------------
# Reduce side: 2-way join with the Section 5 duplicate avoidance
# ----------------------------------------------------------------------
def _make_step_reducer(
    grid: GridPartitioning,
    query: Query,
    step: _Step,
    index_kind: str,
    kernel: str = "python",
):
    d = step.anchor.predicate.distance
    slot_order = query.slots

    def candidate_pairs(tuple_records, base_entries):
        """Yield (bindings, rid, rect, anchor_rect) candidate pairs.

        Two kernels: per-tuple probes of a spatial index over the base
        side (default) or one plane sweep over both sides
        (``index_kind="sweep"`` — the kernel ablation's winner on dense
        reducers).  Both return the same Chebyshev-``d`` superset.
        Under ``kernel="numpy"`` the sweep runs its columnar batch
        variant and the grid index builds its buckets columnarly; the
        pair sequence is identical either way.
        """
        decoded = [record.bindings for record in tuple_records]
        if index_kind == "sweep":
            left = [
                (t, bindings[step.anchor_slot][1])
                for t, bindings in enumerate(decoded)
            ]
            right = [(e.payload, e.rect) for e in base_entries]
            by_rid = {e.payload: e.rect for e in base_entries}
            if kernel == "numpy":
                pairs = sweep_pairs_batch(left, right, d)
            else:
                pairs = sweep_pairs(left, right, d)
            for t, rid in pairs:
                bindings = decoded[t]
                yield bindings, rid, by_rid[rid], bindings[step.anchor_slot][1]
            return
        index = make_index(index_kind, base_entries, kernel=kernel)
        for bindings in decoded:
            anchor_rect = bindings[step.anchor_slot][1]
            for entry in index.search(anchor_rect, d):
                yield bindings, entry.payload, entry.rect, anchor_rect

    def reducer(cell_id: int, values, ctx: ReduceContext) -> None:
        tuple_records: list[TupleRecord] = []
        base_entries: list[Entry] = []
        for value in values:
            if value[0] == "T":
                tuple_records.append(value[1])
            else:
                __, rid, rect = value
                base_entries.append(Entry(rect=rect, payload=rid))
        if not tuple_records or not base_entries:
            return
        ops = 0
        for bindings, rid, rect, anchor_rect in candidate_pairs(
            tuple_records, base_entries
        ):
            ops += 1
            if not step.anchor.holds_with(step.new_slot, rect, anchor_rect):
                continue
            # Section 5 dedup: only the cell owning the start of
            # (enlarged anchor) ∩ candidate reports the pair.
            owner = two_way_range_owner(anchor_rect, rect, d, grid)
            if owner != cell_id:
                continue
            if any(bindings[s][0] == rid for s in step.same_dataset):
                continue
            ok = True
            for triple, other in step.checks:
                ops += 1
                if not triple.holds_with(step.new_slot, rect, bindings[other][1]):
                    ok = False
                    break
            if not ok:
                continue
            merged = dict(bindings)
            merged[step.new_slot] = (rid, rect)
            if step.is_final:
                ctx.counter(JOIN_COUNTERS, CNT_OUTPUT_TUPLES)
                ctx.emit(
                    encode_result(
                        slot_order,
                        {s: r for s, (r, __) in merged.items()},
                    )
                )
            else:
                # Encodes the line once, in the TupleRecord constructor —
                # the part-file write reuses it verbatim.
                ctx.emit(TupleRecord(merged))
        ctx.add_compute(ops)

    return reducer
