"""The *All-Replicate* naive multi-way join (Section 6).

One map-reduce job: every rectangle of every relation is replicated with
``f1`` to all cells in the 4th quadrant of its start cell, every reducer
evaluates the full multi-way join over what it received, and the
duplicate-avoidance rule of Section 6.2 keeps exactly one reporter per
output tuple.

Correct but naive: a rectangle near the top-left of the space is shipped
to almost every reducer whether or not it can contribute to any output
tuple, so the shuffle volume — and the per-reducer join work — explodes.
The Table 2 benchmark shows exactly this blow-up.
"""

from __future__ import annotations

from repro.grid.partitioning import GridPartitioning
from repro.grid.transforms import replicate_f1
from repro.joins.base import (
    CNT_AFTER_REPLICATION,
    CNT_MARKED,
    JOIN_COUNTERS,
    Datasets,
    JoinResult,
    JoinStats,
    MultiWayJoinAlgorithm,
    dataset_from_path,
    stage_datasets,
)
from repro.joins.local import LocalJoiner
from repro.joins.reducers import (
    RECT_SHUFFLE_CODEC,
    make_local_join_reducer,
    rect_value,
)
from repro.data.io import RECT_CODEC
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapContext, MapReduceJob
from repro.mapreduce.workflow import Workflow
from repro.query.query import Query

__all__ = ["AllReplicateJoin"]


class AllReplicateJoin(MultiWayJoinAlgorithm):
    """Replicate everything, join everywhere, dedup at the owner cell."""

    name = "all-replicate"

    def __init__(self, index_kind: str = "grid") -> None:
        self.index_kind = index_kind

    def run(
        self,
        query: Query,
        datasets: Datasets,
        grid: GridPartitioning,
        cluster: Cluster | None = None,
    ) -> JoinResult:
        cluster = cluster or Cluster()
        self._check_inputs(query, datasets)
        paths = stage_datasets(cluster, datasets)
        output_path = f"{self.name}/output"
        # Under resume the previous output is a restorable checkpoint.
        if not cluster.resume and cluster.dfs.exists(output_path):
            cluster.dfs.delete(output_path)

        joiner = LocalJoiner(query, self.index_kind)
        job = MapReduceJob(
            name=self.name,
            input_paths=[paths[k] for k in query.dataset_keys],
            output_path=output_path,
            mapper=_make_mapper(grid),
            reducer=make_local_join_reducer(query, grid, joiner),
            num_reducers=grid.num_cells,
            input_codec=RECT_CODEC,
            shuffle_codec=RECT_SHUFFLE_CODEC,
        )
        workflow = Workflow(cluster)
        workflow.run(job)
        tuples = self._collect_tuples(cluster, output_path)
        return JoinResult(
            tuples=tuples,
            stats=JoinStats.from_workflow(workflow.result),
            workflow=workflow.result,
        )


def _make_mapper(grid: GridPartitioning):
    """Replicate every rectangle with ``f1``, tagged with its dataset."""

    def mapper(key: tuple[str, int], record: tuple, ctx: MapContext) -> None:
        path, __ = key
        dataset = dataset_from_path(path)
        rid, rect = record
        ctx.counter(JOIN_COUNTERS, CNT_MARKED)
        for cell_id, __rect in replicate_f1(rect, grid):
            ctx.emit(cell_id, rect_value(dataset, rid, rect))
            ctx.counter(JOIN_COUNTERS, CNT_AFTER_REPLICATION)

    return mapper
