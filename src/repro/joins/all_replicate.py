"""The *All-Replicate* naive multi-way join (Section 6).

One map-reduce job: every rectangle of every relation is replicated with
``f1`` to all cells in the 4th quadrant of its start cell, every reducer
evaluates the full multi-way join over what it received, and the
duplicate-avoidance rule of Section 6.2 keeps exactly one reporter per
output tuple.

Correct but naive: a rectangle near the top-left of the space is shipped
to almost every reducer whether or not it can contribute to any output
tuple, so the shuffle volume — and the per-reducer join work — explodes.
The Table 2 benchmark shows exactly this blow-up.
"""

from __future__ import annotations

from repro.grid.partitioning import GridPartitioning
from repro.grid.transforms import replicate_f1
from repro.joins.base import (
    CNT_AFTER_REPLICATION,
    CNT_MARKED,
    JOIN_COUNTERS,
    Datasets,
    JoinResult,
    JoinStats,
    MultiWayJoinAlgorithm,
    dataset_from_path,
    stage_datasets,
)
from repro.joins.local import LocalJoiner
from repro.joins.reducers import (
    RECT_SHUFFLE_CODEC,
    make_local_join_reducer,
    rect_value,
)
from repro.data.io import RECT_CODEC
from repro.kernels import numpy_or_none
from repro.kernels import transforms as _kt
from repro.kernels.batch import RectBatch
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapContext, MapReduceJob
from repro.mapreduce.workflow import Workflow
from repro.query.query import Query

__all__ = ["AllReplicateJoin"]


class AllReplicateJoin(MultiWayJoinAlgorithm):
    """Replicate everything, join everywhere, dedup at the owner cell."""

    name = "all-replicate"

    def __init__(self, index_kind: str = "grid") -> None:
        self.index_kind = index_kind

    def run(
        self,
        query: Query,
        datasets: Datasets,
        grid: GridPartitioning,
        cluster: Cluster | None = None,
    ) -> JoinResult:
        cluster = cluster or Cluster()
        self._check_inputs(query, datasets)
        paths = stage_datasets(cluster, datasets)
        output_path = f"{self.name}/output"
        # Under resume the previous output is a restorable checkpoint.
        if not cluster.resume and cluster.dfs.exists(output_path):
            cluster.dfs.delete(output_path)

        kernel = cluster.resolved_kernel
        joiner = LocalJoiner(query, self.index_kind, kernel=kernel)
        job = MapReduceJob(
            name=self.name,
            input_paths=[paths[k] for k in query.dataset_keys],
            output_path=output_path,
            mapper=_make_mapper(grid),
            reducer=make_local_join_reducer(query, grid, joiner, kernel=kernel),
            num_reducers=grid.num_cells,
            input_codec=RECT_CODEC,
            shuffle_codec=RECT_SHUFFLE_CODEC,
            batch_mapper=_make_batch_mapper(grid) if kernel == "numpy" else None,
        )
        workflow = Workflow(cluster)
        workflow.run(job)
        tuples = self._collect_tuples(cluster, output_path)
        return JoinResult(
            tuples=tuples,
            stats=JoinStats.from_workflow(workflow.result),
            workflow=workflow.result,
        )


def _make_mapper(grid: GridPartitioning):
    """Replicate every rectangle with ``f1``, tagged with its dataset."""

    def mapper(key: tuple[str, int], record: tuple, ctx: MapContext) -> None:
        path, __ = key
        dataset = dataset_from_path(path)
        rid, rect = record
        ctx.counter(JOIN_COUNTERS, CNT_MARKED)
        for cell_id, __rect in replicate_f1(rect, grid):
            ctx.emit(cell_id, rect_value(dataset, rid, rect))
            ctx.counter(JOIN_COUNTERS, CNT_AFTER_REPLICATION)

    return mapper


def _make_batch_mapper(grid: GridPartitioning):
    """Columnar twin of :func:`_make_mapper`.

    One vectorized 4th-quadrant mask covers the whole split — on the
    cached columnar ``batch`` when the engine staged one — and the
    flattened per-record cell lists go out in a single ``emit_batch``
    call: the exact pairs, per-bucket order, byte totals and join
    counters of the scalar mapper.
    """
    np = numpy_or_none()

    def batch_mapper(split_entries, ctx: MapContext, batch=None) -> None:
        if not split_entries:
            return
        if batch is None:
            batch = RectBatch.from_pairs(
                np, (rec for __, __, rec, __ in split_entries)
            )
        cids, counts = _kt.quadrant_cell_lists(np, grid, batch)
        ds_cache: dict[str, str] = {}
        values = []
        sizes = []
        for path, __lineno, (rid, rect), __nb in split_entries:
            dataset = ds_cache.get(path)
            if dataset is None:
                dataset = ds_cache[path] = dataset_from_path(path)
            value = rect_value(dataset, rid, rect)
            values.append(value)
            sizes.append(ctx.pair_nbytes(0, value))
        ctx.counter(JOIN_COUNTERS, CNT_MARKED, len(split_entries))
        ctx.emit_batch(cids, counts, values, sizes)
        ctx.counter(JOIN_COUNTERS, CNT_AFTER_REPLICATION, len(cids))

    return batch_mapper
