"""Brute-force in-memory reference join — the correctness oracle.

A deliberately naive evaluator, structured differently from
:class:`~repro.joins.local.LocalJoiner` (plain nested loops in query
slot order, no spatial index, no join-graph planning) so that the
map-reduce algorithms and the local joiner can both be validated against
an independent implementation.  Quadratic and proud of it; use only at
test scale.
"""

from __future__ import annotations

from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.query.query import Query

__all__ = ["brute_force_join"]


def brute_force_join(
    query: Query, datasets: dict[str, list[tuple[int, Rect]]]
) -> set[tuple[int, ...]]:
    """All satisfying rid tuples, in query slot order."""
    slots = query.slots
    missing = [k for k in query.dataset_keys if k not in datasets]
    if missing:
        raise JoinError(f"query references missing datasets: {missing}")
    bags = [datasets[query.dataset_of(slot)] for slot in slots]

    # Predicate checks scheduled at the latest slot they touch.
    checks_at: list[list] = [[] for __ in slots]
    position = {slot: i for i, slot in enumerate(slots)}
    for t in query.triples:
        i, j = position[t.left], position[t.right]
        late, early = (i, j) if i > j else (j, i)
        checks_at[late].append((t.predicate, early, late == i))

    # Distinctness partners per slot (same dataset, earlier position).
    distinct_at: list[list[int]] = [
        [
            j
            for j in range(i)
            if query.dataset_of(slots[j]) == query.dataset_of(slots[i])
        ]
        for i in range(len(slots))
    ]

    results: set[tuple[int, ...]] = set()
    chosen: list[tuple[int, Rect]] = []

    def recurse(depth: int) -> None:
        if depth == len(slots):
            results.add(tuple(rid for rid, __ in chosen))
            return
        for rid, rect in bags[depth]:
            if any(chosen[j][0] == rid for j in distinct_at[depth]):
                continue
            ok = True
            for predicate, early, left_is_late in checks_at[depth]:
                other = chosen[early][1]
                # Predicates are symmetric; orientation kept for clarity.
                pair = (rect, other) if left_is_late else (other, rect)
                if not predicate.holds(*pair):
                    ok = False
                    break
            if not ok:
                continue
            chosen.append((rid, rect))
            recurse(depth + 1)
            chosen.pop()

    recurse(0)
    return results
