"""The local (in-reducer) multi-way join.

Every reducer of All-Replicate, of Controlled-Replicate's second round
and of the 2-way joins ends up with a bag of rectangles per slot and must
enumerate the slot assignments satisfying every query predicate.  This
module implements that enumeration as a backtracking search over a
connected slot order: each newly bound slot is generated from a spatial
index probe through one already-bound edge (the *anchor*) and checked
against the remaining bound edges.

Self-join semantics: slots reading the same dataset must bind distinct
record ids (a road triple is three different roads); symmetric
assignments count separately, as in a relational self-join of aliases.

The search also reports the number of candidate checks it performed,
which the reducers feed to the cost model as compute work — this is how
All-Replicate's enormous per-reducer joins show up in simulated time.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.index import Entry, make_index
from repro.query.graph import JoinGraph
from repro.query.query import Query, Triple

__all__ = ["LocalJoiner", "Assignment"]

#: One output assignment: slot -> (rid, rect).
Assignment = dict[str, tuple[int, Rect]]


@dataclass(frozen=True)
class _SlotPlan:
    """How one slot of the evaluation order is bound."""

    slot: str
    #: the edge used to generate candidates (None for the first slot)
    anchor: Triple | None
    #: the already-bound slot at the anchor's other end
    anchor_slot: str | None
    #: further edges to already-bound slots, checked per candidate
    checks: tuple[tuple[Triple, str], ...]
    #: earlier slots reading the same dataset (distinctness)
    same_dataset: tuple[str, ...]


class LocalJoiner:
    """Backtracking multi-way join evaluator bound to one query."""

    def __init__(self, query: Query, index_kind: str = "grid") -> None:
        self.query = query
        self.index_kind = index_kind
        graph = JoinGraph(query)
        order = graph.connected_order()
        plans: list[_SlotPlan] = []
        bound: list[str] = []
        for slot in order:
            anchor: Triple | None = None
            anchor_slot: str | None = None
            checks: list[tuple[Triple, str]] = []
            for t in query.triples_touching(slot):
                other = t.other(slot)
                if other not in bound:
                    continue
                if anchor is None:
                    anchor, anchor_slot = t, other
                else:
                    checks.append((t, other))
            if bound and anchor is None:  # pragma: no cover - connectivity bars this
                raise JoinError(f"slot {slot!r} not connected to bound slots")
            same_dataset = tuple(
                s for s in bound if query.dataset_of(s) == query.dataset_of(slot)
            )
            plans.append(
                _SlotPlan(
                    slot=slot,
                    anchor=anchor,
                    anchor_slot=anchor_slot,
                    checks=tuple(checks),
                    same_dataset=same_dataset,
                )
            )
            bound.append(slot)
        self.plans = tuple(plans)
        self.order = order

    # ------------------------------------------------------------------
    def enumerate(
        self, rects_by_slot: dict[str, list[tuple[int, Rect]]]
    ) -> tuple[list[Assignment], int]:
        """All satisfying assignments over the given per-slot bags.

        Returns ``(assignments, candidate_checks)``; the second value is
        the compute-cost measure reported to the engine.
        """
        missing = [p.slot for p in self.plans if p.slot not in rects_by_slot]
        if missing:
            raise JoinError(f"missing slot bags: {missing}")
        if any(not rects_by_slot[p.slot] for p in self.plans):
            return [], 0

        # Indexes are built lazily, on a slot's first probe: when the
        # search never reaches a depth (every candidate of an earlier
        # slot was rejected), that slot's bag is never indexed at all.
        # An unbuilt index has zero probes, so the compute-cost sum
        # below is unchanged either way.
        indexes: dict[str, Any] = {}
        index_kind = self.index_kind

        def index_for(slot: str):
            idx = indexes.get(slot)
            if idx is None:
                idx = make_index(
                    index_kind,
                    [Entry(rect=r, payload=rid) for rid, r in rects_by_slot[slot]],
                )
                indexes[slot] = idx
            return idx

        checks = 0
        results: list[Assignment] = []
        assignment: Assignment = {}
        plans = self.plans
        nplans = len(plans)

        def bind(depth: int) -> None:
            nonlocal checks
            if depth == nplans:
                results.append(dict(assignment))
                return
            plan = plans[depth]
            slot = plan.slot
            anchor = plan.anchor
            if anchor is None:
                anchor_rect = None
                anchor_holds = None
                candidates: Iterator[tuple[int, Rect]] = iter(
                    rects_by_slot[slot]
                )
            else:
                anchor_rect = assignment[plan.anchor_slot][1]
                anchor_holds = anchor.holds_with
                candidates = (
                    (e.payload, e.rect)
                    for e in index_for(slot).search(
                        anchor_rect, anchor.predicate.distance
                    )
                )
            # Bindings of earlier slots are fixed for this whole loop —
            # look them up once, not per candidate.
            bound_rids = [assignment[s][0] for s in plan.same_dataset]
            bound_checks = [(t, assignment[o][1]) for t, o in plan.checks]
            next_depth = depth + 1
            for rid, rect in candidates:
                checks += 1
                if anchor_holds is not None and not anchor_holds(
                    slot, rect, anchor_rect
                ):
                    continue
                if rid in bound_rids:
                    continue
                ok = True
                for triple, other_rect in bound_checks:
                    checks += 1
                    if not triple.holds_with(slot, rect, other_rect):
                        ok = False
                        break
                if not ok:
                    continue
                assignment[slot] = (rid, rect)
                bind(next_depth)
                del assignment[slot]

        bind(0)
        # Index probe work is part of the reducer's compute cost: the
        # nested-loop baseline examines every entry per probe while the
        # spatial indexes touch only bucket/node candidates.
        checks += sum(idx.probes for idx in indexes.values())
        return results, checks
