"""The local (in-reducer) multi-way join.

Every reducer of All-Replicate, of Controlled-Replicate's second round
and of the 2-way joins ends up with a bag of rectangles per slot and must
enumerate the slot assignments satisfying every query predicate.  This
module implements that enumeration as a backtracking search over a
connected slot order: each newly bound slot is generated from a spatial
index probe through one already-bound edge (the *anchor*) and checked
against the remaining bound edges.

Self-join semantics: slots reading the same dataset must bind distinct
record ids (a road triple is three different roads); symmetric
assignments count separately, as in a relational self-join of aliases.

The search also reports the number of candidate checks it performed,
which the reducers feed to the cost model as compute work — this is how
All-Replicate's enormous per-reducer joins show up in simulated time.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.index import make_index
from repro.kernels import numpy_or_none
from repro.kernels.batch import RectBatch
from repro.kernels.predicates import pair_mask, supports_triples, triple_mask
from repro.query.graph import JoinGraph
from repro.query.query import Query, Triple

__all__ = ["LocalJoiner", "Assignment", "FrontierResult"]

#: One output assignment: slot -> (rid, rect).
Assignment = dict[str, tuple[int, Rect]]


class FrontierResult:
    """Columnar form of a completed frontier enumeration.

    Row ``i`` of the result set is the assignment
    ``{slot: bags[slot][positions[slot][i]] for slot in slots}``; the
    parallel ``batches`` carry each slot's coordinate columns so a
    caller can compute per-row aggregates (e.g. the dedup owner cell)
    without materializing assignment dicts.  Rows are in the exact
    depth-first order :meth:`LocalJoiner.enumerate` would produce.
    """

    __slots__ = ("slots", "bags", "positions", "batches", "count")

    def __init__(self, slots, bags, positions, batches) -> None:
        self.slots = slots
        self.bags = bags
        self.positions = positions
        self.batches = batches
        self.count = len(positions[slots[0]]) if slots else 0


@dataclass(frozen=True)
class _SlotPlan:
    """How one slot of the evaluation order is bound."""

    slot: str
    #: the edge used to generate candidates (None for the first slot)
    anchor: Triple | None
    #: the already-bound slot at the anchor's other end
    anchor_slot: str | None
    #: further edges to already-bound slots, checked per candidate
    checks: tuple[tuple[Triple, str], ...]
    #: earlier slots reading the same dataset (distinctness)
    same_dataset: tuple[str, ...]


class LocalJoiner:
    """Backtracking multi-way join evaluator bound to one query."""

    def __init__(
        self, query: Query, index_kind: str = "grid", kernel: str = "python"
    ) -> None:
        self.query = query
        self.index_kind = index_kind
        self.kernel = kernel
        graph = JoinGraph(query)
        order = graph.connected_order()
        plans: list[_SlotPlan] = []
        bound: list[str] = []
        for slot in order:
            anchor: Triple | None = None
            anchor_slot: str | None = None
            checks: list[tuple[Triple, str]] = []
            for t in query.triples_touching(slot):
                other = t.other(slot)
                if other not in bound:
                    continue
                if anchor is None:
                    anchor, anchor_slot = t, other
                else:
                    checks.append((t, other))
            if bound and anchor is None:  # pragma: no cover - connectivity bars this
                raise JoinError(f"slot {slot!r} not connected to bound slots")
            same_dataset = tuple(
                s for s in bound if query.dataset_of(s) == query.dataset_of(slot)
            )
            plans.append(
                _SlotPlan(
                    slot=slot,
                    anchor=anchor,
                    anchor_slot=anchor_slot,
                    checks=tuple(checks),
                    same_dataset=same_dataset,
                )
            )
            bound.append(slot)
        self.plans = tuple(plans)
        self.order = order
        # Columnar fast path: per-depth flag — an anchored depth whose
        # anchor and check predicates all have vectorized masks can
        # filter the whole candidate set in one pass.  Depths that fail
        # the test (or non-grid indexes, or non-integer rids when a
        # distinctness filter is needed) fall back to the scalar loop.
        self._np = numpy_or_none() if kernel == "numpy" else None
        if self._np is not None:
            self._vec_plans = tuple(
                p.anchor is not None
                and supports_triples([p.anchor, *(t for t, __ in p.checks)])
                for p in plans
            )
        else:
            self._vec_plans = tuple(False for __ in plans)
        # Frontier (level-synchronous) evaluation: when every anchored
        # depth is vectorizable, the whole search runs breadth-first over
        # arrays of partial assignments — one bulk index probe and one
        # mask pass per depth instead of one probe per parent binding.
        self._frontier_ok = self._np is not None and len(plans) >= 2 and all(
            self._vec_plans[1:]
        )

    # ------------------------------------------------------------------
    def enumerate(
        self, rects_by_slot: dict[str, list[tuple[int, Rect]]]
    ) -> tuple[list[Assignment], int]:
        """All satisfying assignments over the given per-slot bags.

        Returns ``(assignments, candidate_checks)``; the second value is
        the compute-cost measure reported to the engine.
        """
        __, results, checks = self._enumerate_impl(rects_by_slot, False)
        return results, checks

    def enumerate_columnar(
        self, rects_by_slot: dict[str, list[tuple[int, Rect]]]
    ) -> tuple[FrontierResult | None, list[Assignment], int]:
        """Like :meth:`enumerate`, but keep the result columnar when the
        frontier path completed.

        Returns ``(columnar, assignments, candidate_checks)``.  When
        ``columnar`` is not None it holds every result row and
        ``assignments`` is empty; otherwise (scalar search, or a
        mid-frontier fallback) the rows are in ``assignments`` as usual.
        Either way ``candidate_checks`` is identical to
        :meth:`enumerate`'s.
        """
        return self._enumerate_impl(rects_by_slot, True)

    def _enumerate_impl(
        self,
        rects_by_slot: dict[str, list[tuple[int, Rect]]],
        want_columnar: bool,
    ) -> tuple[FrontierResult | None, list[Assignment], int]:
        missing = [p.slot for p in self.plans if p.slot not in rects_by_slot]
        if missing:
            raise JoinError(f"missing slot bags: {missing}")
        if any(not rects_by_slot[p.slot] for p in self.plans):
            return None, [], 0

        # Indexes are built lazily, on a slot's first probe: when the
        # search never reaches a depth (every candidate of an earlier
        # slot was rejected), that slot's bag is never indexed at all.
        # An unbuilt index has zero probes, so the compute-cost sum
        # below is unchanged either way.
        indexes: dict[str, Any] = {}
        index_kind = self.index_kind
        kernel = self.kernel

        def index_for(slot: str):
            idx = indexes.get(slot)
            if idx is None:
                idx = make_index(
                    index_kind, kernel=kernel, pairs=rects_by_slot[slot]
                )
                indexes[slot] = idx
            return idx

        checks = 0
        results: list[Assignment] = []
        assignment: Assignment = {}
        plans = self.plans
        nplans = len(plans)
        np = self._np
        vec_plans = self._vec_plans

        # The same rectangle is re-probed under every parent binding it
        # survives with (a slot's anchor rect repeats across the
        # backtracking tree), so probe results — and, when no per-parent
        # filter applies, the full survivor list — are memoized per
        # (slot, anchor rect).  The accounting stays per-probe: a cache
        # hit still charges the scanned bucket slots and the per-
        # candidate anchor checks, exactly as the scalar re-probe would.
        probe_cache: dict[tuple[str, int], tuple] = {}

        def bind_vector(depth: int, plan: _SlotPlan, idx) -> None:
            """One vectorized probe: filter the whole candidate set with
            array masks, then recurse scalar over the survivors.

            Check accounting matches the scalar loop exactly: one check
            per probe candidate for the anchor predicate, then — per
            bound-edge check, in plan order — one check for every
            candidate still alive when that check runs (the scalar loop
            breaks on the first failed edge).
            """
            nonlocal checks
            slot = plan.slot
            anchor_rect = assignment[plan.anchor_slot][1]
            key = (slot, id(anchor_rect))
            hit = probe_cache.get(key)
            if hit is None:
                matched, scanned = idx.search_batch(
                    anchor_rect, plan.anchor.predicate.distance
                )
                n_cand = len(matched)
                alive = survivors = None
                if n_cand:
                    alive = triple_mask(
                        np, plan.anchor, slot, idx.batch, matched, anchor_rect
                    )
                    if not plan.same_dataset and not plan.checks:
                        entry_at = idx.entry_at
                        survivors = [
                            (e.payload, e.rect)
                            for e in map(entry_at, matched[alive].tolist())
                        ]
                else:
                    survivors = []
                hit = (n_cand, scanned, matched, alive, survivors)
                probe_cache[key] = hit
            else:
                idx.probes += hit[1]
            n_cand, __, matched, alive, survivors = hit
            checks += n_cand
            next_depth = depth + 1
            if survivors is not None:
                for rid_rect in survivors:
                    assignment[slot] = rid_rect
                    bind(next_depth)
                    del assignment[slot]
                return
            batch = idx.batch
            for s in plan.same_dataset:
                alive = alive & (idx.rid_array[matched] != assignment[s][0])
            for triple, other_slot in plan.checks:
                n_alive = int(np.count_nonzero(alive))
                checks += n_alive
                if not n_alive:
                    return
                # Non-inplace: ``alive`` may be the cached anchor mask.
                alive = alive & triple_mask(
                    np, triple, slot, batch, matched, assignment[other_slot][1]
                )
            entry_at = idx.entry_at
            for eidx in matched[alive].tolist():
                e = entry_at(eidx)
                assignment[slot] = (e.payload, e.rect)
                bind(next_depth)
                del assignment[slot]

        def bind(depth: int) -> None:
            nonlocal checks
            if depth == nplans:
                results.append(dict(assignment))
                return
            plan = plans[depth]
            slot = plan.slot
            anchor = plan.anchor
            if vec_plans[depth]:
                idx = index_for(slot)
                if getattr(idx, "batch", None) is not None and (
                    not plan.same_dataset or idx.rid_array is not None
                ):
                    bind_vector(depth, plan, idx)
                    return
            if anchor is None:
                anchor_rect = None
                anchor_holds = None
                candidates: Iterator[tuple[int, Rect]] = iter(
                    rects_by_slot[slot]
                )
            else:
                anchor_rect = assignment[plan.anchor_slot][1]
                anchor_holds = anchor.holds_with
                candidates = (
                    (e.payload, e.rect)
                    for e in index_for(slot).search(
                        anchor_rect, anchor.predicate.distance
                    )
                )
            # Bindings of earlier slots are fixed for this whole loop —
            # look them up once, not per candidate.
            bound_rids = [assignment[s][0] for s in plan.same_dataset]
            bound_checks = [(t, assignment[o][1]) for t, o in plan.checks]
            next_depth = depth + 1
            for rid, rect in candidates:
                checks += 1
                if anchor_holds is not None and not anchor_holds(
                    slot, rect, anchor_rect
                ):
                    continue
                if rid in bound_rids:
                    continue
                ok = True
                for triple, other_rect in bound_checks:
                    checks += 1
                    if not triple.holds_with(slot, rect, other_rect):
                        ok = False
                        break
                if not ok:
                    continue
                assignment[slot] = (rid, rect)
                bind(next_depth)
                del assignment[slot]

        # ------------------------------------------------------------------
        # Frontier evaluation: breadth-first over the same search tree.
        # The frontier at depth k is a set of parallel position arrays —
        # one per bound slot — holding every partial assignment that
        # survived depths 0..k-1, in depth-first visit order.  Expanding
        # all parents of a depth at once turns the per-parent probes into
        # one bulk CSR gather and the per-candidate predicate loop into a
        # few array masks.
        #
        # Equivalence to the scalar search: parents are expanded in
        # frontier order with each parent's candidates in scan order, so
        # by induction the next frontier — and ultimately the result
        # list — is in depth-first order.  ``checks`` totals are sums of
        # per-candidate contributions that do not depend on visit order
        # (one per bucket-passed candidate, plus one per still-alive
        # candidate per bound-edge check), and ``probes`` is the same
        # scanned-slot total the per-parent searches charge.
        rid_arrays: dict[str, Any] = {}

        def rid_array_for(slot: str):
            arr = rid_arrays.get(slot, rid_arrays)
            if arr is rid_arrays:
                idx = indexes.get(slot)
                if idx is not None:
                    arr = idx.rid_array
                else:
                    try:
                        arr = np.array(
                            [rid for rid, __ in rects_by_slot[slot]],
                            dtype=np.int64,
                        )
                    except (TypeError, ValueError, OverflowError):
                        arr = None
                rid_arrays[slot] = arr
            return arr

        def run_rows(depth: int, frontier: dict[str, Any]) -> None:
            """Resume the scalar search at ``depth`` for every frontier
            row, in order (used when an index can't serve the fast path —
            non-grid kind, or non-integer rids under distinctness)."""
            bound_slots = [p.slot for p in plans[:depth]]
            cols = [
                (s, rects_by_slot[s], frontier[s].tolist()) for s in bound_slots
            ]
            for i in range(len(cols[0][2])):
                for s, bag, poss in cols:
                    assignment[s] = bag[poss[i]]
                bind(depth)
            for s in bound_slots:
                assignment.pop(s, None)

        def run_frontier():
            """Returns ``(frontier, batches)`` on completion (``{}``s for
            an emptied frontier), or None after a mid-depth fallback to
            :func:`run_rows` (rows land in ``results``)."""
            nonlocal checks
            slot0 = plans[0].slot
            bag0 = rects_by_slot[slot0]
            m0 = len(bag0)
            checks += m0
            frontier: dict[str, Any] = {slot0: np.arange(m0, dtype=np.int64)}
            batches: dict[str, RectBatch] = {
                slot0: RectBatch.from_pairs(np, bag0)
            }
            for depth in range(1, nplans):
                plan = plans[depth]
                slot = plan.slot
                if not len(frontier[slot0]):
                    return {}, {}
                idx = index_for(slot)
                ok = (
                    getattr(idx, "batch", None) is not None
                    and hasattr(idx, "probe_frontier")
                )
                if ok and plan.same_dataset:
                    ok = idx.rid_array is not None and all(
                        rid_array_for(s) is not None for s in plan.same_dataset
                    )
                if not ok:
                    run_rows(depth, frontier)
                    return None
                abatch = batches[plan.anchor_slot]
                apos = frontier[plan.anchor_slot]
                p_flat, e_flat = idx.probe_frontier(
                    abatch, apos, plan.anchor.predicate.distance
                )
                checks += len(e_flat)
                alive = pair_mask(
                    np, plan.anchor, slot, idx.batch, e_flat, abatch, apos[p_flat]
                )
                for s in plan.same_dataset:
                    alive = alive & (
                        idx.rid_array[e_flat]
                        != rid_array_for(s)[frontier[s][p_flat]]
                    )
                for triple, other_slot in plan.checks:
                    n_alive = int(np.count_nonzero(alive))
                    checks += n_alive
                    if not n_alive:
                        break
                    alive = alive & pair_mask(
                        np,
                        triple,
                        slot,
                        idx.batch,
                        e_flat,
                        batches[other_slot],
                        frontier[other_slot][p_flat],
                    )
                keep = p_flat[alive]
                frontier = {s: arr[keep] for s, arr in frontier.items()}
                frontier[slot] = e_flat[alive]
                batches[slot] = idx.batch
            return frontier, batches

        columnar: FrontierResult | None = None
        if self._frontier_ok:
            done = run_frontier()
            if done is not None:
                frontier, batches = done
                if want_columnar:
                    slots = tuple(p.slot for p in plans) if frontier else ()
                    columnar = FrontierResult(
                        slots,
                        {s: rects_by_slot[s] for s in slots},
                        frontier,
                        batches,
                    )
                elif frontier:
                    cols = [
                        (p.slot, rects_by_slot[p.slot], frontier[p.slot].tolist())
                        for p in plans
                    ]
                    for i in range(len(cols[0][2])):
                        results.append(
                            {s: bag[poss[i]] for s, bag, poss in cols}
                        )
        else:
            bind(0)
        # Index probe work is part of the reducer's compute cost: the
        # nested-loop baseline examines every entry per probe while the
        # spatial indexes touch only bucket/node candidates.
        checks += sum(idx.probes for idx in indexes.values())
        return columnar, results, checks
