"""The plain 2-way spatial joins of Section 5.

A 2-way join *is* a single-step cascade, so these helpers wrap
:class:`~repro.joins.cascade.CascadeJoin` with a two-slot query:

* overlap joins split both relations and dedup via the start-point of
  the overlap area (Section 5.2);
* range joins split one relation, route the other through its
  ``d``-enlarged rectangle and dedup via the start-point of
  ``r1^e(d) ∩ r2`` (Section 5.3).

Both return the standard :class:`~repro.joins.base.JoinResult`, with
output tuples ``(rid1, rid2)``.
"""

from __future__ import annotations

from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.base import JoinResult
from repro.joins.cascade import CascadeJoin
from repro.mapreduce.engine import Cluster
from repro.query.predicates import Overlap, Range
from repro.query.query import Query, Triple

__all__ = ["two_way_overlap", "two_way_range", "two_way_join"]


def two_way_join(
    predicate,
    r1: list[tuple[int, Rect]],
    r2: list[tuple[int, Rect]],
    grid: GridPartitioning,
    cluster: Cluster | None = None,
    *,
    self_join: bool = False,
) -> JoinResult:
    """Run one 2-way join with an arbitrary predicate.

    With ``self_join=True``, ``r2`` is ignored and both slots read
    ``r1`` (pairs of distinct rids, both orientations reported).
    """
    if self_join:
        query = Query(
            [Triple(predicate, "A", "B")], datasets={"A": "R", "B": "R"}
        )
        datasets = {"R": r1}
    else:
        query = Query([Triple(predicate, "R1", "R2")])
        datasets = {"R1": r1, "R2": r2}
    return CascadeJoin().run(query, datasets, grid, cluster)


def two_way_overlap(
    r1: list[tuple[int, Rect]],
    r2: list[tuple[int, Rect]],
    grid: GridPartitioning,
    cluster: Cluster | None = None,
    **kwargs,
) -> JoinResult:
    """``Overlap(R1, R2)``: all intersecting cross pairs."""
    return two_way_join(Overlap(), r1, r2, grid, cluster, **kwargs)


def two_way_range(
    r1: list[tuple[int, Rect]],
    r2: list[tuple[int, Rect]],
    d: float,
    grid: GridPartitioning,
    cluster: Cluster | None = None,
    **kwargs,
) -> JoinResult:
    """``Range(R1, R2, d)``: all cross pairs within Euclidean distance d."""
    return two_way_join(Range(d), r1, r2, grid, cluster, **kwargs)
