"""EXPLAIN for multi-way spatial joins: how would each algorithm route?

``explain(query, datasets, grid)`` produces a human-readable plan
summary without running any join:

* the query's join graph and per-slot C-Rep-L replication bounds,
* the planned 2-way Cascade order with estimated intermediate sizes,
* All-Replicate's expected communication blow-up (the mean ``|C4|``
  factor of the grid),
* per-dataset profiles feeding the estimates.

The CLI exposes it as ``python -m repro explain``.
"""

from __future__ import annotations

from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.limits import ReplicationLimits
from repro.optimizer.planner import plan_cascade_order
from repro.optimizer.stats import profiles_for_query
from repro.query.graph import JoinGraph
from repro.query.query import Query

__all__ = ["explain"]


def _mean_c4(grid: GridPartitioning) -> float:
    total = sum(
        grid.fourth_quadrant_size(c) for c in grid.cells()
    )
    return total / grid.num_cells


def explain(
    query: Query,
    datasets: dict[str, list[tuple[int, Rect]]],
    grid: GridPartitioning,
) -> str:
    """A multi-section plan report for the query on this workload."""
    graph = JoinGraph(query)
    profiles = profiles_for_query(query, datasets)
    d_max = max(
        (r.diagonal for rects in datasets.values() for __, r in rects),
        default=0.0,
    )
    lines: list[str] = []
    lines.append(f"query: {query}")
    lines.append(
        f"grid:  {grid.rows}x{grid.cols} cells over "
        f"x[{grid.space.x_min:g}, {grid.space.x_max:g}] "
        f"y[{grid.space.y_min:g}, {grid.space.y_max:g}]"
    )
    lines.append("")

    lines.append("datasets:")
    for name in query.dataset_keys:
        rects = datasets.get(name, [])
        slots = ", ".join(query.slots_of_dataset(name))
        profile = next(
            p for s, p in profiles.items() if query.dataset_of(s) == name
        )
        lines.append(
            f"  {name}: {len(rects)} rectangles "
            f"(mean {profile.mean_l:.1f} x {profile.mean_b:.1f}) "
            f"at slots [{slots}]"
        )
    lines.append("")

    lines.append("join graph:")
    for t in query.triples:
        lines.append(f"  {t}")
    lines.append("")

    # --- Cascade plan --------------------------------------------------
    plan = plan_cascade_order(query, datasets)
    lines.append("2-way Cascade plan (optimizer order):")
    lines.append(f"  order: {' -> '.join(plan.order)}")
    for i, est in enumerate(plan.estimated_sizes):
        suffix = "  (final output)" if i == len(plan.estimated_sizes) - 1 else ""
        lines.append(f"  step {i + 1} estimated tuples: {est:,.0f}{suffix}")
    lines.append(f"  jobs: {query.num_slots - 1}")
    lines.append("")

    # --- All-Replicate -------------------------------------------------
    n_total = sum(len(datasets.get(k, [])) for k in query.dataset_keys)
    c4 = _mean_c4(grid)
    lines.append("All-Replicate:")
    lines.append(
        f"  1 job; every rectangle to its 4th quadrant: "
        f"~{n_total} x {c4:.1f} = {n_total * c4:,.0f} communicated rectangles"
    )
    lines.append("")

    # --- Controlled-Replicate -------------------------------------------
    limits = ReplicationLimits.from_query(query, d_max)
    bounds = graph.replication_bounds(d_max)
    lines.append("Controlled-Replicate (2 jobs: mark + join):")
    lines.append(f"  observed d_max = {d_max:.1f}")
    lines.append("  C-Rep-L replication bounds:")
    for slot in query.slots:
        lines.append(f"    slot {slot}: {bounds[slot]:.1f}")
    for name in query.dataset_keys:
        lines.append(
            f"    dataset {name}: {limits.bound_for(name):.1f} "
            f"({limits.metric})"
        )
    return "\n".join(lines)
