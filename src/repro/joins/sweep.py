"""Plane-sweep pairwise join kernel.

The classical in-memory spatial-join kernel (Brinkhoff et al.; the
partition-based spatial-merge join runs it inside every partition —
exactly the position the grid reducers are in here).  Both inputs are
sorted by ``x_min``; a sweep over the merged x-order maintains, for each
side, the set of rectangles whose x-interval is still *active*, so each
rectangle is checked only against partners overlapping it in x.

``sweep_pairs`` yields candidate pairs with per-axis (Chebyshev)
distance ≤ d — the same superset contract the spatial indexes honour —
and the caller applies the exact predicate.  On sorted-friendly inputs
it does no per-probe structure work at all, which is why it wins the
2-way kernel benchmark at high output densities.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import JoinError
from repro.geometry.rectangle import Rect

__all__ = ["sweep_pairs", "sweep_join_count"]


def sweep_pairs(
    left: list[tuple[Any, Rect]],
    right: list[tuple[Any, Rect]],
    d: float = 0.0,
) -> Iterator[tuple[Any, Any]]:
    """Candidate pairs ``(left_id, right_id)`` within Chebyshev ``d``.

    Yields each qualifying pair exactly once, in no particular order.
    """
    if d < 0:
        raise JoinError(f"distance must be non-negative, got {d}")
    if not left or not right:
        return

    ls = sorted(left, key=lambda p: p[1].x_min)
    rs = sorted(right, key=lambda p: p[1].x_min)

    # Active lists hold entries whose (d-padded) x-interval has started
    # and may still intersect upcoming partners.  Lazy pruning: stale
    # entries are swept out when scanned.
    active_l: list[tuple[Any, Rect]] = []
    active_r: list[tuple[Any, Rect]] = []
    i = j = 0

    def y_close(a: Rect, b: Rect) -> bool:
        return a.y_min - d <= b.y_max and b.y_min - d <= a.y_max

    while i < len(ls) or j < len(rs):
        take_left = j >= len(rs) or (
            i < len(ls) and ls[i][1].x_min <= rs[j][1].x_min
        )
        if take_left:
            lid, lrect = ls[i]
            i += 1
            threshold = lrect.x_min - d
            keep = []
            for rid, rrect in active_r:
                if rrect.x_max < threshold:
                    continue  # expired in x; prune
                keep.append((rid, rrect))
                if y_close(lrect, rrect):
                    yield (lid, rid)
            active_r[:] = keep
            active_l.append((lid, lrect))
        else:
            rid, rrect = rs[j]
            j += 1
            threshold = rrect.x_min - d
            keep = []
            for lid, lrect in active_l:
                if lrect.x_max < threshold:
                    continue
                keep.append((lid, lrect))
                if y_close(lrect, rrect):
                    yield (lid, rid)
            active_l[:] = keep
            active_r.append((rid, rrect))


def sweep_join_count(
    left: list[tuple[Any, Rect]],
    right: list[tuple[Any, Rect]],
    d: float = 0.0,
) -> int:
    """Number of candidate pairs (for benchmarks and tests)."""
    return sum(1 for __ in sweep_pairs(left, right, d))
