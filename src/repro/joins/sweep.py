"""Plane-sweep pairwise join kernel.

The classical in-memory spatial-join kernel (Brinkhoff et al.; the
partition-based spatial-merge join runs it inside every partition —
exactly the position the grid reducers are in here).  Both inputs are
sorted by ``x_min``; a sweep over the merged x-order maintains, for each
side, the set of rectangles whose x-interval is still *active*, so each
rectangle is checked only against partners overlapping it in x.

``sweep_pairs`` yields candidate pairs with per-axis (Chebyshev)
distance ≤ d — the same superset contract the spatial indexes honour —
and the caller applies the exact predicate.  On sorted-friendly inputs
it does no per-probe structure work at all, which is why it wins the
2-way kernel benchmark at high output densities.
"""

from __future__ import annotations

from collections.abc import Iterator
from operator import itemgetter
from typing import Any

from repro.errors import JoinError
from repro.geometry.rectangle import Rect

__all__ = ["sweep_pairs", "sweep_join_count"]


def sweep_pairs(
    left: list[tuple[Any, Rect]],
    right: list[tuple[Any, Rect]],
    d: float = 0.0,
) -> Iterator[tuple[Any, Any]]:
    """Candidate pairs ``(left_id, right_id)`` within Chebyshev ``d``.

    Yields each qualifying pair exactly once, in no particular order.
    """
    if d < 0:
        raise JoinError(f"distance must be non-negative, got {d}")
    if not left or not right:
        return

    # Bounds are extracted exactly once per rectangle — the sweep inner
    # loop compares plain floats, never touching Rect again.  Entries are
    # ``(id, x_min, x_max, y_min, y_max)``; the sort is stable, so ties
    # keep input order and the yield order matches the Rect-based sweep.
    by_x_min = itemgetter(1)
    ls = sorted(
        ((i, r.x_min, r.x_max, r.y_min, r.y_max) for i, r in left),
        key=by_x_min,
    )
    rs = sorted(
        ((i, r.x_min, r.x_max, r.y_min, r.y_max) for i, r in right),
        key=by_x_min,
    )
    nl, nr = len(ls), len(rs)

    # Active lists hold entries whose (d-padded) x-interval has started
    # and may still intersect upcoming partners.  Lazy pruning: stale
    # entries are compacted out in place when scanned (write index),
    # preserving the survivors' order without allocating a new list.
    active_l: list[tuple[Any, float, float, float, float]] = []
    active_r: list[tuple[Any, float, float, float, float]] = []
    i = j = 0

    while i < nl or j < nr:
        if j >= nr or (i < nl and ls[i][1] <= rs[j][1]):
            event = ls[i]
            i += 1
            partners, grow = active_r, active_l
        else:
            event = rs[j]
            j += 1
            partners, grow = active_l, active_r
        eid, x_min, __, y_min, y_max = event
        threshold = x_min - d
        y_lo = y_min - d
        write = 0
        for other in partners:
            if other[2] < threshold:
                continue  # expired in x; prune
            partners[write] = other
            write += 1
            # y_close: both d-padded y-intervals overlap (symmetric)
            if y_lo <= other[4] and other[3] - d <= y_max:
                if partners is active_r:
                    yield (eid, other[0])
                else:
                    yield (other[0], eid)
        del partners[write:]
        grow.append(event)


def sweep_join_count(
    left: list[tuple[Any, Rect]],
    right: list[tuple[Any, Rect]],
    d: float = 0.0,
) -> int:
    """Number of candidate pairs (for benchmarks and tests)."""
    return sum(1 for __ in sweep_pairs(left, right, d))
