"""Shared map/reduce pieces of the one-shot join jobs.

All-Replicate's single reduce and Controlled-Replicate's second-round
reduce are the same computation: rebuild per-slot rectangle bags from the
shuffled values, enumerate the local multi-way join, and report only the
tuples this cell owns under the Section 6.2 rule.

Rectangles cross the shuffle as ``(dataset, rid, Rect)`` triples — the
:class:`~repro.geometry.rectangle.Rect` object itself, never flattened
to coordinates and rebuilt.  Byte accounting still reports the
string-era layout ``(dataset, rid, x, y, l, b)`` through
:data:`RECT_SHUFFLE_CODEC`, so shuffle volumes (and the simulated cost
derived from them) are identical to the seed.
"""

from __future__ import annotations

from repro.data.io import encode_result
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.base import CNT_OUTPUT_TUPLES, JOIN_COUNTERS
from repro.joins.dedup import tuple_owner
from repro.joins.local import LocalJoiner
from repro.kernels import numpy_or_none
from repro.kernels import transforms as _kt
from repro.mapreduce.job import ReduceContext, ShuffleCodec
from repro.query.query import Query

__all__ = ["rect_value", "value_rect", "RECT_SHUFFLE_CODEC", "make_local_join_reducer"]


def rect_value(dataset: str, rid: int, rect: Rect) -> tuple:
    """The shuffle value carrying one tagged rectangle."""
    return (dataset, rid, rect)


def value_rect(value: tuple) -> tuple[str, int, Rect]:
    """Inverse of :func:`rect_value`."""
    return value


#: Sizes a ``(cell_id, rect_value(...))`` pair exactly like the generic
#: estimate sized the old flat tuple: int key -> 8; value -> 2 bytes of
#: framing + dataset name + five 8-byte numbers (rid and 4 coordinates).
RECT_SHUFFLE_CODEC = ShuffleCodec(
    key_size=lambda key: 8,
    value_size=lambda value: 42 + len(value[0]),
)


def make_local_join_reducer(
    query: Query, grid: GridPartitioning, joiner: LocalJoiner, kernel: str = "python"
):
    """Reducer: local multi-way join + owner-cell duplicate avoidance."""
    slot_order = query.slots
    np = numpy_or_none() if kernel == "numpy" else None

    def reducer(cell_id: int, values, ctx: ReduceContext) -> None:
        by_dataset: dict[str, list[tuple[int, Rect]]] = {}
        for dataset, rid, rect in values:
            by_dataset.setdefault(dataset, []).append((rid, rect))
        rects_by_slot = {
            slot: by_dataset.get(query.dataset_of(slot), [])
            for slot in slot_order
        }
        if np is not None:
            fr, assignments, ops = joiner.enumerate_columnar(rects_by_slot)
        else:
            fr = None
            assignments, ops = joiner.enumerate(rects_by_slot)
        ctx.add_compute(ops)
        if fr is not None:
            if not fr.count:
                return
            # Owner of every row at once straight from the frontier's
            # coordinate columns: tuple_owner is the cell of the
            # bottom-right-most start point (max x, min y).
            pos = fr.positions
            xs = np.maximum.reduce([fr.batches[s].x[pos[s]] for s in fr.slots])
            ys = np.minimum.reduce([fr.batches[s].y[pos[s]] for s in fr.slots])
            owners = (
                _kt.rows_of_y(np, grid, ys) * grid.cols
                + _kt.cols_of_x(np, grid, xs)
            ).tolist()
            rid_cols = [
                [fr.bags[s][p][0] for p in pos[s].tolist()] for s in slot_order
            ]
            lines = [
                "\t".join(str(col[i]) for col in rid_cols)
                for i, owner in enumerate(owners)
                if owner == cell_id
            ]
            if lines:
                ctx.counter(JOIN_COUNTERS, CNT_OUTPUT_TUPLES, len(lines))
                ctx.emit_all(lines)
            return
        owners = None
        if np is not None and len(assignments) >= 4:
            # tuple_owner for every assignment at once: owner of the
            # bottom-right-most start point (max x, min y).
            m = len(slot_order)
            flat = [
                c for a in assignments for __, r in a.values() for c in (r.x, r.y)
            ]
            coords = np.array(flat, dtype=np.float64).reshape(-1, m, 2)
            owners = (
                _kt.rows_of_y(np, grid, coords[:, :, 1].min(axis=1)) * grid.cols
                + _kt.cols_of_x(np, grid, coords[:, :, 0].max(axis=1))
            ).tolist()
        for k, assignment in enumerate(assignments):
            owner = (
                owners[k]
                if owners is not None
                else tuple_owner((r for __, r in assignment.values()), grid)
            )
            if owner != cell_id:
                continue
            ctx.counter(JOIN_COUNTERS, CNT_OUTPUT_TUPLES)
            ctx.emit(
                encode_result(
                    slot_order, {s: rid for s, (rid, __) in assignment.items()}
                )
            )

    return reducer
