"""Shared map/reduce pieces of the one-shot join jobs.

All-Replicate's single reduce and Controlled-Replicate's second-round
reduce are the same computation: rebuild per-slot rectangle bags from the
shuffled values, enumerate the local multi-way join, and report only the
tuples this cell owns under the Section 6.2 rule.

Rectangles cross the shuffle as ``(dataset, rid, Rect)`` triples — the
:class:`~repro.geometry.rectangle.Rect` object itself, never flattened
to coordinates and rebuilt.  Byte accounting still reports the
string-era layout ``(dataset, rid, x, y, l, b)`` through
:data:`RECT_SHUFFLE_CODEC`, so shuffle volumes (and the simulated cost
derived from them) are identical to the seed.
"""

from __future__ import annotations

from repro.data.io import encode_result
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.base import CNT_OUTPUT_TUPLES, JOIN_COUNTERS
from repro.joins.dedup import tuple_owner
from repro.joins.local import LocalJoiner
from repro.mapreduce.job import ReduceContext, ShuffleCodec
from repro.query.query import Query

__all__ = ["rect_value", "value_rect", "RECT_SHUFFLE_CODEC", "make_local_join_reducer"]


def rect_value(dataset: str, rid: int, rect: Rect) -> tuple:
    """The shuffle value carrying one tagged rectangle."""
    return (dataset, rid, rect)


def value_rect(value: tuple) -> tuple[str, int, Rect]:
    """Inverse of :func:`rect_value`."""
    return value


#: Sizes a ``(cell_id, rect_value(...))`` pair exactly like the generic
#: estimate sized the old flat tuple: int key -> 8; value -> 2 bytes of
#: framing + dataset name + five 8-byte numbers (rid and 4 coordinates).
RECT_SHUFFLE_CODEC = ShuffleCodec(
    key_size=lambda key: 8,
    value_size=lambda value: 42 + len(value[0]),
)


def make_local_join_reducer(
    query: Query, grid: GridPartitioning, joiner: LocalJoiner
):
    """Reducer: local multi-way join + owner-cell duplicate avoidance."""
    slot_order = query.slots

    def reducer(cell_id: int, values, ctx: ReduceContext) -> None:
        by_dataset: dict[str, list[tuple[int, Rect]]] = {}
        for dataset, rid, rect in values:
            by_dataset.setdefault(dataset, []).append((rid, rect))
        rects_by_slot = {
            slot: by_dataset.get(query.dataset_of(slot), [])
            for slot in slot_order
        }
        assignments, ops = joiner.enumerate(rects_by_slot)
        ctx.add_compute(ops)
        for assignment in assignments:
            owner = tuple_owner((r for __, r in assignment.values()), grid)
            if owner != cell_id:
                continue
            ctx.counter(JOIN_COUNTERS, CNT_OUTPUT_TUPLES)
            ctx.emit(
                encode_result(
                    slot_order, {s: rid for s, (rid, __) in assignment.items()}
                )
            )

    return reducer
