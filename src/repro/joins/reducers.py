"""Shared map/reduce pieces of the one-shot join jobs.

All-Replicate's single reduce and Controlled-Replicate's second-round
reduce are the same computation: rebuild per-slot rectangle bags from the
shuffled values, enumerate the local multi-way join, and report only the
tuples this cell owns under the Section 6.2 rule.
"""

from __future__ import annotations

from repro.data.io import encode_result
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.joins.base import CNT_OUTPUT_TUPLES, JOIN_COUNTERS
from repro.joins.dedup import tuple_owner
from repro.joins.local import LocalJoiner
from repro.mapreduce.job import ReduceContext
from repro.query.query import Query

__all__ = ["rect_value", "value_rect", "make_local_join_reducer"]


def rect_value(dataset: str, rid: int, rect: Rect) -> tuple:
    """The shuffle value carrying one tagged rectangle."""
    return (dataset, rid, rect.x, rect.y, rect.l, rect.b)


def value_rect(value: tuple) -> tuple[str, int, Rect]:
    """Inverse of :func:`rect_value`."""
    dataset, rid, x, y, l, b = value
    return dataset, rid, Rect(x, y, l, b)


def make_local_join_reducer(
    query: Query, grid: GridPartitioning, joiner: LocalJoiner
):
    """Reducer: local multi-way join + owner-cell duplicate avoidance."""
    slot_order = query.slots

    def reducer(cell_id: int, values, ctx: ReduceContext) -> None:
        by_dataset: dict[str, list[tuple[int, Rect]]] = {}
        for value in values:
            dataset, rid, rect = value_rect(value)
            by_dataset.setdefault(dataset, []).append((rid, rect))
        rects_by_slot = {
            slot: by_dataset.get(query.dataset_of(slot), [])
            for slot in slot_order
        }
        assignments, ops = joiner.enumerate(rects_by_slot)
        ctx.add_compute(ops)
        for assignment in assignments:
            owner = tuple_owner((r for __, r in assignment.values()), grid)
            if owner != cell_id:
                continue
            ctx.counter(JOIN_COUNTERS, CNT_OUTPUT_TUPLES)
            ctx.emit(
                encode_result(
                    slot_order, {s: rid for s, (rid, __) in assignment.items()}
                )
            )

    return reducer
