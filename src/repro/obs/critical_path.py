"""Critical-path analysis: where a second of speedup actually helps.

The skew module says *which reducer* is hot; this one says *whether it
matters*.  A workflow is a serial chain of jobs, each job a serial
chain of phases (split → map → shuffle → reduce → write), and the
parallel phases (map, reduce) are as long as their latest-finishing
task.  The critical path is therefore the chain of phase makespans,
and inside each parallel phase exactly one task — the latest finisher
— carries it.

:func:`job_critical_path` walks one job's measured
:class:`~repro.mapreduce.engine.PhaseTimings` and worker-stamped task
intervals into :class:`PhaseSegment` rows; :func:`analyze_critical_path`
chains jobs into a :class:`WorkflowCriticalPath` whose
:meth:`~WorkflowCriticalPath.attribution_line` answers the operator
question directly: *if you could make one thing 1 second (or its whole
duration, if shorter) faster, where would the run actually shrink?*
For serial phases the answer is the phase duration itself; for
parallel phases it is bounded by the gap to the second-latest finisher
— speeding the critical task past its neighbour just crowns a new
straggler, the exact effect Section 6.4's hot-cell argument rests on.

Per-phase *slack* (sum of each task's idle margin against the phase
makespan) quantifies how much parallel capacity the phase wasted —
zero slack means perfectly balanced tasks.

Pure analysis of result fields; nothing imports the engine at runtime,
so the obs package stays import-cycle free.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.mapreduce.engine import JobResult

__all__ = [
    "PhaseSegment",
    "JobCriticalPath",
    "WorkflowCriticalPath",
    "job_critical_path",
    "analyze_critical_path",
]

#: the hypothetical speedup the attribution line applies (seconds)
SPEEDUP_S = 1.0


def _fmt_s(seconds: float) -> str:
    """Human duration: µs/ms/s picked by magnitude (dashboard style)."""
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


@dataclass(frozen=True)
class PhaseSegment:
    """One phase's contribution to the critical path.

    ``duration_s`` is the phase's extent on the path (the makespan for
    parallel phases).  ``critical_task`` is the latest-finishing task
    of a parallel phase (``None`` for serial segments).  ``slack_s``
    sums every task's idle margin against the makespan.
    ``savings_s`` is how much the *path* would shrink if this segment's
    critical work ran :data:`SPEEDUP_S` faster — capped by the phase
    duration and, for parallel phases, by the gap to the second-latest
    finisher.
    """

    phase: str
    duration_s: float
    critical_task: int | None = None
    critical_task_duration_s: float = 0.0
    slack_s: float = 0.0
    savings_s: float = 0.0

    @property
    def parallel(self) -> bool:
        return self.critical_task is not None

    def describe(self) -> str:
        label = f"{self.phase} {_fmt_s(self.duration_s)}"
        if self.critical_task is not None:
            label += f" (task {self.critical_task})"
        return label


@dataclass(frozen=True)
class JobCriticalPath:
    """The phase chain of one job, critical tasks attributed."""

    job_name: str
    segments: tuple[PhaseSegment, ...]

    @property
    def total_s(self) -> float:
        return sum(seg.duration_s for seg in self.segments)

    @property
    def slack_s(self) -> float:
        return sum(seg.slack_s for seg in self.segments)

    @property
    def best(self) -> PhaseSegment | None:
        """The segment where a 1s speedup saves the most (ties: first)."""
        best: PhaseSegment | None = None
        for seg in self.segments:
            if best is None or seg.savings_s > best.savings_s:
                best = seg
        return best

    def describe(self) -> str:
        if not self.segments:
            return "(no measured phases)"
        return " -> ".join(seg.describe() for seg in self.segments)


@dataclass(frozen=True)
class WorkflowCriticalPath:
    """A chain of jobs' critical paths, chained serially."""

    jobs: tuple[JobCriticalPath, ...]

    @property
    def total_s(self) -> float:
        return sum(job.total_s for job in self.jobs)

    @property
    def best(self) -> tuple[str, PhaseSegment] | None:
        """``(job name, segment)`` with the largest 1s-speedup payoff."""
        best: tuple[str, PhaseSegment] | None = None
        for job in self.jobs:
            seg = job.best
            if seg is None:
                continue
            if best is None or seg.savings_s > best[1].savings_s:
                best = (job.job_name, seg)
        return best

    def attribution_line(self) -> str:
        """The "1s-speedup-where-it-matters" answer, one line."""
        target = self.best
        if target is None:
            return "critical path: (no measured phases)"
        name, seg = target
        where = f"the {seg.phase} phase"
        if seg.critical_task is not None:
            where = f"{seg.phase} task {seg.critical_task}"
        return (
            f"1s-speedup-where-it-matters: {where} of job {name!r} — "
            f"saves {_fmt_s(seg.savings_s)} of the "
            f"{_fmt_s(self.total_s)} critical path"
        )


def _parallel_segment(
    phase: str, wall_s: float, intervals: Sequence[tuple[float, float]]
) -> PhaseSegment:
    """A map/reduce segment from its worker-stamped task intervals."""
    if not intervals:
        # No tasks ran (empty input): the phase cost is pure scheduling
        # overhead, treated like a serial segment.
        return PhaseSegment(
            phase=phase, duration_s=wall_s, savings_s=min(SPEEDUP_S, wall_s)
        )
    makespan = max(end for __, end in intervals) - min(
        start for start, __ in intervals
    )
    critical = max(range(len(intervals)), key=lambda i: intervals[i][1])
    crit_start, crit_end = intervals[critical]
    crit_duration = crit_end - crit_start
    slack = sum(makespan - (end - start) for start, end in intervals)
    # Speeding the critical task helps until the second-latest finisher
    # becomes the new straggler.
    others = [end for i, (__, end) in enumerate(intervals) if i != critical]
    floor = max(others) if others else crit_end - crit_duration
    sped = crit_end - min(SPEEDUP_S, crit_duration)
    savings = max(0.0, crit_end - max(floor, sped))
    return PhaseSegment(
        phase=phase,
        duration_s=makespan,
        critical_task=critical,
        critical_task_duration_s=crit_duration,
        slack_s=slack,
        savings_s=savings,
    )


def _serial_segment(phase: str, wall_s: float) -> PhaseSegment:
    """A split/shuffle/write segment: the whole duration is critical."""
    return PhaseSegment(
        phase=phase, duration_s=wall_s, savings_s=min(SPEEDUP_S, wall_s)
    )


def job_critical_path(result: "JobResult") -> JobCriticalPath:
    """Walk one job's measured phases into its critical path."""
    phases = result.phases
    ran_reduce = bool(result.reduce_task_wall) or phases.reduce_s > 0
    segments = [
        _serial_segment("split", phases.split_s),
        _parallel_segment("map", phases.map_s, result.map_task_wall),
    ]
    if ran_reduce:
        segments.append(_serial_segment("shuffle", phases.shuffle_s))
        segments.append(
            _parallel_segment("reduce", phases.reduce_s, result.reduce_task_wall)
        )
    segments.append(_serial_segment("write", phases.write_s))
    return JobCriticalPath(job_name=result.job_name, segments=tuple(segments))


def analyze_critical_path(
    job_results: Sequence["JobResult"],
) -> WorkflowCriticalPath:
    """Chain jobs (run serially by the workflow) into one critical path.

    Jobs restored from a checkpoint never executed, so they contribute
    no path (their wall numbers describe the restore, not the work).
    """
    return WorkflowCriticalPath(
        jobs=tuple(
            job_critical_path(result)
            for result in job_results
            if not result.resumed
        )
    )
