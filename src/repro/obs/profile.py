"""Opt-in per-task profiling: cProfile around map/reduce task bodies.

With a :class:`TaskProfiler` attached to the cluster, every map and
reduce task body runs under its own :class:`cProfile.Profile`.  The raw
stats dict — ``{(file, line, func): (cc, nc, tt, ct, callers)}``, the
format :meth:`cProfile.Profile.create_stats` produces — rides back to
the parent inside the task result (it is picklable, so the process
executor ships it like any other result field) and the engine merges
it into the profiler keyed by ``(phase, kernel)``.

Two consumable views come out:

* :meth:`TaskProfiler.hotspots` — the top-N functions by self time per
  phase × kernel, rendered by :func:`render_profile_dashboard`;
* :meth:`TaskProfiler.collapsed_stacks` — ``frame;frame count`` lines
  in the collapsed-stack format flamegraph tools consume
  (``flamegraph.pl``, speedscope, inferno).  cProfile records *caller
  edges*, not full stacks, so the collapse is a caller-weighted
  two-level approximation: each function's self time is attributed to
  ``phase;caller;function`` frames proportionally to how much
  cumulative time each caller edge carried.  Exact for the leaf level
  (self times are measured), approximate above it.

Profiling observes real wall time only: counters, part files and
simulated seconds are byte-identical with it on or off (the golden
deep-observability test asserts this).
"""

from __future__ import annotations

import cProfile
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "TaskProfiler",
    "Hotspot",
    "run_profiled",
    "merge_profile",
    "write_flamegraph",
    "render_profile_dashboard",
]

#: a raw cProfile stats dict: func tuple -> (cc, nc, tt, ct, callers)
ProfileStats = dict


def run_profiled(fn: Callable, *args: Any) -> tuple[Any, ProfileStats]:
    """Run ``fn(*args)`` under cProfile; return ``(value, stats dict)``.

    ``Profile.enable`` applies to the calling thread only, so parallel
    thread-executor tasks each profile their own body without seeing
    each other's frames.
    """
    prof = cProfile.Profile()
    prof.enable()
    try:
        value = fn(*args)
    finally:
        prof.disable()
    prof.create_stats()
    return value, prof.stats


def merge_profile(into: ProfileStats, stats: ProfileStats) -> None:
    """Accumulate one task's stats dict into a merged one, in place.

    Same arithmetic as :meth:`pstats.Stats.add`: tuple fields and
    caller-edge tuples sum element-wise.
    """
    for func, (cc, nc, tt, ct, callers) in stats.items():
        if func not in into:
            into[func] = (cc, nc, tt, ct, dict(callers))
            continue
        mcc, mnc, mtt, mct, mcallers = into[func]
        merged_callers = dict(mcallers)
        for caller, counts in callers.items():
            if caller in merged_callers:
                merged_callers[caller] = tuple(
                    a + b for a, b in zip(merged_callers[caller], counts)
                )
            else:
                merged_callers[caller] = counts
        into[func] = (mcc + cc, mnc + nc, mtt + tt, mct + ct, merged_callers)


def _label(func: tuple) -> str:
    """A compact ``file:line:name`` frame label (builtins keep their name)."""
    filename, line, name = func
    if filename == "~" or not filename:
        return name
    short = filename.replace("\\", "/").rsplit("/", 1)[-1]
    return f"{short}:{line}:{name}"


@dataclass(frozen=True)
class Hotspot:
    """One row of the top-N table: a function and its merged times."""

    func: str
    calls: int
    self_s: float
    cum_s: float


class TaskProfiler:
    """Merges per-task cProfile stats, keyed by ``(phase, kernel)``.

    The engine calls :meth:`add` once per profiled task result; merging
    happens parent-side in task-id order, so the merged totals are
    deterministic for a deterministic workload (the times themselves
    are wall measurements and vary run to run).
    """

    def __init__(self) -> None:
        self.stats: dict[tuple[str, str], ProfileStats] = {}
        self.tasks: dict[tuple[str, str], int] = {}

    def add(self, phase: str, kernel: str, stats: ProfileStats) -> None:
        key = (phase, kernel)
        merge_profile(self.stats.setdefault(key, {}), stats)
        self.tasks[key] = self.tasks.get(key, 0) + 1

    def keys(self) -> list[tuple[str, str]]:
        """Profiled ``(phase, kernel)`` groups, sorted."""
        return sorted(self.stats)

    def hotspots(self, phase: str, kernel: str, n: int = 10) -> list[Hotspot]:
        """Top-``n`` functions of one group by merged self time."""
        merged = self.stats.get((phase, kernel), {})
        rows = sorted(
            merged.items(), key=lambda kv: (-kv[1][2], _label(kv[0]))
        )
        return [
            Hotspot(func=_label(f), calls=nc, self_s=tt, cum_s=ct)
            for f, (cc, nc, tt, ct, __) in rows[:n]
        ]

    def collapsed_stacks(self) -> list[str]:
        """Collapsed-stack lines (``frames... count``), count in µs.

        Rooted at ``phase [kernel]`` so one file carries every group as
        separate flame towers.  Self time of each function is split
        across its caller edges by cumulative-time share (see module
        docstring); rounding remainders stay with the function itself
        so the µs totals are exact.
        """
        lines: list[str] = []
        for (phase, kernel), merged in sorted(self.stats.items()):
            root = f"{phase} [{kernel}]"
            for func, (cc, nc, tt, ct, callers) in sorted(
                merged.items(), key=lambda kv: _label(kv[0])
            ):
                self_us = int(round(tt * 1e6))
                if self_us <= 0:
                    continue
                if not callers:
                    lines.append(f"{root};{_label(func)} {self_us}")
                    continue
                total_ct = sum(edge[3] for edge in callers.values())
                remaining = self_us
                edges = sorted(callers.items(), key=lambda kv: _label(kv[0]))
                for caller, edge in edges:
                    share = (
                        int(self_us * (edge[3] / total_ct))
                        if total_ct > 0
                        else self_us // len(edges)
                    )
                    share = min(share, remaining)
                    if share > 0:
                        lines.append(
                            f"{root};{_label(caller)};{_label(func)} {share}"
                        )
                        remaining -= share
                if remaining > 0:
                    lines.append(f"{root};{_label(func)} {remaining}")
        return lines


def write_flamegraph(path: str, profiler: TaskProfiler) -> None:
    """Write the profiler's collapsed stacks to a flamegraph input file."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in profiler.collapsed_stacks():
            fh.write(line + "\n")


def render_profile_dashboard(profiler: TaskProfiler, top_n: int = 10) -> str:
    """The top-N hotspot table per phase × kernel, as plain text."""
    lines = ["== task profile (cProfile, merged across tasks) =="]
    if not profiler.stats:
        lines.append("  (no profiled tasks)")
        return "\n".join(lines)
    for phase, kernel in profiler.keys():
        count = profiler.tasks[(phase, kernel)]
        lines.append(
            f"-- {phase} tasks [{kernel} kernel] "
            f"({count} task{'s' if count != 1 else ''} profiled) --"
        )
        lines.append(f"  {'self':>10}  {'cumulative':>10}  {'calls':>8}  function")
        for h in profiler.hotspots(phase, kernel, top_n):
            lines.append(
                f"  {h.self_s:>9.4f}s  {h.cum_s:>9.4f}s  {h.calls:>8}  {h.func}"
            )
    return "\n".join(lines)
