"""Exporters: Chrome trace-event JSON and plain-JSON metrics snapshots.

The trace exporter emits the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(the ``traceEvents`` array of ``"X"`` complete events), which loads
directly in `Perfetto <https://ui.perfetto.dev>`_ and
``chrome://tracing``.  Layout:

* one process (``pid`` 1) named for the run;
* one *thread* per track — plus extra lanes for tracks whose spans
  genuinely overlap in time (parallel tasks), since complete events on
  one ``tid`` must nest.  Lanes are assigned greedily in start-time
  order, so the layout is deterministic;
* span ``args`` pass through verbatim and show in the viewer's detail
  panel;
* one ``"C"`` counter track per recorder counter timeline (in-flight
  tasks, worker occupancy, cumulative byte totals).  Counter ``tid``\\s
  are allocated strictly *after* every span track's lane block, so a
  counter track can never collide with a greedy span lane — an
  invariant ``validate_chrome_trace`` checks.

``validate_chrome_trace`` is the schema check the test-suite (and any
consumer) can run against an emitted trace: required keys, monotonic
timestamps per thread, and proper nesting (spans on one thread either
contain each other or are disjoint).

The metrics exporter is independent of tracing: it snapshots
:class:`~repro.mapreduce.engine.JobResult` chains — counters, per-phase
wall clock, simulated cost breakdown, per-task volumes and the skew
report — into one JSON-serialisable dict.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.obs.skew import analyze_job
from repro.obs.trace import Span, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.experiments.common import ExperimentResult
    from repro.mapreduce.engine import JobResult

__all__ = [
    "to_chrome_trace",
    "write_trace",
    "validate_chrome_trace",
    "metrics_snapshot",
    "experiment_metrics",
    "write_metrics",
]

_PID = 1


def _assign_lanes(spans: Sequence[Span]) -> list[int]:
    """Greedy interval partitioning: lane index per span.

    A span may share a lane with spans it *nests inside* (job contains
    phase — complete events on one Chrome-trace thread render as a
    flame stack when properly contained) or that have already ended;
    only *partial* overlap — genuinely concurrent tasks — forces a new
    lane.  Hierarchical serial workloads therefore stay in lane 0 while
    parallel task spans fan out deterministically: spans are processed
    in (start, longest-first, insertion) order and take the
    lowest-numbered lane that fits.
    """
    order = sorted(
        range(len(spans)),
        key=lambda i: (spans[i].start_s, -spans[i].end_s, i),
    )
    lane_stacks: list[list[float]] = []  # per lane: end times of open spans
    lanes = [0] * len(spans)
    for i in order:
        span = spans[i]
        for lane, stack in enumerate(lane_stacks):
            while stack and stack[-1] <= span.start_s:
                stack.pop()
            if not stack or span.end_s <= stack[-1]:
                lanes[i] = lane
                stack.append(span.end_s)
                break
        else:
            lanes[i] = len(lane_stacks)
            lane_stacks.append([span.end_s])
    return lanes


def _us(seconds: float) -> float:
    """Trace timestamps are microseconds; keep sub-µs precision."""
    return round(seconds * 1e6, 3)


def to_chrome_trace(recorder: TraceRecorder, process_name: str = "repro cluster") -> dict:
    """Render a recorder into a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    # Tracks in first-appearance order; "engine" spans nest by
    # containment, task tracks fan out into lanes when parallel.
    next_tid = 1
    for track in recorder.tracks():
        track_spans = [s for s in recorder.spans if s.track == track]
        track_instants = [s for s in recorder.instants if s.track == track]
        lanes = _assign_lanes(track_spans)
        num_lanes = max(lanes, default=0) + 1
        base_tid = next_tid
        next_tid += max(num_lanes, 1)
        for lane in range(max(num_lanes, 1)):
            label = track if num_lanes == 1 else f"{track} [{lane}]"
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": base_tid + lane,
                    "args": {"name": label},
                }
            )
        # Recorder order is exit order (a parent span is appended after
        # its children); viewers want per-tid monotonic starts, so emit
        # in (start, longest-first) order — parents before children.
        emit_order = sorted(
            range(len(track_spans)),
            key=lambda i: (track_spans[i].start_s, -track_spans[i].end_s, i),
        )
        for i in emit_order:
            span, lane = track_spans[i], lanes[i]
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": _us(span.start_s),
                    "dur": _us(span.duration_s),
                    "pid": _PID,
                    "tid": base_tid + lane,
                    "args": span.args,
                }
            )
        for inst in track_instants:
            events.append(
                {
                    "name": inst.name,
                    "cat": inst.cat,
                    "ph": "i",
                    "ts": _us(inst.start_s),
                    "pid": _PID,
                    "tid": base_tid,
                    "s": "t",
                    "args": inst.args,
                }
            )
    # Counter tracks last: their tids start where the span lanes ended,
    # so the two tid ranges are disjoint by construction.
    for name, samples in getattr(recorder, "counters", {}).items():
        tid = next_tid
        next_tid += 1
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": f"counter: {name}"},
            }
        )
        for t, value in sorted(samples):
            events.append(
                {
                    "name": name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": _us(t),
                    "pid": _PID,
                    "tid": tid,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(
    path: str, recorder: TraceRecorder, process_name: str = "repro cluster"
) -> None:
    """Write the recorder as a Perfetto-loadable trace file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(recorder, process_name), fh, indent=1)


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema-check an exported trace; returns a list of problems.

    An empty list means the trace is well-formed: every event carries
    the required keys, durations are non-negative, per-thread start
    timestamps are monotonic, and complete events on one thread nest
    properly (contain each other or are disjoint — the invariant the
    viewers' flame layout depends on).  Counter (``"C"``) events must
    carry a numeric ``args`` mapping, keep monotonic timestamps per
    track, and live on ``tid``\\s no span event uses (the exporter's
    no-collision layout guarantee).
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    by_tid: dict[Any, list[tuple[float, float, str]]] = {}
    counter_ts: dict[Any, list[float]] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in {"X", "M", "i", "C"}:
            problems.append(f"event {i}: unsupported ph {ph!r}")
            continue
        for key in ("name", "pid", "tid") + (("ts",) if ph != "M" else ()):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"event {i}: counter event missing 'args' values")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"event {i}: counter values must be numeric")
            if "ts" in ev:
                counter_ts.setdefault(ev["tid"], []).append(ev["ts"])
            continue
        if ph != "X":
            continue
        if "dur" not in ev:
            problems.append(f"event {i}: complete event missing 'dur'")
            continue
        if ev["dur"] < 0:
            problems.append(f"event {i}: negative duration {ev['dur']}")
        by_tid.setdefault(ev["tid"], []).append(
            (ev["ts"], ev["ts"] + ev["dur"], ev.get("name", "?"))
        )
    collisions = sorted(set(counter_ts) & set(by_tid))
    for tid in collisions:
        problems.append(
            f"tid {tid}: counter track collides with a span lane"
        )
    for tid, stamps in counter_ts.items():
        if stamps != sorted(stamps):
            problems.append(f"tid {tid}: counter timestamps not monotonic")
    for tid, spans in by_tid.items():
        starts = [s[0] for s in spans]
        if starts != sorted(starts):
            problems.append(f"tid {tid}: start timestamps not monotonic")
        stack: list[tuple[float, float, str]] = []
        for start, end, name in sorted(spans):
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                problems.append(
                    f"tid {tid}: span {name!r} [{start}, {end}] partially "
                    f"overlaps {stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}]"
                )
            stack.append((start, end, name))
    return problems


# ----------------------------------------------------------------------
# Metrics snapshot
# ----------------------------------------------------------------------
def _job_metrics(result: "JobResult") -> dict[str, Any]:
    report = analyze_job(result)
    return {
        "job": result.job_name,
        "output_path": result.output_path,
        "wall_clock_seconds": result.wall_clock_seconds,
        "phase_wall_seconds": result.phases.as_dict(),
        "simulated_seconds": result.simulated_seconds,
        "cost_breakdown_seconds": result.cost.as_dict(),
        "counters": result.counters.as_dict(),
        "output_records": result.output_records,
        "map_tasks": {
            "count": len(result.map_tasks),
            "durations": report.map_durations.as_dict(),
        },
        "reduce_tasks": {
            "count": len(result.reduce_tasks),
            "durations": report.reduce_durations.as_dict(),
            "input_records": report.reducer_records,
            "hottest_reducer": report.hottest_reducer,
            "skew": report.skew,
        },
    }


def metrics_snapshot(
    named_runs: Mapping[str, Sequence["JobResult"]],
) -> dict[str, Any]:
    """Snapshot job chains (``label -> [JobResult, ...]``) as plain JSON."""
    runs: dict[str, Any] = {}
    for label, job_results in named_runs.items():
        jobs = [_job_metrics(r) for r in job_results]
        runs[label] = {
            "jobs": jobs,
            "wall_clock_seconds": sum(r.wall_clock_seconds for r in job_results),
            "simulated_seconds": sum(r.simulated_seconds for r in job_results),
        }
    return {"version": 1, "runs": runs}


def experiment_metrics(
    results: Mapping[str, "ExperimentResult"],
) -> dict[str, Any]:
    """Snapshot experiment tables (``name -> ExperimentResult``) as JSON.

    Rows carry each algorithm's :class:`~repro.experiments.common.AlgoMetrics`
    including the observability fields (``reduce_skew``,
    ``phase_wall_seconds``), so a recorded sweep can be diffed across
    commits without re-running it.
    """
    tables: dict[str, Any] = {}
    for name, result in results.items():
        tables[name] = {
            "table": result.table,
            "title": result.title,
            "query": result.query,
            "parameters": result.parameters,
            "rows": [
                {
                    "label": row.label,
                    "consistent": row.consistent,
                    "output_tuples": row.output_tuples,
                    "algorithms": {
                        algo: dataclasses.asdict(m)
                        for algo, m in row.metrics.items()
                    },
                }
                for row in result.rows
            ],
        }
    return {"version": 1, "tables": tables}


def write_metrics(path: str, snapshot: dict[str, Any]) -> None:
    """Write a metrics snapshot (from :func:`metrics_snapshot`) to disk."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
