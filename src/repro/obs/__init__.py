"""Observability for the simulated cluster: tracing, metrics and skew.

The paper's argument is entirely about *where time goes* — shuffle
volume (All-Replicate), per-job startup and DFS round-trips (2-way
Cascade), and hot partition-cells that make one reducer the critical
path (Section 6.4).  This package makes those effects visible on a run
of the reproduction:

:mod:`repro.obs.trace`
    :class:`~repro.obs.trace.TraceRecorder` — a structured span/event
    recorder the engine, executors and workflow report into, with a
    zero-overhead :class:`~repro.obs.trace.NullRecorder` default.
:mod:`repro.obs.export`
    Chrome trace-event JSON (loadable in Perfetto or chrome://tracing)
    and a plain-JSON metrics snapshot.
:mod:`repro.obs.skew`
    Per-reducer input histograms, straggler/duration percentiles and
    measured-vs-modelled makespan analysis.
:mod:`repro.obs.dashboard`
    The plain-text "job dashboard" printed by ``python -m repro ...
    --verbose``.

Determinism contract: recording only *observes*.  Counters, part files
and simulated seconds are byte-identical with tracing on or off, which
``tests/obs/test_traced_golden.py`` asserts.
"""

from repro.obs.dashboard import render_job_dashboard, render_workflow_dashboard
from repro.obs.export import (
    experiment_metrics,
    metrics_snapshot,
    to_chrome_trace,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.skew import DurationStats, JobSkewReport, analyze_job, workflow_skew
from repro.obs.trace import NullRecorder, Span, TraceRecorder

__all__ = [
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_trace",
    "metrics_snapshot",
    "experiment_metrics",
    "write_metrics",
    "DurationStats",
    "JobSkewReport",
    "analyze_job",
    "workflow_skew",
    "render_job_dashboard",
    "render_workflow_dashboard",
]
