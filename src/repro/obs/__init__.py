"""Observability for the simulated cluster: tracing, metrics and skew.

The paper's argument is entirely about *where time goes* — shuffle
volume (All-Replicate), per-job startup and DFS round-trips (2-way
Cascade), and hot partition-cells that make one reducer the critical
path (Section 6.4).  This package makes those effects visible on a run
of the reproduction:

:mod:`repro.obs.trace`
    :class:`~repro.obs.trace.TraceRecorder` — a structured span/event
    recorder (plus counter timelines) the engine, executors and
    workflow report into, with a zero-overhead
    :class:`~repro.obs.trace.NullRecorder` default.
:mod:`repro.obs.ledger`
    :class:`~repro.obs.ledger.RunLedger` — an append-only JSONL journal
    of typed run events (manifest, job brackets, task attempts, spills,
    speculation, checkpoints) with a replaying reader
    (:class:`~repro.obs.ledger.LedgerRun`).
:mod:`repro.obs.export`
    Chrome trace-event JSON (spans plus ``"C"`` counter tracks,
    loadable in Perfetto or chrome://tracing) and a plain-JSON metrics
    snapshot.
:mod:`repro.obs.skew`
    Per-reducer input histograms, straggler/duration percentiles and
    measured-vs-modelled makespan analysis.
:mod:`repro.obs.critical_path`
    Critical-path and per-phase slack analysis with the
    "1s-speedup-where-it-matters" attribution.
:mod:`repro.obs.profile`
    Opt-in per-task cProfile hooks merged into hotspot tables and
    collapsed-stack flamegraph files.
:mod:`repro.obs.bench_history`
    Trend tables over recorded pytest-benchmark JSON files with a
    regression gate (``python -m repro bench-history``).
:mod:`repro.obs.dashboard`
    The plain-text "job dashboard" printed by ``python -m repro ...
    --verbose``.

Determinism contract: recording only *observes*.  Counters, part files
and simulated seconds are byte-identical with tracing, ledgering and
profiling on or off, which ``tests/obs/test_traced_golden.py`` and
``tests/obs/test_deep_golden.py`` assert.
"""

from repro.obs.bench_history import find_regressions, load_series, render_history
from repro.obs.critical_path import (
    JobCriticalPath,
    PhaseSegment,
    WorkflowCriticalPath,
    analyze_critical_path,
    job_critical_path,
)
from repro.obs.dashboard import render_job_dashboard, render_workflow_dashboard
from repro.obs.export import (
    experiment_metrics,
    metrics_snapshot,
    to_chrome_trace,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.ledger import (
    JobRecord,
    JsonlSink,
    LedgerRun,
    MemorySink,
    NullLedger,
    RunLedger,
    read_ledger,
)
from repro.obs.profile import (
    TaskProfiler,
    render_profile_dashboard,
    write_flamegraph,
)
from repro.obs.skew import DurationStats, JobSkewReport, analyze_job, workflow_skew
from repro.obs.trace import NullRecorder, Span, TraceRecorder

__all__ = [
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "NullLedger",
    "RunLedger",
    "MemorySink",
    "JsonlSink",
    "LedgerRun",
    "JobRecord",
    "read_ledger",
    "TaskProfiler",
    "render_profile_dashboard",
    "write_flamegraph",
    "PhaseSegment",
    "JobCriticalPath",
    "WorkflowCriticalPath",
    "job_critical_path",
    "analyze_critical_path",
    "load_series",
    "render_history",
    "find_regressions",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_trace",
    "metrics_snapshot",
    "experiment_metrics",
    "write_metrics",
    "DurationStats",
    "JobSkewReport",
    "analyze_job",
    "workflow_skew",
    "render_job_dashboard",
    "render_workflow_dashboard",
]
