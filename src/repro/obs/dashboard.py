"""The plain-text job dashboard: where a run's time actually went.

Rendered after ``python -m repro join --verbose`` (and each table row
with ``--verbose``), one block per job:

* wall-clock phase breakdown — split / map / shuffle / reduce / write —
  decomposed from the job's measured duration;
* the simulated cost breakdown next to it (startup / map / shuffle /
  reduce), so the modelled and measured shapes can be eyeballed;
* task-duration percentiles (p50 / p95 / max) for map and reduce tasks,
  from the stamps measured inside the workers;
* the per-reducer input-record histogram with the hottest cell called
  out, and the skew factor (max / mean) the makespan approximation
  turns into straggler time;
* a ``workers:`` line when the worker pool engaged — lost/blacklisted/
  joined workers, invalidated map outputs and re-executed tasks, the
  simulated recovery overhead, and the ``EFFECTIVE_WATCHDOG=off``
  notice when a task timeout silently degraded to retry rounds;
* a ``storage:`` line when the block plane engaged — map-task data
  locality, corrupt replicas failed over, replicas lost, healing
  copies, the simulated network overhead, and a loud
  ``UNDER-REPLICATED`` notice when the pool was too small to heal.

Everything is deterministic given the same run (record counts and
simulated seconds are; wall-clock numbers naturally vary).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.mapreduce.counters import C
from repro.obs.critical_path import analyze_critical_path, job_critical_path
from repro.obs.skew import JobSkewReport, analyze_job

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.mapreduce.engine import JobResult

__all__ = ["render_job_dashboard", "render_workflow_dashboard"]

#: histogram geometry: bars this wide, collapse reducers into this many
#: bins when there are more of them than lines we want to print
_BAR_WIDTH = 40
_MAX_BINS = 16


def _fmt_s(seconds: float) -> str:
    """Human duration: µs/ms/s picked by magnitude."""
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _phase_line(label: str, parts: Sequence[tuple[str, float]]) -> str:
    total = sum(v for __, v in parts)
    if total <= 0:
        return f"{label}: (none)"
    cells = [
        f"{name} {_fmt_s(v)} ({100.0 * v / total:.0f}%)" for name, v in parts
    ]
    return f"{label}: {_fmt_s(total)} = " + " | ".join(cells)


def _duration_line(label: str, stats) -> str:
    if stats.count == 0:
        return f"  {label}: none"
    return (
        f"  {label}: {stats.count}  "
        f"p50 {_fmt_s(stats.p50_s)}  p95 {_fmt_s(stats.p95_s)}  "
        f"max {_fmt_s(stats.max_s)}"
    )


def _histogram(report: JobSkewReport) -> list[str]:
    records = report.reducer_records
    if not records:
        return ["  (map-only job: no reduce phase)"]
    peak = max(records)
    total = sum(records)
    mean = total / len(records)
    lines = [
        f"  reduce input: {total} records over {len(records)} reducers  "
        f"(mean {mean:.0f}, skew max/mean {report.skew:.2f}x)"
    ]
    if len(records) <= _MAX_BINS:
        bins = [(i, i, records[i]) for i in range(len(records))]
    else:
        # Collapse consecutive reducer ids; a bin shows its max (the
        # straggler candidate), not its sum, so hot cells stay visible.
        per_bin = -(-len(records) // _MAX_BINS)
        bins = []
        for lo in range(0, len(records), per_bin):
            hi = min(lo + per_bin - 1, len(records) - 1)
            bins.append((lo, hi, max(records[lo : hi + 1])))
    for lo, hi, value in bins:
        bar = "#" * (round(_BAR_WIDTH * value / peak) if peak else 0)
        rid = f"r{lo:03d}" if lo == hi else f"r{lo:03d}-r{hi:03d}"
        hot = (
            "  <- hottest cell"
            if report.hottest_reducer is not None and lo <= report.hottest_reducer <= hi
            else ""
        )
        lines.append(f"  {rid} {bar.ljust(_BAR_WIDTH)} {value}{hot}")
    return lines


def _fault_line(result: "JobResult") -> str | None:
    """Recovery telemetry, shown only when the job ran under recovery
    dispatch (or was restored from a checkpoint)."""
    if result.resumed:
        return "  faults: resumed from checkpoint (not re-executed)"
    eng = result.counters.engine
    attempts = eng(C.TASK_ATTEMPTS)
    if not attempts:
        return None
    line = f"  faults: {attempts} attempts, {eng(C.TASK_FAILURES)} failures"
    spec = eng(C.SPECULATIVE_LAUNCHES)
    if spec:
        line += f", {spec} speculative ({eng(C.SPECULATIVE_WINS)} won)"
    timeouts = eng(C.TASK_TIMEOUTS)
    if timeouts:
        line += f", {timeouts} watchdog timeout(s)"
    if result.cost.fault_overhead_s:
        line += f", overhead {_fmt_s(result.cost.fault_overhead_s)} simulated"
    return line


def _workers_line(result: "JobResult") -> str | None:
    """Worker failure-domain telemetry, shown only when a pool engaged."""
    eng = result.counters.engine
    failures = eng(C.WORKER_FAILURES)
    blacklisted = eng(C.WORKERS_BLACKLISTED)
    joined = eng(C.WORKERS_JOINED)
    degraded = eng(C.WATCHDOG_DEGRADED)
    if not (failures or blacklisted or joined or degraded):
        return None
    parts = []
    if failures:
        parts.append(f"{failures} worker(s) lost")
        lost = eng(C.MAP_OUTPUT_LOST)
        if lost:
            parts.append(
                f"{lost} committed map output(s) invalidated, "
                f"{eng(C.TASKS_REEXECUTED)} task(s) re-executed"
            )
    if blacklisted:
        parts.append(f"{blacklisted} blacklisted")
    if joined:
        parts.append(f"{joined} joined")
    if result.cost.recovery_overhead_s:
        parts.append(
            f"overhead {_fmt_s(result.cost.recovery_overhead_s)} simulated"
        )
    if degraded:
        parts.append(
            "EFFECTIVE_WATCHDOG=off (no streaming session: task timeout "
            "degraded to retry rounds)"
        )
    return "  workers: " + ", ".join(parts)


def _storage_line(result: "JobResult") -> str | None:
    """Durable-storage telemetry, shown only when the block plane ran."""
    eng = result.counters.engine
    hits = eng(C.LOCALITY_HITS)
    misses = eng(C.LOCALITY_MISSES)
    corruptions = eng(C.BLOCK_CORRUPTIONS)
    lost = eng(C.REPLICAS_LOST)
    healed = eng(C.BLOCKS_REREPLICATED)
    under = eng(C.BLOCKS_UNDER_REPLICATED)
    if not (hits or misses or corruptions or lost or healed or under):
        return None
    parts = [f"locality {hits}/{hits + misses} map task(s) data-local"]
    if corruptions:
        parts.append(f"{corruptions} corrupt replica(s) failed over")
    if lost:
        parts.append(f"{lost} replica(s) lost")
    if healed:
        parts.append(f"{healed} block cop(y/ies) re-replicated")
    if result.cost.network_overhead_s:
        parts.append(
            f"network {_fmt_s(result.cost.network_overhead_s)} simulated"
        )
    if under:
        parts.append(
            f"{under} block(s) UNDER-REPLICATED (pool too small to heal)"
        )
    return "  storage: " + ", ".join(parts)


def _memory_line(result: "JobResult") -> str | None:
    """Memory-governance telemetry: spills and quarantined records."""
    eng = result.counters.engine
    spilled = eng(C.SPILLED_RECORDS)
    skipped = eng(C.SKIPPED_RECORDS)
    if not spilled and not skipped:
        return None
    parts = []
    if spilled:
        parts.append(
            f"{spilled} records spilled in {eng(C.SPILL_FILES)} run(s), "
            f"{eng(C.SPILL_BYTES)} bytes"
        )
        if result.cost.spill_overhead_s:
            parts.append(
                f"overhead {_fmt_s(result.cost.spill_overhead_s)} simulated"
            )
    if skipped:
        parts.append(f"{skipped} bad record(s) quarantined")
    return "  memory: " + ", ".join(parts)


def render_job_dashboard(result: "JobResult") -> str:
    """One job's dashboard block."""
    report = analyze_job(result)
    phases = result.phases
    lines = [f"-- job {result.job_name} " + "-" * max(4, 54 - len(result.job_name))]
    lines.append(
        "  "
        + _phase_line(
            "wall",
            [
                ("split", phases.split_s),
                ("map", phases.map_s),
                ("shuffle", phases.shuffle_s),
                ("reduce", phases.reduce_s),
                ("write", phases.write_s),
            ],
        )
    )
    cost = result.cost
    lines.append(
        "  "
        + _phase_line(
            "simulated",
            [
                ("startup", cost.startup_s),
                ("map", cost.map_s),
                ("shuffle", cost.shuffle_s),
                ("reduce", cost.reduce_s),
            ],
        )
    )
    fault_line = _fault_line(result)
    if fault_line:
        lines.append(fault_line)
    workers_line = _workers_line(result)
    if workers_line:
        lines.append(workers_line)
    storage_line = _storage_line(result)
    if storage_line:
        lines.append(storage_line)
    memory_line = _memory_line(result)
    if memory_line:
        lines.append(memory_line)
    lines.append(_duration_line("map tasks", report.map_durations))
    lines.append(_duration_line("reduce tasks", report.reduce_durations))
    if report.reducer_records:
        lines.append(
            f"  makespan: measured map {_fmt_s(report.measured_map_makespan_s)} / "
            f"reduce {_fmt_s(report.measured_reduce_makespan_s)} — modelled "
            f"map {_fmt_s(report.modelled_map_makespan_s)} / "
            f"reduce {_fmt_s(report.modelled_reduce_makespan_s)}"
        )
    if not result.resumed:
        path = job_critical_path(result)
        lines.append(f"  critical path: {path.describe()}")
        if path.slack_s > 0:
            lines.append(f"  phase slack: {_fmt_s(path.slack_s)} idle across tasks")
    lines.extend(_histogram(report))
    return "\n".join(lines)


def render_workflow_dashboard(
    job_results: Sequence["JobResult"], title: str = "job chain"
) -> str:
    """Dashboard for a chain of jobs plus a totals header."""
    total_wall = sum(r.wall_clock_seconds for r in job_results)
    total_sim = sum(r.simulated_seconds for r in job_results)
    lines = [
        f"== {title}: {len(job_results)} job(s), "
        f"wall {_fmt_s(total_wall)}, simulated {_fmt_s(total_sim)} =="
    ]
    for result in job_results:
        lines.append(render_job_dashboard(result))
    if job_results:
        lines.append(analyze_critical_path(job_results).attribution_line())
    return "\n".join(lines)
