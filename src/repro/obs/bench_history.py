"""Trend analysis over recorded benchmark JSON files.

CI records pytest-benchmark JSON (``BENCH_pr2.json``, ``BENCH_pr6.json``,
...) per run; this module reads a series of those files, prints a
per-benchmark trend table of mean times ordered by each file's
``datetime`` stamp, and gates on regressions: any benchmark whose mean
grew by more than the threshold (default 10%) between the two newest
files is reported and the CLI (``python -m repro bench-history``)
exits nonzero.

Files that share no benchmarks (the committed pr2/pr6/pr7 trio each
cover a different suite) compare trivially clean — the gate only bites
on successive recordings of the *same* suite, which is what a CI
history directory accumulates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ExperimentError

__all__ = [
    "BenchFile",
    "Regression",
    "load_bench_file",
    "load_series",
    "find_regressions",
    "render_history",
]

#: default relative regression bound (0.10 = newest mean >10% above previous)
DEFAULT_THRESHOLD = 0.10


def _fmt_s(seconds: float) -> str:
    """Human duration: µs/ms/s picked by magnitude."""
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


@dataclass(frozen=True)
class BenchFile:
    """One pytest-benchmark JSON recording, reduced to what trends need."""

    path: str
    label: str
    datetime: str
    #: benchmark fullname -> mean seconds
    means: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Regression:
    """One benchmark that slowed past the threshold between recordings."""

    name: str
    before_s: float
    after_s: float

    @property
    def ratio(self) -> float:
        return self.after_s / self.before_s if self.before_s > 0 else float("inf")


def load_bench_file(path: str) -> BenchFile:
    """Parse one pytest-benchmark JSON file."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ExperimentError(f"cannot read benchmark file {path!r}: {exc}") from exc
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ExperimentError(
            f"{path!r} is not a pytest-benchmark JSON file "
            "(missing 'benchmarks' list)"
        )
    means: dict[str, float] = {}
    for bench in benchmarks:
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        if name and "mean" in stats:
            means[name] = stats["mean"]
    label = path.replace("\\", "/").rsplit("/", 1)[-1]
    return BenchFile(
        path=path,
        label=label,
        datetime=str(data.get("datetime", "")),
        means=means,
    )


def load_series(paths: list[str]) -> list[BenchFile]:
    """Load and order recordings oldest-first by their datetime stamp."""
    files = [load_bench_file(p) for p in paths]
    return sorted(files, key=lambda f: (f.datetime, f.label))


def find_regressions(
    older: BenchFile, newer: BenchFile, threshold: float = DEFAULT_THRESHOLD
) -> list[Regression]:
    """Shared benchmarks whose mean grew by more than ``threshold``."""
    out = []
    for name in sorted(older.means.keys() & newer.means.keys()):
        before, after = older.means[name], newer.means[name]
        if before > 0 and (after - before) / before > threshold:
            out.append(Regression(name=name, before_s=before, after_s=after))
    return out


def _short(name: str) -> str:
    """Trim the path prefix of a pytest fullname for table display."""
    return name.split("::", 1)[1] if "::" in name else name


def render_history(
    series: list[BenchFile], threshold: float = DEFAULT_THRESHOLD
) -> tuple[str, list[Regression]]:
    """The trend table plus the newest-pair regressions.

    One row per benchmark (first-appearance order), one column per
    recording; a final ``Δ`` column compares the two newest files where
    both measured the benchmark.
    """
    if not series:
        return "(no benchmark files)", []
    names: list[str] = []
    seen: set[str] = set()
    for f in series:
        for name in f.means:
            if name not in seen:
                seen.add(name)
                names.append(name)
    regressions = (
        find_regressions(series[-2], series[-1], threshold)
        if len(series) >= 2
        else []
    )
    regressed = {r.name for r in regressions}
    name_w = max([len(_short(n)) for n in names] + [len("benchmark")])
    col_w = max([len(f.label) for f in series] + [9])
    header = (
        "benchmark".ljust(name_w)
        + "  "
        + "  ".join(f.label.rjust(col_w) for f in series)
        + "  " + "Δ newest".rjust(9)
    )
    lines = [header, "-" * len(header)]
    for name in names:
        cells = []
        for f in series:
            mean = f.means.get(name)
            cells.append((_fmt_s(mean) if mean is not None else "-").rjust(col_w))
        delta = ""
        if len(series) >= 2:
            before = series[-2].means.get(name)
            after = series[-1].means.get(name)
            if before and after:
                delta = f"{100.0 * (after - before) / before:+.1f}%"
                if name in regressed:
                    delta += " !!"
        lines.append(
            _short(name).ljust(name_w) + "  " + "  ".join(cells)
            + "  " + delta.rjust(9)
        )
    if regressions:
        lines.append("")
        lines.append(
            f"REGRESSIONS (> {threshold * 100:.0f}% between "
            f"{series[-2].label} and {series[-1].label}):"
        )
        for r in regressions:
            lines.append(
                f"  {_short(r.name)}: {_fmt_s(r.before_s)} -> "
                f"{_fmt_s(r.after_s)} ({r.ratio:.2f}x)"
            )
    else:
        lines.append("")
        lines.append(
            f"no regressions > {threshold * 100:.0f}%"
            + (
                f" between {series[-2].label} and {series[-1].label}"
                if len(series) >= 2
                else " (need at least two recordings to compare)"
            )
        )
    return "\n".join(lines), regressions
