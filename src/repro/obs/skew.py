"""Skew and straggler analysis of finished jobs.

Section 6.4's observation is that one hot partition-cell makes its
reducer the critical path — the cost model captures it through the
``max(sum/slots, max)`` makespan, and this module makes it visible on a
measured run: per-reducer input-record histograms, the hottest cell, and
p50/p95/max task-duration statistics from the per-task wall-clock stamps
the workers ship back.

With the paper's configuration — one reducer per partition-cell routed
by the identity partitioner — reducer ``r`` *is* cell ``r``, so the
"hottest reducer" of a join job is the hottest grid cell.

Everything here is pure analysis of :class:`~repro.mapreduce.engine.JobResult`
fields; nothing imports the engine at runtime, so the obs package stays
import-cycle free.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.mapreduce.engine import JobResult

__all__ = ["DurationStats", "JobSkewReport", "analyze_job", "workflow_skew"]


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (q in [0, 1])."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


@dataclass(frozen=True)
class DurationStats:
    """Distribution summary of task durations (seconds)."""

    count: int = 0
    total_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_durations(cls, durations: Sequence[float]) -> "DurationStats":
        if not durations:
            return cls()
        ordered = sorted(durations)
        return cls(
            count=len(ordered),
            total_s=sum(ordered),
            p50_s=_percentile(ordered, 0.50),
            p95_s=_percentile(ordered, 0.95),
            max_s=ordered[-1],
        )

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
        }


def _span_makespan(spans: Sequence[tuple[float, float]]) -> float:
    """Wall-clock extent of a set of (start, end) task intervals."""
    if not spans:
        return 0.0
    return max(end for __, end in spans) - min(start for start, __ in spans)


@dataclass(frozen=True)
class JobSkewReport:
    """Everything the dashboard and metrics snapshot say about one job."""

    job_name: str
    #: reduce-task input records, indexed by reducer id (= cell id for
    #: identity-partitioned join jobs)
    reducer_records: list[int] = field(default_factory=list)
    #: reducer id with the most input records (None for map-only jobs)
    hottest_reducer: int | None = None
    #: max / mean of per-reducer input records (1.0 = perfectly even)
    skew: float = 0.0
    map_durations: DurationStats = field(default_factory=DurationStats)
    reduce_durations: DurationStats = field(default_factory=DurationStats)
    #: measured wall-clock extent of each task phase (first start to
    #: last end), comparable in *shape* with the modelled makespan
    measured_map_makespan_s: float = 0.0
    measured_reduce_makespan_s: float = 0.0
    #: the cost model's simulated makespans for the same phases
    modelled_map_makespan_s: float = 0.0
    modelled_reduce_makespan_s: float = 0.0

    @property
    def total_reduce_records(self) -> int:
        """Sum over reducers — equals the REDUCE_INPUT_RECORDS counter."""
        return sum(self.reducer_records)

    def as_dict(self) -> dict[str, Any]:
        return {
            "job": self.job_name,
            "reducer_records": list(self.reducer_records),
            "hottest_reducer": self.hottest_reducer,
            "skew": self.skew,
            "map_durations": self.map_durations.as_dict(),
            "reduce_durations": self.reduce_durations.as_dict(),
            "measured_map_makespan_s": self.measured_map_makespan_s,
            "measured_reduce_makespan_s": self.measured_reduce_makespan_s,
            "modelled_map_makespan_s": self.modelled_map_makespan_s,
            "modelled_reduce_makespan_s": self.modelled_reduce_makespan_s,
        }


def analyze_job(result: "JobResult") -> JobSkewReport:
    """Distil one job's skew/straggler picture from its result."""
    # Map-only jobs reuse reduce_tasks for part-file stats but ran no
    # reduce phase; an empty reduce_task_wall tells them apart.
    ran_reduce = bool(result.reduce_task_wall)
    reducer_records = (
        [t.input_records for t in result.reduce_tasks] if ran_reduce else []
    )
    hottest: int | None = None
    skew = 0.0
    if reducer_records:
        hottest = max(range(len(reducer_records)), key=reducer_records.__getitem__)
        mean = sum(reducer_records) / len(reducer_records)
        skew = (max(reducer_records) / mean) if mean > 0 else 0.0
    return JobSkewReport(
        job_name=result.job_name,
        reducer_records=reducer_records,
        hottest_reducer=hottest,
        skew=skew,
        map_durations=DurationStats.from_durations(
            [end - start for start, end in result.map_task_wall]
        ),
        reduce_durations=DurationStats.from_durations(
            [end - start for start, end in result.reduce_task_wall]
        ),
        measured_map_makespan_s=_span_makespan(result.map_task_wall),
        measured_reduce_makespan_s=_span_makespan(result.reduce_task_wall),
        modelled_map_makespan_s=result.cost.map_s,
        modelled_reduce_makespan_s=result.cost.reduce_s,
    )


def workflow_skew(job_results: Sequence["JobResult"]) -> float:
    """Reducer skew of a job chain: the skew of its heaviest reduce job.

    "Heaviest" by total reduce input records — for the join algorithms
    that is the job whose reducers do the actual joining, exactly where
    a hot cell shows up.  Returns 0.0 when no job ran a reduce phase.
    """
    best_records = -1
    best_skew = 0.0
    for result in job_results:
        report = analyze_job(result)
        if report.hottest_reducer is None:
            continue
        if report.total_reduce_records > best_records:
            best_records = report.total_reduce_records
            best_skew = report.skew
    return best_skew
