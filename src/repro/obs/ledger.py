"""The run ledger: an append-only journal of typed run events.

Where the trace recorder answers "what did the run look like" (spans on
a timeline), the ledger answers "what *happened*, durably": a JSONL
journal of typed events a cluster operator can grep, tail, or replay
after the process is gone.  One run emits

* one ``run_manifest`` — the configuration under which everything below
  executed (kernel, executor, worker count, seed, memory budget, ...);
* ``job_start`` / ``job_commit`` brackets per engine job, the commit
  carrying the final counters and simulated seconds;
* ``task_attempt`` events from the recovery layer — every launch with
  its outcome (``ok``/``failed``/``corrupt``/``lost``/``timeout``/
  ``skipped``), plus ``task_retry`` backoff charges, ``task_skip``
  quarantines, and ``speculation_launch`` markers;
* ``spill`` events per map task that exceeded its memory budget;
* ``checkpoint_write`` / ``checkpoint_restore`` events from the
  workflow's manifest path;
* worker failure-domain events when the cluster's pool is engaged —
  ``worker_lost`` (with its ``detected`` mode), ``output_invalidated``
  (the committed map outputs that died with the worker, and how many
  re-executed), ``worker_blacklisted``, ``worker_joined`` — plus
  ``warning`` events such as the degraded-watchdog notice;
* durable-storage events when the block plane is engaged
  (``Cluster(replication=N)``) — ``block_corruption`` (a checksum
  failure detected at read, failed over), ``replica_lost`` (with its
  ``reason``: a fault, a missing replica file, or ``worker_lost``),
  ``block_rereplicated`` (one healing copy, with its bytes) and
  ``locality`` (one per map task: did its first attempt land on a
  worker holding its split's blocks?).

Two implementations share one API, mirroring the recorder pair:

:class:`NullLedger`
    The default: ``enabled`` is ``False`` and every call is a no-op, so
    an unledgered run pays one attribute check per instrumentation
    point (bounded by ``benchmarks/test_obs_overhead.py``).
:class:`RunLedger`
    Stamps each event with a sequence number and seconds-since-epoch
    offset and appends it to a pluggable sink (:class:`MemorySink` for
    tests, :class:`JsonlSink` for durable files).

The reader half (:func:`read_ledger`, :class:`LedgerRun`) reconstructs
a run from its journal.  Replay is exact by construction: the emitting
sites are the same code paths that feed the engine counters, and each
``task_attempt`` event carries an explicit ``charged`` flag (an
attempt can be recorded as ``failed`` without being charged as a task
failure — a speculative loser that raised after its sibling won), so
``LedgerRun`` job tallies reproduce ``TASK_ATTEMPTS``/``TASK_FAILURES``
et al. without re-deriving recovery policy.

Like the trace recorder, the ledger is an observer: writing one never
changes counters, part files or simulated seconds.  This module
imports nothing from the engine, so every layer can depend on it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "NullLedger",
    "RunLedger",
    "MemorySink",
    "JsonlSink",
    "LedgerRun",
    "JobRecord",
    "read_ledger",
]

#: event types a ledger may emit (the reader accepts unknown types too,
#: for forward compatibility — they land in the event stream untallied)
EVENT_TYPES = (
    "run_manifest",
    "job_start",
    "job_commit",
    "task_attempt",
    "task_retry",
    "task_skip",
    "speculation_launch",
    "spill",
    "checkpoint_write",
    "checkpoint_restore",
    "worker_lost",
    "worker_blacklisted",
    "worker_joined",
    "output_invalidated",
    "block_corruption",
    "replica_lost",
    "block_rereplicated",
    "locality",
    "warning",
)


class MemorySink:
    """Collects events in a list — the test double."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def append(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        return None


class JsonlSink:
    """Appends events as JSON lines to a host-filesystem file.

    The file opens lazily on the first event and is line-buffered, so a
    crashed run leaves every completed event readable (the append-only
    durability a journal exists for).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None

    def append(self, event: dict[str, Any]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8", buffering=1)
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class NullLedger:
    """The zero-overhead default ledger: every call is a no-op.

    The engine and recovery layer are instrumented unconditionally but
    guard each site with ``ledger.enabled``, so the disabled cost is a
    single attribute lookup per site.
    """

    enabled: bool = False

    def manifest(self, **config: Any) -> None:
        """Record the run configuration (once; no-op here)."""
        return None

    def event(self, type_: str, **fields: Any) -> None:
        """Append one typed event (no-op here)."""
        return None

    def close(self) -> None:
        """Flush and close the sink (no-op here)."""
        return None


class RunLedger(NullLedger):
    """Journals typed events through a sink, stamped and sequenced.

    ``seq`` is a monotonically increasing event number (the total order
    of the journal); ``t_s`` is seconds since the ledger's construction
    — wall offsets for humans, never fed back into any computation.
    One ledger may span many jobs and clusters, like the recorder.
    """

    enabled = True

    def __init__(self, sink: MemorySink | JsonlSink | None = None) -> None:
        self.sink = sink if sink is not None else MemorySink()
        self.epoch = time.perf_counter()
        self.seq = 0
        self._manifested = False

    def manifest(self, **config: Any) -> None:
        """Record the run configuration.  First call wins.

        The CLI manifests before the engine does (it knows the seed and
        command line); a bare ``Cluster`` manifests its own config on
        the first job.  Either way exactly one ``run_manifest`` event
        leads the journal.
        """
        if self._manifested:
            return
        self._manifested = True
        self.event("run_manifest", config=dict(config))

    def event(self, type_: str, **fields: Any) -> None:
        record = {
            "type": type_,
            "seq": self.seq,
            "t_s": round(time.perf_counter() - self.epoch, 6),
        }
        record.update(fields)
        self.seq += 1
        self.sink.append(record)

    def close(self) -> None:
        self.sink.close()


# ----------------------------------------------------------------------
# Reader / replay
# ----------------------------------------------------------------------
@dataclass
class JobRecord:
    """One job reconstructed from its journal bracket.

    The tallies mirror the engine counters the emitting sites feed:
    ``attempts`` counts launches of map/reduce tasks (write-phase
    retries are charged to ``failures`` but, like the engine's
    ``TASK_ATTEMPTS``, never to ``attempts``), ``failures`` counts
    events with ``charged=True`` across all phases.
    """

    name: str
    started: bool = False
    committed: bool = False
    restored: bool = False
    events: list[dict[str, Any]] = field(default_factory=list)
    attempts: int = 0
    failures: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    timeouts: int = 0
    skipped_records: int = 0
    spilled_records: int = 0
    spill_files: int = 0
    spill_bytes: int = 0
    checkpoint_writes: int = 0
    worker_failures: int = 0
    workers_blacklisted: int = 0
    workers_joined: int = 0
    map_outputs_lost: int = 0
    tasks_reexecuted: int = 0
    #: storage-plane tallies (block plane engaged): checksum failures
    #: detected at read, replicas lost (faults, dead workers), healing
    #: copies, and map-task locality outcomes
    block_corruptions: int = 0
    replicas_lost: int = 0
    blocks_rereplicated: int = 0
    locality_hits: int = 0
    locality_misses: int = 0
    #: in-flight attempts recorded as ``worker_lost`` — never charged
    #: as task failures (includes speculative losers on dead workers)
    lost_attempts: int = 0
    warnings: list[dict[str, Any]] = field(default_factory=list)
    simulated_seconds: float | None = None
    counters: dict[str, Any] = field(default_factory=dict)

    def tally(self, event: dict[str, Any]) -> None:
        """Fold one event of this job into the replay counts."""
        self.events.append(event)
        etype = event.get("type")
        if etype == "job_start":
            self.started = True
        elif etype == "job_commit":
            self.committed = True
            self.simulated_seconds = event.get("simulated_s")
            self.counters = dict(event.get("counters", {}))
        elif etype == "task_attempt":
            if event.get("phase") in ("map", "reduce"):
                self.attempts += 1
            if event.get("charged"):
                self.failures += 1
            if event.get("outcome") == "timeout":
                self.timeouts += 1
            if event.get("outcome") == "ok" and event.get("speculative"):
                self.speculative_wins += 1
            if event.get("outcome") == "worker_lost":
                self.lost_attempts += 1
        elif etype == "task_skip":
            self.skipped_records += 1
        elif etype == "speculation_launch":
            self.speculative_launches += 1
        elif etype == "spill":
            self.spilled_records += event.get("records", 0)
            self.spill_files += event.get("files", 0)
            self.spill_bytes += event.get("bytes", 0)
        elif etype == "checkpoint_write":
            self.checkpoint_writes += 1
        elif etype == "checkpoint_restore":
            self.restored = True
        elif etype == "worker_lost":
            self.worker_failures += 1
        elif etype == "worker_blacklisted":
            self.workers_blacklisted += 1
        elif etype == "worker_joined":
            self.workers_joined += 1
        elif etype == "output_invalidated":
            self.map_outputs_lost += len(event.get("tasks", ()))
            self.tasks_reexecuted += event.get("reexecuted", 0)
        elif etype == "block_corruption":
            self.block_corruptions += 1
        elif etype == "replica_lost":
            self.replicas_lost += 1
        elif etype == "block_rereplicated":
            self.blocks_rereplicated += 1
        elif etype == "locality":
            if event.get("hit"):
                self.locality_hits += 1
            else:
                self.locality_misses += 1
        elif etype == "warning":
            self.warnings.append(event)


@dataclass
class LedgerRun:
    """A whole run reconstructed from its journal.

    Events between a ``job_start`` and its ``job_commit`` attribute to
    that job (the engine runs jobs one at a time parent-side, so the
    brackets never interleave); ``checkpoint_*`` events fire outside
    the bracket and carry an explicit ``job`` field instead.
    """

    manifest: dict[str, Any] | None = None
    jobs: list[JobRecord] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: list[dict[str, Any]]) -> "LedgerRun":
        run = cls(events=list(events))
        by_name: dict[str, JobRecord] = {}
        current: JobRecord | None = None

        def record_for(name: str) -> JobRecord:
            job = by_name.get(name)
            if job is None:
                job = by_name[name] = JobRecord(name=name)
                run.jobs.append(job)
            return job

        for event in events:
            etype = event.get("type")
            if etype == "run_manifest":
                if run.manifest is None:
                    run.manifest = dict(event.get("config", {}))
                continue
            named = event.get("job")
            if etype == "job_start":
                current = record_for(named or "?")
                current.tally(event)
                continue
            if etype == "job_commit":
                job = record_for(named) if named else current
                if job is not None:
                    job.tally(event)
                current = None
                continue
            # Mid-bracket events attribute to the open job; out-of-band
            # events (checkpoints) name their job explicitly.
            job = record_for(named) if named else current
            if job is not None:
                job.tally(event)
        return run

    @classmethod
    def from_file(cls, path: str) -> "LedgerRun":
        return cls.from_events(read_ledger(path))

    def job(self, name: str) -> JobRecord | None:
        for job in self.jobs:
            if job.name == name:
                return job
        return None

    @property
    def total_attempts(self) -> int:
        return sum(j.attempts for j in self.jobs)

    @property
    def total_failures(self) -> int:
        return sum(j.failures for j in self.jobs)


def read_ledger(path: str) -> list[dict[str, Any]]:
    """Load a JSONL journal back into its event list (blank lines skipped)."""
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
