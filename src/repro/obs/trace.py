"""Structured tracing: spans and instants on named tracks.

The recorder is the collection point of the observability layer.  The
engine opens *spans* (named intervals with attached key/value ``args``)
around each execution stage — job, split construction, map phase,
shuffle merge, reduce phase, part-file write — and retro-reports
*task* spans from start/end stamps measured inside the workers.  The
workflow adds per-job chain spans with counter deltas.

Two implementations share one API:

:class:`NullRecorder`
    The default.  Every call is a no-op returning shared singletons, so
    an uninstrumented run pays only the cost of the calls themselves
    (one attribute lookup and one no-op method per stage — no
    allocation, no timestamps).
:class:`TraceRecorder`
    Records everything, timestamped with :func:`time.perf_counter`
    relative to the recorder's construction (its *epoch*).  On Linux
    ``perf_counter`` is CLOCK_MONOTONIC, which is system-wide, so
    stamps taken inside forked worker processes are directly comparable
    with the parent's — per-task spans from the ``process`` executor
    land on the same timeline as the engine's phase spans.

Tracks are plain strings (``"engine"``, ``"map tasks"``, ...).  Spans
on one track must either nest (job contains phase) or be disjoint
(consecutive jobs); genuinely concurrent spans — parallel tasks — are
laid out into non-overlapping lanes by the exporter, not here.

Besides spans and instants the recorder collects *counter timelines*:
named series of ``(t, value)`` samples — in-flight tasks per phase,
worker occupancy, cumulative shuffle/spill bytes — recorded at task
boundaries via :meth:`~TraceRecorder.counter_sample` (absolute gauge)
and :meth:`~TraceRecorder.counter_add` (running total).  The exporter
renders each series as a Chrome trace-event ``"C"`` counter track.

This module deliberately imports nothing from the engine, so every
layer of the stack can depend on it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "NullRecorder", "TraceRecorder"]


@dataclass
class Span:
    """One named interval on a track.

    ``start_s``/``end_s`` are seconds since the recorder's epoch.
    ``args`` carries structured metadata (record counts, byte volumes,
    simulated seconds) into the exported trace.
    """

    name: str
    cat: str
    track: str
    start_s: float = 0.0
    end_s: float = 0.0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def set(self, key: str, value: Any) -> None:
        """Attach one metadata value (shown in the trace viewer)."""
        self.args[key] = value


class _NullSpan:
    """Shared do-nothing span: context manager and ``set`` sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default recorder: every call is a no-op.

    The engine is instrumented unconditionally; with this recorder the
    instrumentation reduces to no-op method calls on shared singletons,
    preserving the hot path (asserted by the < 2% overhead benchmark in
    ``benchmarks/test_obs_overhead.py``).
    """

    enabled: bool = False

    def span(self, name: str, cat: str = "span", track: str = "engine"):
        """A context manager timing the enclosed block (no-op here)."""
        return _NULL_SPAN

    def add_span(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        end: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record an already-measured interval (no-op here).

        ``start``/``end`` are raw :func:`time.perf_counter` stamps (the
        recorder converts to its epoch), so workers can measure time
        without knowing the recorder exists.
        """
        return None

    def instant(
        self,
        name: str,
        cat: str = "event",
        track: str = "engine",
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a zero-duration marker (no-op here)."""
        return None

    def counter_sample(self, name: str, t: float, value: float) -> None:
        """Record one absolute gauge sample (no-op here).

        ``t`` is a raw :func:`time.perf_counter` stamp (the recorder
        converts to its epoch), matching :meth:`add_span`.
        """
        return None

    def counter_add(self, name: str, t: float, delta: float) -> None:
        """Add ``delta`` to a running total and sample it (no-op here)."""
        return None


class _SpanContext:
    """Times one ``with`` block and files the span on exit."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "TraceRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        self._span.start_s = self._recorder.now()
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.end_s = self._recorder.now()
        self._recorder.spans.append(self._span)
        return None


class TraceRecorder(NullRecorder):
    """Collects spans and instants for export.

    Spans are appended at *close* time, so nested spans appear after
    their parent closes; the exporter orders by timestamp.  One
    recorder may span many jobs, many clusters and many algorithms —
    the CLI uses a single recorder for a whole experiment table.
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self.instants: list[Span] = []
        #: counter timelines: name -> [(seconds since epoch, value), ...]
        self.counters: dict[str, list[tuple[float, float]]] = {}
        self._counter_totals: dict[str, float] = {}

    def now(self) -> float:
        """Seconds since the recorder's epoch."""
        return time.perf_counter() - self.epoch

    def span(self, name: str, cat: str = "span", track: str = "engine"):
        return _SpanContext(self, Span(name=name, cat=cat, track=track))

    def add_span(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        end: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                track=track,
                start_s=start - self.epoch,
                end_s=end - self.epoch,
                args=dict(args) if args else {},
            )
        )

    def instant(
        self,
        name: str,
        cat: str = "event",
        track: str = "engine",
        args: dict[str, Any] | None = None,
    ) -> None:
        t = self.now()
        self.instants.append(
            Span(
                name=name,
                cat=cat,
                track=track,
                start_s=t,
                end_s=t,
                args=dict(args) if args else {},
            )
        )

    def counter_sample(self, name: str, t: float, value: float) -> None:
        self.counters.setdefault(name, []).append((t - self.epoch, value))

    def counter_add(self, name: str, t: float, delta: float) -> None:
        total = self._counter_totals.get(name, 0.0) + delta
        self._counter_totals[name] = total
        self.counters.setdefault(name, []).append((t - self.epoch, total))

    def tracks(self) -> list[str]:
        """Track names in order of first appearance (spans then instants)."""
        seen: dict[str, None] = {}
        for s in sorted(self.spans + self.instants, key=lambda s: s.start_s):
            seen.setdefault(s.track, None)
        return list(seen)
