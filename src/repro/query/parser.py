"""A tiny textual query language, mirroring the paper's notation.

The paper writes queries as conjunctions like ``R1 Ov R2 and R2 Ra(100)
R3``; this parser accepts exactly that form so the CLI (and tests) can
take whole queries as strings::

    parse_query("R1 Ov R2 and R2 Ra(100) R3")
    parse_query("a Ct b", datasets={"a": "regions", "b": "sites"})

Grammar (case-insensitive keywords, whitespace-tolerant)::

    query     :=  triple ( "and" triple )*
    triple    :=  SLOT predicate SLOT
    predicate :=  "Ov" | "Ct" | "Ra" "(" NUMBER ")"
    SLOT      :=  [A-Za-z_][A-Za-z0-9_#-]*

Self-joins use the same slot-to-dataset indirection as the programmatic
API: pass ``datasets`` to map distinct slots onto one dataset.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from repro.errors import QueryError
from repro.query.predicates import Contains, Overlap, Predicate, Range
from repro.query.query import Query, Triple

__all__ = ["parse_query"]

_SLOT = r"[A-Za-z_][A-Za-z0-9_#-]*"
_NUMBER = r"[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"
_TRIPLE_RE = re.compile(
    rf"^\s*(?P<left>{_SLOT})\s+"
    rf"(?P<pred>[A-Za-z]+)\s*(?:\(\s*(?P<arg>{_NUMBER})\s*\))?\s+"
    rf"(?P<right>{_SLOT})\s*$"
)


def _parse_predicate(name: str, arg: str | None, source: str) -> Predicate:
    lowered = name.lower()
    if lowered == "ov":
        if arg is not None:
            raise QueryError(f"Ov takes no argument in {source!r}")
        return Overlap()
    if lowered == "ct":
        if arg is not None:
            raise QueryError(f"Ct takes no argument in {source!r}")
        return Contains()
    if lowered == "ra":
        if arg is None:
            raise QueryError(f"Ra needs a distance, e.g. Ra(100), in {source!r}")
        return Range(float(arg))
    raise QueryError(
        f"unknown predicate {name!r} in {source!r}; expected Ov, Ct or Ra(d)"
    )


def parse_query(
    text: str, datasets: Mapping[str, str] | None = None
) -> Query:
    """Parse the paper-style conjunction syntax into a :class:`Query`."""
    if not text or not text.strip():
        raise QueryError("empty query string")
    triples: list[Triple] = []
    for part in re.split(r"\s+and\s+", text.strip(), flags=re.IGNORECASE):
        match = _TRIPLE_RE.match(part)
        if match is None:
            raise QueryError(
                f"cannot parse join condition {part!r}; expected "
                "'<slot> Ov|Ct|Ra(d) <slot>'"
            )
        predicate = _parse_predicate(
            match.group("pred"), match.group("arg"), part
        )
        triples.append(
            Triple(predicate, match.group("left"), match.group("right"))
        )
    return Query(triples, datasets)
