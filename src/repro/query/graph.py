"""Join-graph utilities (Section 1.2 and the C-Rep-L bounds of §7.9/§8).

The query is visualised as a graph with one vertex per slot and one edge
per triple, weighted 0 for overlap edges and ``d`` for range edges.  This
module derives the graph-structural facts the algorithms need:

* connected evaluation orders (for the local backtracking join and for
  the 2-way Cascade plan),
* enumeration of connected slot-subsets (the candidate rectangle-set
  shapes of the Controlled-Replicate marking test), and
* the per-slot replication distance bounds of C-Rep-L.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Mapping
from functools import cached_property

import networkx as nx

from repro.errors import QueryError
from repro.query.query import Query, Triple

__all__ = ["JoinGraph", "crepl_bounds"]


class JoinGraph:
    """Structural view of a query's join graph."""

    def __init__(self, query: Query) -> None:
        self.query = query
        graph = nx.MultiGraph()
        graph.add_nodes_from(query.slots)
        for t in query.triples:
            graph.add_edge(t.left, t.right, triple=t, weight=t.predicate.distance)
        self._graph = graph

    @cached_property
    def slots(self) -> tuple[str, ...]:
        return self.query.slots

    def neighbors(self, slot: str) -> tuple[str, ...]:
        """Adjacent slots (each listed once even with parallel edges)."""
        return tuple(self._graph.neighbors(slot))

    def degree(self, slot: str) -> int:
        """Number of triples touching the slot."""
        return len(self.query.triples_touching(slot))

    # ------------------------------------------------------------------
    # Evaluation orders
    # ------------------------------------------------------------------
    def connected_order(self, start: str | None = None) -> tuple[str, ...]:
        """A slot order where every slot (after the first) has an earlier
        neighbor.

        Used by the local backtracking join so each newly bound slot can
        be constrained through at least one already-bound edge.  Slots
        with higher degree are preferred early (more constraining).
        """
        if start is None:
            start = max(self.slots, key=self.degree)
        if start not in self.slots:
            raise QueryError(f"unknown slot {start!r}")
        order = [start]
        placed = {start}
        while len(order) < len(self.slots):
            frontier = [
                s
                for s in self.slots
                if s not in placed and any(n in placed for n in self.neighbors(s))
            ]
            if not frontier:  # pragma: no cover - query validation bars this
                raise QueryError("join graph is disconnected")
            nxt = max(frontier, key=self.degree)
            order.append(nxt)
            placed.add(nxt)
        return tuple(order)

    def spanning_triples(self, start: str | None = None) -> tuple[Triple, ...]:
        """Triples ordered so each one attaches to the already-joined set.

        The prefix forms a spanning tree (each triple introduces a new
        slot); the remaining triples connect two already-joined slots and
        act as filters.  This is the 2-way Cascade plan skeleton.
        """
        order = self.connected_order(start)
        placed: set[str] = {order[0]}
        expanding: list[Triple] = []
        used: set[int] = set()
        for slot in order[1:]:
            for i, t in enumerate(self.query.triples):
                if i in used or not t.touches(slot):
                    continue
                if t.other(slot) in placed:
                    expanding.append(t)
                    used.add(i)
                    placed.add(slot)
                    break
        filters = [t for i, t in enumerate(self.query.triples) if i not in used]
        return tuple(expanding + filters)

    # ------------------------------------------------------------------
    # Connected subsets (Controlled-Replicate marking shapes)
    # ------------------------------------------------------------------
    def connected_subsets_containing(self, slot: str) -> tuple[frozenset[str], ...]:
        """All connected *proper* slot-subsets containing ``slot``.

        These are exactly the relation-set shapes the marking test of
        Controlled-Replicate has to try: a rectangle-set satisfying
        C1–C3 may be assumed w.l.o.g. to induce a connected subgraph
        containing the rectangle's own slot (dropping other components
        only removes crossing constraints), and condition C3 rules out
        the full slot set.  Ordered smallest-first so the existence
        search tries cheap shapes first.
        """
        if slot not in self.slots:
            raise QueryError(f"unknown slot {slot!r}")
        found: set[frozenset[str]] = set()

        def grow(current: frozenset[str]) -> None:
            if current in found:
                return
            found.add(current)
            frontier = {
                n
                for s in current
                for n in self.neighbors(s)
                if n not in current
            }
            for nxt in frontier:
                grown = current | {nxt}
                if len(grown) < len(self.slots):
                    grow(grown)

        grow(frozenset({slot}))
        return tuple(sorted(found, key=lambda s: (len(s), sorted(s))))

    def outside_triples(self, subset: frozenset[str]) -> tuple[Triple, ...]:
        """Triples with exactly one endpoint inside ``subset`` (C2's pairs)."""
        return tuple(
            t
            for t in self.query.triples
            if (t.left in subset) != (t.right in subset)
        )

    def inside_triples(self, subset: frozenset[str]) -> tuple[Triple, ...]:
        """Triples with both endpoints inside ``subset`` (consistency edges)."""
        return tuple(
            t
            for t in self.query.triples
            if t.left in subset and t.right in subset
        )

    # ------------------------------------------------------------------
    # C-Rep-L bounds
    # ------------------------------------------------------------------
    def replication_bounds(
        self, d_max: float | Mapping[str, float]
    ) -> dict[str, float]:
        """Per-slot replication distance bounds for C-Rep-L (§7.9, §8).

        A rectangle ``u`` of slot ``A`` and a rectangle ``x`` of slot
        ``B`` can co-occur in an output tuple only if
        ``dist(u, x) <=`` the cheapest join-graph path from A to B,
        where each edge contributes its range parameter and each
        *interior* vertex contributes the diameter bound ``d_max`` of its
        dataset (two consecutive edges must both touch the interior
        rectangle, so the hop across it costs at most its diagonal).

        The bound for slot ``A`` is the maximum of that quantity over
        all other slots — e.g. ``(m-2) * d_max`` for an overlap chain and
        ``(m-2) * d_max + (m-1) * d`` for a range chain, matching the
        paper's Figures 6 and 8.

        Parameters
        ----------
        d_max:
            Either a single upper bound on every rectangle diagonal or a
            per-*slot* mapping (per-dataset bounds can be spread onto
            slots by the caller).
        """
        if isinstance(d_max, Mapping):
            diag = dict(d_max)
            missing = [s for s in self.slots if s not in diag]
            if missing:
                raise QueryError(f"d_max mapping missing slots: {missing}")
        else:
            diag = {s: float(d_max) for s in self.slots}
        for slot, value in diag.items():
            if value < 0 or math.isnan(value):
                raise QueryError(f"d_max for {slot!r} must be >= 0, got {value}")

        bounds: dict[str, float] = {}
        for source in self.slots:
            dist = self._node_weighted_dijkstra(source, diag)
            bounds[source] = max(
                (dist[b] for b in self.slots if b != source), default=0.0
            )
        return bounds

    def _node_weighted_dijkstra(
        self, source: str, diag: Mapping[str, float]
    ) -> dict[str, float]:
        """Cheapest path cost: sum of edge distances + interior diagonals.

        Implemented by charging ``diag[v]`` on entering ``v`` and
        refunding it at the destination (the destination is an endpoint,
        not an interior vertex).
        """
        best: dict[str, float] = {source: 0.0}
        heap: list[tuple[float, str]] = [(0.0, source)]
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > best.get(node, math.inf):
                continue
            for __, nbr, data in self._graph.edges(node, data=True):
                nxt_cost = cost + data["weight"] + diag[nbr]
                if nxt_cost < best.get(nbr, math.inf):
                    best[nbr] = nxt_cost
                    heapq.heappush(heap, (nxt_cost, nbr))
        return {
            node: best[node] - (diag[node] if node != source else 0.0)
            for node in best
        }


def crepl_bounds(
    query: Query,
    d_max: float | Mapping[str, float],
    *,
    per_dataset: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Convenience wrapper returning C-Rep-L bounds keyed by slot.

    ``per_dataset`` spreads dataset-level diagonal bounds onto slots and
    overrides ``d_max`` where present.
    """
    graph = JoinGraph(query)
    if per_dataset is not None:
        diag = {
            slot: per_dataset.get(
                query.dataset_of(slot),
                d_max if not isinstance(d_max, Mapping) else d_max[slot],
            )
            for slot in query.slots
        }
        return graph.replication_bounds(diag)
    return graph.replication_bounds(d_max)
