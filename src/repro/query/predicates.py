"""Spatial join predicates (Section 1.2).

The paper considers two predicates over rectangle pairs:

* ``Overlap(r1, r2)`` — the rectangles intersect,
* ``Range(r1, r2, d)`` — some point of ``r1`` is within Euclidean
  distance ``d`` of some point of ``r2``.

``Overlap`` is exactly ``Range`` with ``d = 0`` (Section 9 uses this to
fold hybrid queries into range queries); the two classes are kept
distinct because the Controlled-Replicate condition C2 and the C-Rep-L
bounds have cheaper forms for overlap edges.

``Contains`` extends the framework to the containment queries the
paper's conclusions name as future work.  Containment implies overlap,
so every distance-0 routing/marking argument applies unchanged; the only
new requirement is *orientation* — ``Contains`` is not symmetric, and
the evaluators consult :attr:`Predicate.symmetric` /
``Triple.holds_with`` to apply it the right way around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.geometry.rectangle import Rect

__all__ = ["Predicate", "Overlap", "Range", "Contains"]


@dataclass(frozen=True, slots=True)
class Predicate:
    """Base class for binary spatial predicates.

    The paper's two predicates are symmetric; asymmetric predicates
    (``Contains``) set :attr:`symmetric` to False and the evaluators
    orient arguments via ``Triple.holds_with``.
    """

    def holds(self, r1: Rect, r2: Rect) -> bool:
        """Whether the predicate is satisfied by the (ordered) pair."""
        raise NotImplementedError

    @property
    def distance(self) -> float:
        """The edge weight in the join graph: 0 for overlap, ``d`` for range.

        Guarantees ``holds(r1, r2) => min_distance(r1, r2) <= distance``,
        which is what routing, marking and the C-Rep-L bounds consume.
        """
        raise NotImplementedError

    @property
    def symmetric(self) -> bool:
        """Whether ``holds(a, b) == holds(b, a)`` for all inputs."""
        return True

    @property
    def is_overlap(self) -> bool:
        """True for predicates that require intersection (``Ov``-like)."""
        return self.distance == 0.0


@dataclass(frozen=True, slots=True)
class Overlap(Predicate):
    """``Ov``: true iff the two rectangles intersect (touching counts)."""

    def holds(self, r1: Rect, r2: Rect) -> bool:
        return r1.intersects(r2)

    @property
    def distance(self) -> float:
        return 0.0

    def __str__(self) -> str:
        return "Ov"


@dataclass(frozen=True, slots=True)
class Range(Predicate):
    """``Ra(d)``: true iff the rectangles are within Euclidean distance ``d``.

    The paper's prose says "within distance d"; we use the closed form
    ``min_distance <= d`` so that ``Range(0)`` coincides with ``Overlap``.
    """

    d: float

    def __post_init__(self) -> None:
        if self.d < 0:
            raise QueryError(f"range distance must be non-negative, got {self.d}")

    def holds(self, r1: Rect, r2: Rect) -> bool:
        return r1.within_distance(r2, self.d)

    @property
    def distance(self) -> float:
        return self.d

    def __str__(self) -> str:
        return f"Ra({self.d:g})"


@dataclass(frozen=True, slots=True)
class Contains(Predicate):
    """``Ct``: true iff ``r1`` contains ``r2`` (closed extents).

    An asymmetric distance-0 predicate: containment implies overlap, so
    the triple ``(Ct, R1, R2)`` routes and marks exactly like an overlap
    edge; only the final evaluation is oriented.
    """

    def holds(self, r1: Rect, r2: Rect) -> bool:
        return r1.contains_rect(r2)

    @property
    def distance(self) -> float:
        return 0.0

    @property
    def symmetric(self) -> bool:
        return False

    def __str__(self) -> str:
        return "Ct"
