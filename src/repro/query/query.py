"""The multi-way spatial join query model (Section 1.2).

A query is a conjunction of *triples* ``(P_i, R_i1, R_i2)``.  Relations in
a query are modelled as named **slots**: an output tuple binds one
rectangle to every slot.  Each slot reads from a **dataset**; distinct
slots may read the same dataset, which is how the paper's self-join
queries (``Q2s = R Ov R and R Ov R``) are expressed::

    Query(
        triples=[Triple(Overlap(), "A", "B"), Triple(Overlap(), "B", "C")],
        datasets={"A": "roads", "B": "roads", "C": "roads"},
    )

Output semantics for self-joins: slots bound to the same dataset must be
bound to *distinct* rectangles (the paper's road triples are three
different roads), and tuples are reported per slot-assignment, i.e. the
symmetric images of a triple count as separate assignments just as they
would in a relational join of three aliases of the same table.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.predicates import Overlap, Predicate, Range

__all__ = ["Triple", "Query"]


@dataclass(frozen=True, slots=True)
class Triple:
    """One join condition ``(P, R_1, R_2)`` between two slots."""

    predicate: Predicate
    left: str
    right: str

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise QueryError(
                f"a triple must join two different slots, got ({self.left}, {self.right})"
            )

    def other(self, slot: str) -> str:
        """The slot at the opposite end of this condition."""
        if slot == self.left:
            return self.right
        if slot == self.right:
            return self.left
        raise QueryError(f"slot {slot!r} is not part of triple {self}")

    def touches(self, slot: str) -> bool:
        """Whether ``slot`` is one of the two endpoints."""
        return slot in (self.left, self.right)

    def holds_with(self, slot: str, slot_rect, other_rect) -> bool:
        """Evaluate the predicate with ``slot_rect`` bound to ``slot``.

        Orientation matters for asymmetric predicates (``Contains``):
        the predicate's first argument is always the rectangle at the
        triple's *left* endpoint.
        """
        if slot == self.left:
            return self.predicate.holds(slot_rect, other_rect)
        if slot == self.right:
            return self.predicate.holds(other_rect, slot_rect)
        raise QueryError(f"slot {slot!r} is not part of triple {self}")

    def __str__(self) -> str:
        return f"{self.left} {self.predicate} {self.right}"


@dataclass(frozen=True)
class Query:
    """A multi-way spatial join query: a conjunction of triples.

    Parameters
    ----------
    triples:
        The join conditions.  The induced join graph must be connected —
        a disconnected query is a Cartesian product of independent joins
        and none of the paper's algorithms are defined for it.
    datasets:
        Optional mapping from slot name to dataset key.  Slots missing
        from the mapping read the dataset named after the slot.
    """

    triples: tuple[Triple, ...]
    datasets: Mapping[str, str] = field(default_factory=dict)

    def __init__(
        self,
        triples: Iterable[Triple | tuple],
        datasets: Mapping[str, str] | None = None,
    ) -> None:
        normalized = tuple(
            t if isinstance(t, Triple) else Triple(t[0], t[1], t[2]) for t in triples
        )
        object.__setattr__(self, "triples", normalized)
        object.__setattr__(self, "datasets", dict(datasets or {}))
        # Slot order and the slot->dataset map are derived once: both
        # sit on per-candidate paths of the local join and the marking
        # engine, where rebuilding them per call dominates.
        seen: dict[str, None] = {}
        for t in normalized:
            seen.setdefault(t.left, None)
            seen.setdefault(t.right, None)
        object.__setattr__(self, "_slots", tuple(seen))
        object.__setattr__(
            self,
            "_dataset_by_slot",
            {s: self.datasets.get(s, s) for s in seen},
        )
        by_dataset: dict[str, list[str]] = {}
        for s in seen:
            by_dataset.setdefault(self._dataset_by_slot[s], []).append(s)
        object.__setattr__(
            self,
            "_slots_by_dataset",
            {d: tuple(ss) for d, ss in by_dataset.items()},
        )
        self._validate()

    # ------------------------------------------------------------------
    # Construction helpers for the paper's query shapes
    # ------------------------------------------------------------------
    @classmethod
    def chain(
        cls,
        slots: Sequence[str],
        predicate: Predicate | Sequence[Predicate],
        datasets: Mapping[str, str] | None = None,
    ) -> "Query":
        """A chain query ``s1 P s2 and s2 P s3 and ...`` (Q1, Q2, Q3...).

        ``predicate`` is either a single predicate used on every edge or
        one predicate per edge (hybrid chains such as Q4).
        """
        if len(slots) < 2:
            raise QueryError("a chain query needs at least two slots")
        edges = len(slots) - 1
        if isinstance(predicate, Predicate):
            preds: Sequence[Predicate] = [predicate] * edges
        else:
            preds = list(predicate)
            if len(preds) != edges:
                raise QueryError(
                    f"chain of {len(slots)} slots needs {edges} predicates, got {len(preds)}"
                )
        triples = [
            Triple(preds[i], slots[i], slots[i + 1]) for i in range(edges)
        ]
        return cls(triples, datasets)

    @classmethod
    def star(
        cls,
        center: str,
        leaves: Sequence[str],
        predicate: Predicate | Sequence[Predicate],
        datasets: Mapping[str, str] | None = None,
    ) -> "Query":
        """A star query joining every leaf to a common center slot."""
        if not leaves:
            raise QueryError("a star query needs at least one leaf")
        if isinstance(predicate, Predicate):
            preds: Sequence[Predicate] = [predicate] * len(leaves)
        else:
            preds = list(predicate)
            if len(preds) != len(leaves):
                raise QueryError(
                    f"star with {len(leaves)} leaves needs {len(leaves)} predicates"
                )
        triples = [Triple(p, center, leaf) for p, leaf in zip(preds, leaves)]
        return cls(triples, datasets)

    @classmethod
    def self_chain(
        cls, dataset: str, length: int, predicate: Predicate | Sequence[Predicate]
    ) -> "Query":
        """A chain self-join over one dataset (Q2s, Q3s, Q4s).

        Slots are auto-named ``{dataset}#1 .. {dataset}#length``.
        """
        if length < 2:
            raise QueryError("a self-chain needs at least two slots")
        slots = [f"{dataset}#{i + 1}" for i in range(length)]
        return cls.chain(slots, predicate, datasets={s: dataset for s in slots})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def slots(self) -> tuple[str, ...]:
        """All slot names, in order of first appearance in the triples."""
        return self._slots

    @property
    def num_slots(self) -> int:
        """The number of relations (slots) joined — the paper's ``m``."""
        return len(self.slots)

    def dataset_of(self, slot: str) -> str:
        """The dataset key the slot reads from."""
        try:
            return self._dataset_by_slot[slot]
        except KeyError:
            raise QueryError(f"unknown slot {slot!r}") from None

    @property
    def dataset_keys(self) -> tuple[str, ...]:
        """Distinct dataset keys referenced, in slot order."""
        seen: dict[str, None] = {}
        for slot in self.slots:
            seen.setdefault(self.dataset_of(slot), None)
        return tuple(seen)

    def slots_of_dataset(self, dataset: str) -> tuple[str, ...]:
        """All slots reading the given dataset (more than one for self-joins)."""
        return self._slots_by_dataset.get(dataset, ())

    def triples_touching(self, slot: str) -> tuple[Triple, ...]:
        """All conditions with ``slot`` as an endpoint."""
        return tuple(t for t in self.triples if t.touches(slot))

    def triples_between(self, a: str, b: str) -> tuple[Triple, ...]:
        """All conditions joining slots ``a`` and ``b`` (usually 0 or 1)."""
        return tuple(
            t for t in self.triples if {t.left, t.right} == {a, b}
        )

    @property
    def is_overlap_query(self) -> bool:
        """True when every predicate is an overlap (Section 7 queries)."""
        return all(t.predicate.is_overlap for t in self.triples)

    @property
    def is_range_query(self) -> bool:
        """True when every predicate is a strict range, ``d > 0`` (Section 8)."""
        return all(
            isinstance(t.predicate, Range) and t.predicate.d > 0 for t in self.triples
        )

    @property
    def max_range_distance(self) -> float:
        """The largest range parameter in the query (0 for pure overlap)."""
        return max((t.predicate.distance for t in self.triples), default=0.0)

    def as_range_query(self) -> "Query":
        """Rewrite overlap edges as ``Ra(0)`` (Section 9's reduction).

        Only defined for symmetric predicates: an asymmetric predicate
        (``Contains``) has no equal-semantics range form.
        """
        for t in self.triples:
            if not t.predicate.symmetric:
                raise QueryError(
                    f"cannot rewrite asymmetric predicate {t.predicate} as a range"
                )
        return Query(
            [
                Triple(Range(t.predicate.distance), t.left, t.right)
                for t in self.triples
            ],
            self.datasets,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.triples:
            raise QueryError("a query needs at least one triple")
        slots = self.slots
        for slot in self.datasets:
            if slot not in slots:
                raise QueryError(
                    f"datasets mapping names unknown slot {slot!r}"
                )
        # Connectivity (BFS over the join graph).
        adjacency: dict[str, set[str]] = {s: set() for s in slots}
        for t in self.triples:
            adjacency[t.left].add(t.right)
            adjacency[t.right].add(t.left)
        frontier = [slots[0]]
        reached = {slots[0]}
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        if reached != set(slots):
            missing = sorted(set(slots) - reached)
            raise QueryError(
                f"query join graph is disconnected; unreachable slots: {missing}"
            )

    def __str__(self) -> str:
        return " and ".join(str(t) for t in self.triples)
