"""Query model: predicates, multi-way join queries and the join graph."""

from repro.query.graph import JoinGraph, crepl_bounds
from repro.query.parser import parse_query
from repro.query.predicates import Contains, Overlap, Predicate, Range
from repro.query.query import Query, Triple

__all__ = [
    "Predicate",
    "Overlap",
    "Range",
    "Contains",
    "Triple",
    "Query",
    "JoinGraph",
    "crepl_bounds",
    "parse_query",
]
