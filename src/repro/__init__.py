"""repro — Multi-way spatial joins on map-reduce (EDBT 2013 reproduction).

A from-scratch implementation of Gupta et al., *Processing Multi-Way
Spatial Joins on Map-Reduce*: the Controlled-Replicate framework and its
baselines (2-way Cascade, All-Replicate, C-Rep-L), running on a
deterministic in-process map-reduce substrate with an analytic cluster
cost model.

Quick start::

    from repro import (
        Query, Overlap, Rect, GridPartitioning,
        ControlledReplicateJoin, SyntheticSpec, generate_relations,
    )

    spec = SyntheticSpec(n=2000, x_range=(0, 10_000), y_range=(0, 10_000))
    datasets = generate_relations(spec, ["R1", "R2", "R3"])
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    grid = GridPartitioning.square(spec.space, 64)
    result = ControlledReplicateJoin().run(query, datasets, grid)
    print(len(result.tuples), result.stats.simulated_seconds)
"""

from repro.data import (
    CaliforniaSpec,
    SyntheticSpec,
    generate_california,
    generate_rects,
    generate_relations,
)
from repro.geometry import Rect
from repro.grid import Cell, GridPartitioning
from repro.joins import (
    ALGORITHMS,
    AllReplicateJoin,
    CascadeJoin,
    ControlledReplicateJoin,
    JoinResult,
    JoinStats,
    LocalJoiner,
    MarkingEngine,
    MultiWayJoinAlgorithm,
    ReplicationLimits,
    brute_force_join,
    make_algorithm,
    two_way_overlap,
    two_way_range,
)
from repro.mapreduce import Cluster, CostModel, InMemoryDFS, MapReduceJob, Workflow
from repro.knn import KnnJoin, KnnResult
from repro.optimizer import CascadePlan, plan_cascade_order
from repro.query import (
    Contains,
    JoinGraph,
    Overlap,
    Predicate,
    Query,
    Range,
    Triple,
    parse_query,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry / grid
    "Rect",
    "Cell",
    "GridPartitioning",
    # query model
    "Predicate",
    "Overlap",
    "Range",
    "Contains",
    "Triple",
    "Query",
    "JoinGraph",
    "CascadePlan",
    "plan_cascade_order",
    "parse_query",
    "KnnJoin",
    "KnnResult",
    # map-reduce substrate
    "InMemoryDFS",
    "Cluster",
    "CostModel",
    "MapReduceJob",
    "Workflow",
    # joins
    "MultiWayJoinAlgorithm",
    "CascadeJoin",
    "AllReplicateJoin",
    "ControlledReplicateJoin",
    "ReplicationLimits",
    "LocalJoiner",
    "MarkingEngine",
    "JoinResult",
    "JoinStats",
    "brute_force_join",
    "two_way_overlap",
    "two_way_range",
    "ALGORITHMS",
    "make_algorithm",
    # data
    "SyntheticSpec",
    "generate_rects",
    "generate_relations",
    "CaliforniaSpec",
    "generate_california",
]
