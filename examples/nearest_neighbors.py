"""kNN join: nearest facilities for every incident location.

The paper's conclusions name nearest-neighbour queries as the next use
case for the grid framework; `repro.knn` implements the kNN join as
iterated candidate/merge map-reduce rounds with a density-derived
initial search radius.  This example finds, for each "incident"
rectangle, the 3 nearest "facility" rectangles, and shows the effect of
the initial-radius sizing knob on the number of rounds.

Run:  python examples/nearest_neighbors.py
"""

from repro import Cluster, GridPartitioning, SyntheticSpec, generate_rects
from repro.knn import KnnJoin
from repro.mapreduce.cost import CostModel


def main() -> None:
    incidents_spec = SyntheticSpec(
        n=200,
        x_range=(0, 20_000),
        y_range=(0, 20_000),
        l_range=(0, 40),
        b_range=(0, 40),
        dx="clustered",
        dy="clustered",
        clusters=6,
        seed=51,
    )
    facilities_spec = SyntheticSpec(
        n=3_000,
        x_range=(0, 20_000),
        y_range=(0, 20_000),
        l_range=(0, 80),
        b_range=(0, 80),
        seed=52,
    )
    incidents = generate_rects(incidents_spec)
    facilities = generate_rects(facilities_spec)
    grid = GridPartitioning.square(incidents_spec.space, 64)

    print(f"{len(incidents)} incidents, {len(facilities)} facilities, k=3\n")
    for oversample in (0.5, 3.0, 10.0):
        join = KnnJoin(k=3, oversample=oversample)
        result = join.run(
            incidents, facilities, grid, Cluster(cost_model=CostModel.scaled(50))
        )
        mean_dist = sum(
            n[0][0] for n in result.neighbours.values()
        ) / len(result.neighbours)
        print(
            f"oversample={oversample:>4}: rounds={result.rounds} "
            f"simulated={result.simulated_seconds:6.1f}s "
            f"mean nearest distance={mean_dist:7.1f}"
        )

    join = KnnJoin(k=3)
    result = join.run(
        incidents, facilities, grid, Cluster(cost_model=CostModel.scaled(50))
    )
    print("\nsample results:")
    for qid in sorted(result.neighbours)[:5]:
        formatted = ", ".join(
            f"facility {did} @ {dist:.1f}" for dist, did in result.neighbours[qid]
        )
        print(f"  incident {qid}: {formatted}")


if __name__ == "__main__":
    main()
