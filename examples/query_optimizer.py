"""Join-order optimization for the 2-way Cascade.

The cascade's cost is driven by intermediate result sizes, which depend
on the join order.  This example builds a lopsided star workload — a big
hub, a big leaf, and a tiny selective leaf — plans the order with the
selectivity-based optimizer, and compares the planned order against the
worst one, showing the shuffle/intermediate savings.

Run:  python examples/query_optimizer.py
"""

from repro import (
    CascadeJoin,
    Cluster,
    GridPartitioning,
    Overlap,
    Query,
    SyntheticSpec,
    generate_rects,
    plan_cascade_order,
)
from repro.mapreduce.cost import CostModel


def main() -> None:
    # --- 1. a lopsided workload ----------------------------------------
    big = SyntheticSpec(
        n=4_000, x_range=(0, 5_000), y_range=(0, 5_000),
        l_range=(0, 120), b_range=(0, 120), seed=41,
    )
    tiny = SyntheticSpec(
        n=80, x_range=(0, 5_000), y_range=(0, 5_000),
        l_range=(0, 25), b_range=(0, 25), seed=42,
    )
    datasets = {
        "parcels": generate_rects(big),            # hub
        "buildings": generate_rects(big.with_seed(43)),
        "landmarks": generate_rects(tiny),         # tiny, selective
    }
    query = Query.star("parcels", ["buildings", "landmarks"], Overlap())
    print(f"query: {query}")
    for name, rects in datasets.items():
        print(f"  {name}: {len(rects)} rectangles")

    # --- 2. plan the cascade order -------------------------------------
    plan = plan_cascade_order(query, datasets)
    print(f"\nplanned order: {' -> '.join(plan.order)}")
    for i, est in enumerate(plan.estimated_sizes):
        print(f"  estimated size after step {i + 1}: {est:,.0f}")

    # --- 3. planned vs worst order -------------------------------------
    grid = GridPartitioning.square(big.space, 64)
    cost = CostModel.scaled(100)
    orders = {
        "planned": plan.order,
        "naive-worst": ("parcels", "buildings", "landmarks"),
    }
    results = {}
    for label, order in orders.items():
        algo = CascadeJoin(order=tuple(order))
        results[label] = algo.run(query, datasets, grid, Cluster(cost_model=cost))
    assert results["planned"].tuples == results["naive-worst"].tuples

    print(f"\noutput tuples: {len(results['planned'].tuples)}")
    print(f"{'order':>12} {'simulated':>10} {'shuffled records':>17}")
    for label, result in results.items():
        s = result.stats
        print(
            f"{label:>12} {s.simulated_seconds:>9.1f}s {s.shuffled_records:>17,}"
        )
    saved = 1 - (
        results["planned"].stats.shuffled_records
        / results["naive-worst"].stats.shuffled_records
    )
    print(f"\nthe planned order shuffles {saved:.0%} fewer records.")


if __name__ == "__main__":
    main()
