"""Road triples on (synthetic) California TIGER/Line data — the paper's
Table 4 scenario as an application.

Query: Q2s = R Ov R and R Ov R — find triples of roads (rd1, rd2, rd3)
where rd1 overlaps rd2 and rd2 overlaps rd3 (e.g. candidate junction
clusters for map conflation).  The road MBB sample reproduces the
aggregate statistics the paper reports for the real 2.09M-road data-set;
the experiment sweeps the MBB enlargement factor k exactly like Table 4.

Run:  python examples/california_roads.py
"""

from repro import CaliforniaSpec, Cluster, Overlap, Query, generate_california
from repro.data import dataset_statistics
from repro.data.transforms import dataset_space, enlarge_dataset
from repro.grid.partitioning import GridPartitioning
from repro.joins.registry import make_algorithm
from repro.mapreduce.cost import CostModel


def main() -> None:
    # --- 1. a calibrated sample of the California road MBBs -----------
    spec = CaliforniaSpec(n=6_000, seed=7)
    roads = generate_california(spec)
    stats = dataset_statistics(roads)
    print("synthetic California sample (paper-reported statistics):")
    print(f"  road segments: {int(stats['count'])}")
    print(f"  mean length {stats['mean_l']:.1f} (paper: 18), "
          f"mean breadth {stats['mean_b']:.1f} (paper: 8)")
    print(f"  both sides < 100 for {stats['frac_both_lt_100']:.1%} "
          "(paper: 97%)")

    # --- 2. the road-triple query -------------------------------------
    query = Query.self_chain("roads", 3, Overlap())
    print(f"\nquery: {query}")

    # --- 3. sweep the enlargement factor k (Table 4) ------------------
    print(f"\n{'k':>5} {'triples':>9} {'c-rep s':>9} {'c-rep-l s':>10} "
          f"{'marked':>7} {'after-rep':>10}")
    for k in (1.0, 1.25, 1.5, 1.75, 2.0):
        enlarged = enlarge_dataset(roads, k) if k != 1.0 else roads
        datasets = {"roads": enlarged}
        grid = GridPartitioning.square(dataset_space(datasets), 64)
        d_max = max(r.diagonal for __, r in enlarged)

        row = {}
        for name in ("c-rep", "c-rep-l"):
            algorithm = make_algorithm(name, query=query, d_max=d_max)
            cluster = Cluster(cost_model=CostModel.scaled(200))
            row[name] = algorithm.run(query, datasets, grid, cluster)
        assert row["c-rep"].tuples == row["c-rep-l"].tuples
        s, sl = row["c-rep"].stats, row["c-rep-l"].stats
        print(
            f"{k:>5} {len(row['c-rep'].tuples):>9} "
            f"{s.simulated_seconds:>9.1f} {sl.simulated_seconds:>10.1f} "
            f"{sl.rectangles_marked:>7} {sl.rectangles_after_replication:>10}"
        )


if __name__ == "__main__":
    main()
