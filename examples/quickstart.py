"""Quickstart: run a 3-way overlap join with every algorithm.

Generates three synthetic relations (the paper's Q2 setting, scaled to
laptop size), runs 2-way Cascade, All-Replicate, Controlled-Replicate
and C-Rep-L on the simulated map-reduce cluster, verifies they agree,
and prints the paper's metrics for each.

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster,
    ControlledReplicateJoin,
    GridPartitioning,
    Overlap,
    Query,
    ReplicationLimits,
    SyntheticSpec,
    generate_relations,
    make_algorithm,
)
from repro.mapreduce.cost import CostModel


def main() -> None:
    # --- 1. a workload: three relations of random rectangles ----------
    spec = SyntheticSpec(
        n=3_000,
        x_range=(0, 8_000),
        y_range=(0, 8_000),
        l_range=(0, 100),
        b_range=(0, 100),
        seed=7,
    )
    datasets = generate_relations(spec, ["R1", "R2", "R3"])

    # --- 2. the query: Q2 = R1 overlaps R2 and R2 overlaps R3 ---------
    query = Query.chain(["R1", "R2", "R3"], Overlap())
    print(f"query: {query}")

    # --- 3. the grid: 8x8 = 64 reducers, the paper's setting ----------
    grid = GridPartitioning.square(spec.space, 64)

    # --- 4. run every algorithm on a fresh simulated cluster ----------
    reference = None
    for name in ["cascade", "all-rep", "c-rep", "c-rep-l"]:
        algorithm = make_algorithm(name, query=query, d_max=spec.max_diagonal)
        cluster = Cluster(cost_model=CostModel.scaled(100))
        result = algorithm.run(query, datasets, grid, cluster)
        if reference is None:
            reference = result.tuples
        agreement = "OK" if result.tuples == reference else "MISMATCH!"
        s = result.stats
        print(
            f"{name:>8}: {len(result.tuples):6d} tuples [{agreement}]  "
            f"simulated {s.simulated_seconds:7.1f}s  "
            f"shuffled {s.shuffled_records:7d}  "
            f"marked {s.rectangles_marked:6d}  "
            f"after-replication {s.rectangles_after_replication:7d}"
        )

    # --- 5. peek inside one run ---------------------------------------
    crepl = ControlledReplicateJoin(
        limits=ReplicationLimits.from_query(query, spec.max_diagonal)
    )
    result = crepl.run(query, datasets, grid)
    print("\nC-Rep-L per-job simulated times:")
    for job, seconds in result.stats.job_seconds.items():
        print(f"  {job}: {seconds:.1f}s")


if __name__ == "__main__":
    main()
