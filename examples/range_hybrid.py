"""Hybrid multi-way queries and the C-Rep-L replication bounds (§8, §9).

Scenario: 'find every facility overlapping a flood zone that also has a
hospital within 500 m' — a hybrid query mixing an overlap edge and a
range edge, the paper's Q4 shape:

    facilities Ov flood_zones  and  flood_zones Ra(500) hospitals

The example shows how the per-relation C-Rep-L replication bounds fall
out of the join graph (§7.9/§8's formulas), then runs C-Rep and C-Rep-L
and contrasts their communication volumes.

Run:  python examples/range_hybrid.py
"""

from repro import (
    Cluster,
    GridPartitioning,
    Overlap,
    Query,
    Range,
    ReplicationLimits,
    SyntheticSpec,
    Triple,
    generate_rects,
)
from repro.data.transforms import dataset_space, max_diagonal
from repro.joins.controlled import ControlledReplicateJoin
from repro.mapreduce.cost import CostModel


def main() -> None:
    # --- 1. three thematic layers -------------------------------------
    base = SyntheticSpec(
        n=4_000,
        x_range=(0, 30_000),
        y_range=(0, 30_000),
        l_range=(0, 120),
        b_range=(0, 120),
        seed=13,
    )
    datasets = {
        "facilities": generate_rects(base.with_seed(1)),
        "flood_zones": generate_rects(base.with_seed(2)),
        "hospitals": generate_rects(base.with_seed(3)),
    }

    # --- 2. the hybrid query ------------------------------------------
    query = Query([
        Triple(Overlap(), "facilities", "flood_zones"),
        Triple(Range(500.0), "flood_zones", "hospitals"),
    ])
    print(f"query: {query}")

    # --- 3. the C-Rep-L bounds from the join graph --------------------
    d_max = max_diagonal(datasets)
    limits = ReplicationLimits.from_query(query, d_max)
    print(f"\nobserved d_max = {d_max:.1f}")
    print("per-relation replication bounds (cheapest join-graph path):")
    for dataset in query.dataset_keys:
        print(f"  {dataset:>12}: {limits.bound_for(dataset):8.1f}")

    # --- 4. run C-Rep vs C-Rep-L ---------------------------------------
    grid = GridPartitioning.square(dataset_space(datasets), 64)
    cost = CostModel.scaled(250)

    crep = ControlledReplicateJoin().run(
        query, datasets, grid, Cluster(cost_model=cost)
    )
    crepl = ControlledReplicateJoin(limits=limits).run(
        query, datasets, grid, Cluster(cost_model=cost)
    )
    assert crep.tuples == crepl.tuples

    print(f"\nmatching (facility, zone, hospital) triples: {len(crep.tuples)}")
    print(f"{'':>10} {'simulated':>10} {'shuffled':>9} {'marked':>7} {'after-rep':>10}")
    for name, result in (("c-rep", crep), ("c-rep-l", crepl)):
        s = result.stats
        print(
            f"{name:>10} {s.simulated_seconds:>9.1f}s {s.shuffled_records:>9} "
            f"{s.rectangles_marked:>7} {s.rectangles_after_replication:>10}"
        )
    saved = 1 - (
        crepl.stats.rectangles_after_replication
        / max(1, crep.stats.rectangles_after_replication)
    )
    print(f"\nC-Rep-L trims {saved:.0%} of C-Rep's round-2 communication.")


if __name__ == "__main__":
    main()
