"""Using the map-reduce substrate directly: a spatial density histogram.

The ``repro.mapreduce`` package is a general (simulated) map-reduce
engine — the join algorithms are just clients.  This example writes a
rectangle data-set to the DFS and runs a custom job computing, per
partition-cell, the number of rectangles and the covered area: the kind
of statistics pass a production deployment would run to choose its grid.

Run:  python examples/custom_mapreduce.py
"""

from repro import Cluster, GridPartitioning, SyntheticSpec, generate_rects
from repro.data.io import decode_rect, rects_to_lines
from repro.grid.transforms import split
from repro.mapreduce.job import MapReduceJob


def main() -> None:
    spec = SyntheticSpec(
        n=20_000,
        x_range=(0, 10_000),
        y_range=(0, 10_000),
        l_range=(0, 150),
        b_range=(0, 150),
        seed=3,
    )
    grid = GridPartitioning.square(spec.space, 16)

    cluster = Cluster()
    cluster.dfs.write_file("input/rects", rects_to_lines(generate_rects(spec)))

    # --- map: route each rectangle to every cell it touches -----------
    def mapper(key, line, ctx):
        rid, rect = decode_rect(line)
        for cell_id, __ in split(rect, grid):
            clipped = grid.cell_by_id(cell_id).extent.intersection(rect)
            area = clipped.area if clipped is not None else 0.0
            ctx.emit(cell_id, area)

    # --- reduce: aggregate count and covered area per cell ------------
    def reducer(cell_id, areas, ctx):
        cell = grid.cell_by_id(cell_id)
        coverage = sum(areas) / cell.extent.area
        ctx.emit(f"{cell_id}\t{len(areas)}\t{coverage:.4f}")

    job = MapReduceJob(
        name="density-histogram",
        input_paths=["input/rects"],
        output_path="stats/density",
        mapper=mapper,
        reducer=reducer,
        num_reducers=grid.num_cells,
    )
    result = cluster.run_job(job)

    print("cell  rectangles  coverage")
    for line in cluster.dfs.read_dir("stats/density"):
        cell_id, count, coverage = line.split("\t")
        bar = "#" * int(float(coverage) * 40)
        print(f"{int(cell_id):4d}  {int(count):10d}  {float(coverage):8.1%} {bar}")

    print(f"\nsimulated job time: {result.simulated_seconds:.1f}s")
    print(f"shuffled records:   {result.shuffled_records}")
    print(f"map input records:  {result.counters.engine('map_input_records')}")


if __name__ == "__main__":
    main()
