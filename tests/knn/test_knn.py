"""Tests for the kNN join extension, against a brute-force oracle."""

import math

import pytest

from repro.data.synthetic import SyntheticSpec, generate_rects
from repro.errors import JoinError
from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.knn.join import KnnJoin

GRID = GridPartitioning(Rect.from_corners(0, 0, 1000, 1000), 4, 4)


def brute_force_knn(queries, data, k):
    out = {}
    for qid, q in queries:
        dists = sorted((q.min_distance(r), did) for did, r in data)
        out[qid] = dists[:k]
    return out


def same_neighbour_sets(got, expected):
    """Compare ignoring tie-order among equal distances at the cut."""
    if set(got) != set(expected):
        return False
    for qid in got:
        g, e = got[qid], expected[qid]
        if [round(d, 9) for d, __ in g] != [round(d, 9) for d, __ in e]:
            return False
    return True


@pytest.fixture(scope="module")
def workload():
    qspec = SyntheticSpec(
        n=60, x_range=(0, 1000), y_range=(0, 1000),
        l_range=(0, 20), b_range=(0, 20), seed=71,
    )
    dspec = SyntheticSpec(
        n=400, x_range=(0, 1000), y_range=(0, 1000),
        l_range=(0, 30), b_range=(0, 30), seed=72,
    )
    return generate_rects(qspec), generate_rects(dspec)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_oracle(self, workload, k):
        queries, data = workload
        result = KnnJoin(k=k).run(queries, data, GRID)
        expected = brute_force_knn(queries, data, k)
        assert same_neighbour_sets(result.neighbours, expected)

    def test_all_queries_answered(self, workload):
        queries, data = workload
        result = KnnJoin(k=2).run(queries, data, GRID)
        assert set(result.neighbours) == {rid for rid, __ in queries}
        assert all(len(v) == 2 for v in result.neighbours.values())

    def test_distances_ascending(self, workload):
        queries, data = workload
        result = KnnJoin(k=5).run(queries, data, GRID)
        for neighbours in result.neighbours.values():
            dists = [d for d, __ in neighbours]
            assert dists == sorted(dists)

    def test_overlapping_neighbours_distance_zero(self):
        queries = [(0, Rect(100, 900, 50, 50))]
        data = [(0, Rect(120, 880, 10, 10)), (1, Rect(700, 200, 10, 10))]
        result = KnnJoin(k=1).run(queries, data, GRID)
        assert result.neighbours[0] == [(0.0, 0)]

    def test_k_exceeding_data_size(self):
        queries = [(0, Rect(10, 990, 5, 5))]
        data = [(0, Rect(500, 500, 5, 5)), (1, Rect(900, 100, 5, 5))]
        result = KnnJoin(k=10).run(queries, data, GRID)
        assert len(result.neighbours[0]) == 2

    def test_clustered_queries_far_from_data(self):
        # Forces multiple radius-doubling rounds.
        queries = [(0, Rect(5, 995, 2, 2))]
        data = [(i, Rect(950 + i, 20, 1, 1)) for i in range(5)]
        result = KnnJoin(k=3, oversample=0.5).run(queries, data, GRID)
        expected = brute_force_knn(queries, data, 3)
        assert same_neighbour_sets(result.neighbours, expected)
        assert result.rounds > 1


class TestMechanics:
    def test_invalid_k(self):
        with pytest.raises(JoinError):
            KnnJoin(k=0)

    def test_invalid_oversample(self):
        with pytest.raises(JoinError):
            KnnJoin(k=1, oversample=0)

    def test_empty_data_rejected(self, workload):
        queries, __ = workload
        with pytest.raises(JoinError):
            KnnJoin(k=1).run(queries, [], GRID)

    def test_empty_queries(self, workload):
        __, data = workload
        result = KnnJoin(k=1).run([], data, GRID)
        assert result.neighbours == {}
        assert result.rounds == 0

    def test_rounds_and_stats_exposed(self, workload):
        queries, data = workload
        result = KnnJoin(k=3).run(queries, data, GRID)
        assert result.rounds >= 1
        assert result.simulated_seconds > 0
        assert math.isfinite(result.simulated_seconds)

    def test_oversample_tradeoff(self, workload):
        # Smaller initial radius -> usually more rounds.
        queries, data = workload
        eager = KnnJoin(k=5, oversample=8.0).run(queries, data, GRID)
        lazy = KnnJoin(k=5, oversample=0.2).run(queries, data, GRID)
        assert lazy.rounds >= eager.rounds
        assert same_neighbour_sets(eager.neighbours, lazy.neighbours)


class TestReuseSafety:
    def test_duplicate_query_rids_rejected(self):
        queries = [(0, Rect(10, 90, 1, 1)), (0, Rect(80, 20, 1, 1))]
        data = [(0, Rect(11, 89, 1, 1))]
        with pytest.raises(JoinError):
            KnnJoin(k=1).run(queries, data, GRID)

    def test_reused_cluster_with_smaller_grid_not_contaminated(self):
        from repro.mapreduce.engine import Cluster

        cluster = Cluster()
        space = Rect.from_corners(0, 0, 100, 100)
        big = GridPartitioning(space, 4, 4)
        small = GridPartitioning(space, 2, 2)
        queries = [(0, Rect(10, 90, 1, 1))]
        KnnJoin(k=1, oversample=0.01).run(
            queries, [(0, Rect(50, 50, 1, 1))], big, cluster
        )
        second = KnnJoin(k=1, oversample=0.01).run(
            queries, [(7, Rect(90, 10, 1, 1))], small, cluster
        )
        assert [did for __, did in second.neighbours[0]] == [7]
