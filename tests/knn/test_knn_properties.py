"""Property-based tests: kNN join vs brute force on arbitrary inputs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.rectangle import Rect
from repro.grid.partitioning import GridPartitioning
from repro.knn.join import KnnJoin

SPACE = Rect.from_corners(0.0, 0.0, 200.0, 200.0)

coord = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)
side = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)


@st.composite
def rect_in_space(draw) -> Rect:
    x = draw(coord)
    y = draw(coord)
    return Rect(x, y, min(draw(side), 200.0 - x), min(draw(side), y))


def bag(min_size, max_size):
    return st.lists(rect_in_space(), min_size=min_size, max_size=max_size).map(
        lambda rs: list(enumerate(rs))
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    bag(0, 6),
    bag(1, 25),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_knn_matches_oracle(queries, data, k, rows, cols):
    grid = GridPartitioning(SPACE, rows, cols)
    result = KnnJoin(k=k, oversample=1.0).run(queries, data, grid)
    for qid, q in queries:
        expected = sorted((q.min_distance(r), did) for did, r in data)[:k]
        got = result.neighbours[qid]
        # distances must match exactly; ids may differ only within ties
        assert [d for d, __ in got] == [d for d, __ in expected]
        for (gd, gi), (ed, ei) in zip(got, expected):
            if gi != ei:
                assert q.min_distance(dict(data)[gi]) == ed
