"""Execute the tutorial's Python snippets — documentation must not rot.

All ```python blocks of docs/TUTORIAL.md run sequentially in one shared
namespace (later sections build on earlier ones).
"""

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def extract_python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_snippets_run():
    text = TUTORIAL.read_text(encoding="utf-8")
    blocks = extract_python_blocks(text)
    assert len(blocks) >= 5, "tutorial lost its code blocks?"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"tutorial-block-{i + 1}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic
            raise AssertionError(
                f"tutorial block {i + 1} failed: {exc}\n---\n{block}"
            ) from exc


def test_tutorial_mentions_every_subpackage():
    text = TUTORIAL.read_text(encoding="utf-8")
    for pkg in ("repro.optimizer", "repro.knn", "GridPartitioning", "explain"):
        assert pkg in text
