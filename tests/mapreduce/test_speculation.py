"""Speculative execution: straggler backups, first-finisher-wins.

These tests use injected *delay* faults (real ``time.sleep`` in the
worker, invisible to the simulated clock) to manufacture stragglers
deterministically, and small ``speculation_min_runtime_s`` values so
the monitor reacts within milliseconds of the fast tasks finishing.
"""

from __future__ import annotations

import pytest

from repro.errors import TaskRetryExhausted
from repro.mapreduce.engine import Cluster
from repro.mapreduce.executor import SerialExecutor, ThreadExecutor
from repro.mapreduce.faults import (
    FaultPlan,
    RetryPolicy,
    run_phase_with_recovery,
)
from repro.mapreduce.job import MapReduceJob

#: Aggressive-but-stable speculation: back up a task once half the
#: phase is done and it has run 50ms past the median.
POLICY = RetryPolicy(
    max_attempts=2,
    speculate=True,
    speculation_threshold=0.5,
    speculation_factor=1.5,
    speculation_min_runtime_s=0.05,
)


def _identity(payload, index):
    return index * 10


def _dispatch(plan, policy, num_tasks=4, workers=4):
    return run_phase_with_recovery(
        ThreadExecutor(num_workers=workers),
        _identity,
        num_tasks,
        None,
        job="j",
        phase="map",
        policy=policy,
        plan=plan,
    )


class TestSpeculativeDispatch:
    def test_backup_beats_straggler(self):
        plan = FaultPlan().delay_task("map", 0, delay_s=0.5)
        results, report = _dispatch(plan, POLICY)
        assert results == [0, 10, 20, 30]
        assert report.speculative_launched == 1
        assert report.speculative_wins == 1
        winner = next(a for a in report.attempts[0] if a.outcome == "ok")
        assert winner.speculative
        # Other tasks ran exactly once, non-speculatively.
        for i in (1, 2, 3):
            assert [a.outcome for a in report.attempts[i]] == ["ok"]
            assert not report.attempts[i][0].speculative

    def test_backup_rescues_failed_straggler(self):
        """The sibling-in-flight rule: the straggler's only allowed
        attempt fails, but by then the backup has already won — the
        failure is a discarded loser, not an exhaustion."""
        plan = (
            FaultPlan()
            .delay_task("map", 0, delay_s=0.5)
            .fail_task("map", 0, attempt=0)
        )
        policy = RetryPolicy(
            max_attempts=1,
            speculate=True,
            speculation_threshold=0.5,
            speculation_min_runtime_s=0.05,
        )
        results, report = _dispatch(plan, policy)
        assert results == [0, 10, 20, 30]
        assert report.speculative_wins == 1

    def test_exhaustion_waits_for_in_flight_sibling(self):
        """When every attempt of a task fails — original and backup —
        the exhaustion carries both attempts in its log (the failure
        that tripped max_attempts deferred to the racing sibling)."""
        plan = (
            FaultPlan()
            .delay_task("map", 0, delay_s=0.3, attempt=None)
            .fail_task("map", 0, attempt=None)
        )
        with pytest.raises(TaskRetryExhausted) as err:
            _dispatch(plan, POLICY)
        attempts = err.value.attempts
        assert len(attempts) == 2
        assert all(a.outcome == "failed" for a in attempts)
        assert any(a.speculative for a in attempts)

    def test_serial_executor_falls_back_to_retry_rounds(self):
        plan = FaultPlan().delay_task("map", 0, delay_s=0.05).fail_task("map", 1)
        results, report = run_phase_with_recovery(
            SerialExecutor(),
            _identity,
            4,
            None,
            job="j",
            phase="map",
            policy=POLICY,
            plan=plan,
        )
        assert results == [0, 10, 20, 30]
        assert report.speculative_launched == 0
        assert report.failures == 1  # the fail spec still absorbed

    def test_no_stragglers_no_backups(self):
        results, report = _dispatch(None, POLICY)
        assert results == [0, 10, 20, 30]
        assert report.speculative_launched == 0
        assert report.speculative_wins == 0
        assert report.failures == 0


# ----------------------------------------------------------------------
# Engine level: a whole job under speculation is byte-identical
# ----------------------------------------------------------------------
def _mapper(key, record, ctx):
    ctx.emit(int(record.split(",")[0]), record)


def _reducer(key, values, ctx):
    for v in sorted(values):
        ctx.emit(v)


def _stage_and_run(cluster: Cluster):
    cluster.dfs.write_file("in/a.txt", [f"{i % 4},{i}" for i in range(120)])
    return cluster.run_job(
        MapReduceJob(
            name="spec",
            input_paths=["in"],
            output_path="out",
            mapper=_mapper,
            reducer=_reducer,
            num_reducers=4,
        )
    )


def test_speculative_job_output_is_byte_identical():
    clean = Cluster(split_records=20)
    base = _stage_and_run(clean)

    cluster = Cluster(
        split_records=20,
        executor="thread",
        num_workers=4,
        fault_plan=FaultPlan().delay_task("map", 0, delay_s=0.6),
        retry=POLICY,
    )
    result = _stage_and_run(cluster)

    assert [cluster.dfs.read_file(p) for p in cluster.dfs.resolve("out")] == [
        clean.dfs.read_file(p) for p in clean.dfs.resolve("out")
    ]
    assert result.simulated_seconds == base.simulated_seconds
    # Counters: identical modulo the recovery telemetry (the loser
    # attempt's counter shard is discarded wholesale).
    chaotic = {
        k: v
        for k, v in result.counters.as_dict()["engine"].items()
        if not k.startswith(("task_", "speculative_"))
    }
    assert chaotic == base.counters.as_dict()["engine"]
    eng = result.counters.engine
    assert eng("speculative_launches") >= 1
    assert eng("speculative_wins") >= 1
    assert eng("task_failures") == 0
