"""Unit tests for the cost model, including ordering-robustness checks."""

import pytest

from repro.mapreduce.cost import CostModel, TaskStats


class TestMakespan:
    def test_empty(self):
        assert CostModel.makespan([], 4) == 0.0

    def test_perfect_packing(self):
        assert CostModel.makespan([1.0] * 8, 4) == 2.0

    def test_straggler_dominates(self):
        # One long task bounds the makespan from below.
        assert CostModel.makespan([10.0, 0.1, 0.1], 8) == 10.0

    def test_single_slot(self):
        assert CostModel.makespan([1.0, 2.0, 3.0], 1) == 6.0


class TestTaskCosts:
    def test_map_task_components(self):
        cm = CostModel()
        t = TaskStats(input_records=150_000, input_bytes=50_000_000)
        # 1s of read + 1s of map + startup
        assert cm.map_task_seconds(t) == pytest.approx(
            cm.task_startup_s + 1.0 + 1.0
        )

    def test_reduce_task_components(self):
        cm = CostModel()
        t = TaskStats(
            input_records=200_000, compute_ops=2_000_000, output_bytes=10_000_000
        )
        expected = (
            cm.task_startup_s
            + 200_000 / cm.reduce_records_per_s
            + 2_000_000 / cm.compute_ops_per_s
            + 10_000_000 * cm.dfs_replication / cm.dfs_write_bytes_per_s
        )
        assert cm.reduce_task_seconds(t) == pytest.approx(expected)

    def test_shuffle_scales_with_bytes_and_records(self):
        cm = CostModel()
        small = cm.shuffle_seconds(1000, 10_000)
        big = cm.shuffle_seconds(100_000, 1_000_000)
        assert big > small

    def test_job_seconds_totals(self):
        cm = CostModel()
        breakdown = cm.job_seconds(
            [TaskStats(input_records=1000, input_bytes=100)],
            [TaskStats(input_records=1000, output_bytes=100)],
            shuffle_records=1000,
            shuffle_bytes=50_000,
        )
        assert breakdown.total_s == pytest.approx(
            breakdown.startup_s
            + breakdown.map_s
            + breakdown.shuffle_s
            + breakdown.reduce_s
        )


class TestScaled:
    def test_rates_divided(self):
        cm = CostModel.scaled(100)
        base = CostModel()
        assert cm.map_records_per_s == base.map_records_per_s / 100
        assert cm.shuffle_bytes_per_s == base.shuffle_bytes_per_s / 100
        assert cm.shuffle_record_overhead_s == base.shuffle_record_overhead_s * 100

    def test_startup_unscaled(self):
        assert CostModel.scaled(100).job_startup_s == CostModel().job_startup_s

    def test_overrides(self):
        cm = CostModel.scaled(10, job_startup_s=1.0)
        assert cm.job_startup_s == 1.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CostModel.scaled(0)

    def test_scaling_preserves_orderings(self):
        # The qualitative conclusion "job A costs more than job B" must
        # not flip under workload re-scaling of the rates.
        heavy = (
            [TaskStats(input_records=10_000, input_bytes=500_000)] * 4,
            [TaskStats(input_records=50_000, output_bytes=100_000)] * 4,
            200_000,
            9_000_000,
        )
        light = (
            [TaskStats(input_records=1_000, input_bytes=50_000)] * 4,
            [TaskStats(input_records=5_000, output_bytes=10_000)] * 4,
            20_000,
            900_000,
        )
        for scale in (1, 10, 250):
            cm = CostModel.scaled(scale)
            assert (
                cm.job_seconds(*heavy).total_s > cm.job_seconds(*light).total_s
            )

    def test_rate_perturbation_preserves_orderings(self):
        # Sensitivity: moderate rate changes keep the heavy/light order.
        heavy_args = (
            [TaskStats(input_records=10_000, input_bytes=500_000)] * 4,
            [TaskStats(input_records=50_000, output_bytes=100_000)] * 4,
            200_000,
            9_000_000,
        )
        light_args = (
            [TaskStats(input_records=1_000, input_bytes=50_000)] * 4,
            [TaskStats(input_records=5_000, output_bytes=10_000)] * 4,
            20_000,
            900_000,
        )
        for factor in (0.5, 2.0):
            cm = CostModel(
                shuffle_bytes_per_s=CostModel().shuffle_bytes_per_s * factor,
                dfs_read_bytes_per_s=CostModel().dfs_read_bytes_per_s / factor,
            )
            assert (
                cm.job_seconds(*heavy_args).total_s
                > cm.job_seconds(*light_args).total_s
            )
