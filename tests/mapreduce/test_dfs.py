"""Unit tests for the DFS backends.

Parametrized over the in-memory store and the local-filesystem store:
both implement the same interface and must behave identically.
"""

import pytest

from repro.errors import DFSError
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.localfs import LocalFSDFS


@pytest.fixture(params=["memory", "localfs"])
def dfs(request, tmp_path):
    if request.param == "memory":
        return InMemoryDFS()
    return LocalFSDFS(tmp_path / "dfs")


class TestWriteRead:
    def test_roundtrip(self, dfs):
        dfs.write_file("a/b.txt", ["one", "two"])
        assert dfs.read_file("a/b.txt") == ["one", "two"]

    def test_write_returns_bytes(self, dfs):
        n = dfs.write_file("f", ["ab", "c"])
        assert n == 3 + 2  # line lengths + newlines

    def test_overwrite(self, dfs):
        dfs.write_file("f", ["old"])
        dfs.write_file("f", ["new"])
        assert dfs.read_file("f") == ["new"]

    def test_missing_file(self, dfs):
        with pytest.raises(DFSError):
            dfs.read_file("nope")

    def test_newline_in_record_rejected(self, dfs):
        with pytest.raises(DFSError):
            dfs.write_file("f", ["bad\nrecord"])

    def test_iter_records(self, dfs):
        dfs.write_file("f", ["a", "b"])
        assert list(dfs.iter_records("f")) == [(0, "a"), (1, "b")]

    def test_read_returns_copy(self, dfs):
        dfs.write_file("f", ["a"])
        lines = dfs.read_file("f")
        lines.append("mutated")
        assert dfs.read_file("f") == ["a"]


class TestAtomicWrites:
    """LocalFS writes are temp-file + ``os.replace``: a crash mid-write
    can never leave a truncated file under the final name, so a resumed
    workflow never fingerprint-matches half a part file."""

    def test_failed_write_leaves_old_content(self, tmp_path):
        store = LocalFSDFS(tmp_path / "dfs")
        store.write_file("out/part", ["complete", "old", "file"])

        def exploding_lines():
            yield "partial"
            raise RuntimeError("writer crashed mid-stream")

        with pytest.raises(RuntimeError):
            store.write_file("out/part", exploding_lines())
        # The old content survives untouched and no temp file remains.
        assert store.read_file("out/part") == ["complete", "old", "file"]
        assert not list((tmp_path / "dfs" / "out").glob(".*.tmp"))

    def test_no_partial_file_on_first_write(self, tmp_path):
        store = LocalFSDFS(tmp_path / "dfs")

        def exploding_lines():
            yield "partial"
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            store.write_file("out/part", exploding_lines())
        with pytest.raises(DFSError):
            store.read_file("out/part")
        assert not list((tmp_path / "dfs" / "out").glob("*"))

    def test_resume_over_stale_truncated_temp(self, tmp_path):
        # A kill -9 mid-write leaves the deterministic temp name behind,
        # truncated.  The resumed write must overwrite it and land the
        # complete file atomically.
        store = LocalFSDFS(tmp_path / "dfs")
        out = tmp_path / "dfs" / "out"
        out.mkdir(parents=True)
        (out / ".part.tmp").write_text("trunc", encoding="utf-8")

        store.write_file("out/part", ["all", "records", "present"])
        assert store.read_file("out/part") == ["all", "records", "present"]
        assert not (out / ".part.tmp").exists()

    def test_side_files_are_atomic_too(self, tmp_path):
        store = LocalFSDFS(tmp_path / "dfs")
        store.write_side_file("meta/state", ["v1"])

        def exploding_lines():
            yield "v2-partial"
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            store.write_side_file("meta/state", exploding_lines())
        assert store.read_side_file("meta/state") == ["v1"]


class TestAccounting:
    def test_bytes_written_accumulates(self, dfs):
        dfs.write_file("a", ["xx"])
        dfs.write_file("b", ["yyy"])
        assert dfs.bytes_written == 3 + 4

    def test_bytes_read_accumulates(self, dfs):
        dfs.write_file("a", ["xx"])
        dfs.read_file("a")
        dfs.read_file("a")
        assert dfs.bytes_read == 6

    def test_file_size(self, dfs):
        dfs.write_file("a", ["abc", ""])
        assert dfs.file_size("a") == 4 + 1

    def test_num_records(self, dfs):
        dfs.write_file("d/p1", ["a", "b"])
        dfs.write_file("d/p2", ["c"])
        assert dfs.num_records("d/p1") == 2
        assert dfs.num_records("d") == 3


class TestDirectories:
    def test_list_dir_sorted(self, dfs):
        dfs.write_file("out/part-00001", ["b"])
        dfs.write_file("out/part-00000", ["a"])
        assert dfs.list_dir("out") == ["out/part-00000", "out/part-00001"]

    def test_read_dir_concatenates_in_part_order(self, dfs):
        dfs.write_file("out/part-00001", ["b"])
        dfs.write_file("out/part-00000", ["a"])
        assert dfs.read_dir("out") == ["a", "b"]

    def test_read_dir_missing(self, dfs):
        with pytest.raises(DFSError):
            dfs.read_dir("nothing")

    def test_resolve_file_and_dir(self, dfs):
        dfs.write_file("single", ["x"])
        dfs.write_file("d/p0", ["y"])
        assert dfs.resolve("single") == ["single"]
        assert dfs.resolve("d") == ["d/p0"]
        with pytest.raises(DFSError):
            dfs.resolve("missing")

    def test_exists(self, dfs):
        dfs.write_file("d/p0", ["y"])
        assert dfs.exists("d")
        assert dfs.exists("d/p0")
        assert not dfs.exists("q")
        assert "d" in dfs

    def test_dir_size(self, dfs):
        dfs.write_file("d/p0", ["ab"])
        dfs.write_file("d/p1", ["c"])
        assert dfs.dir_size("d") == 3 + 2

    def test_delete_file(self, dfs):
        dfs.write_file("f", ["x"])
        assert dfs.delete("f") == 1
        assert not dfs.exists("f")

    def test_delete_dir(self, dfs):
        dfs.write_file("d/p0", ["x"])
        dfs.write_file("d/p1", ["y"])
        assert dfs.delete("d") == 2
        assert not dfs.exists("d")

    def test_trailing_slash_normalized(self, dfs):
        dfs.write_file("/a/b/", ["x"])
        assert dfs.read_file("a/b") == ["x"]


class TestBackendEquivalence:
    """Whole joins must produce identical results on either backend."""

    def test_join_outputs_identical(self, tmp_path):
        from repro.data.synthetic import SyntheticSpec, generate_relations
        from repro.grid.partitioning import GridPartitioning
        from repro.joins.controlled import ControlledReplicateJoin
        from repro.mapreduce.engine import Cluster
        from repro.query.predicates import Overlap
        from repro.query.query import Query

        spec = SyntheticSpec(
            n=120, x_range=(0, 400), y_range=(0, 400),
            l_range=(0, 60), b_range=(0, 60), seed=55,
        )
        datasets = generate_relations(spec, ["R1", "R2", "R3"])
        query = Query.chain(["R1", "R2", "R3"], Overlap())
        grid = GridPartitioning.square(spec.space, 16)

        mem = ControlledReplicateJoin().run(
            query, datasets, grid, Cluster(dfs=InMemoryDFS())
        )
        disk_cluster = Cluster(dfs=LocalFSDFS(tmp_path / "cluster"))
        disk = ControlledReplicateJoin().run(query, datasets, grid, disk_cluster)

        assert mem.tuples == disk.tuples
        assert mem.stats.shuffled_records == disk.stats.shuffled_records
        assert mem.stats.rectangles_marked == disk.stats.rectangles_marked
        # Intermediate results persisted on disk and re-readable.
        marked = disk_cluster.dfs.read_dir("controlled-replicate/marked")
        assert len(marked) == 3 * 120

    def test_path_escape_blocked(self, tmp_path):
        store = LocalFSDFS(tmp_path / "dfs")
        with pytest.raises(DFSError):
            store.write_file("../../etc/passwd", ["x"])
        with pytest.raises(DFSError):
            store.read_file("a/../b")
