"""Unit tests for job specs, contexts and size estimation."""

import pytest

from repro.errors import JobError
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.job import (
    MapContext,
    MapReduceJob,
    ReduceContext,
    estimate_size,
    hash_partitioner,
    identity_partitioner,
)


def _noop_mapper(key, value, ctx):
    pass


def _noop_reducer(key, values, ctx):
    pass


class TestEstimateSize:
    def test_str(self):
        assert estimate_size("abcd") == 4

    def test_numbers(self):
        assert estimate_size(3) == 8
        assert estimate_size(3.5) == 8

    def test_bool_and_none(self):
        assert estimate_size(True) == 1
        assert estimate_size(None) == 1

    def test_tuple(self):
        assert estimate_size(("ab", 1)) == 2 + 2 + 8

    def test_nested(self):
        assert estimate_size(["ab", ("c", 2)]) == 2 + 2 + (2 + 1 + 8)

    def test_dict(self):
        assert estimate_size({"k": 1}) == 2 + 1 + 8

    def test_unknown_type_default(self):
        class Weird:
            pass

        assert estimate_size(Weird()) == 16


class TestPartitioners:
    def test_identity(self):
        assert identity_partitioner(13, 8) == 5

    def test_hash_in_range(self):
        for key in ["a", "bb", (1, 2)]:
            assert 0 <= hash_partitioner(key, 7) < 7


class TestContexts:
    def test_map_context_buckets_and_counters(self):
        counters = Counters()
        ctx = MapContext(counters, num_reducers=4, partitioner=identity_partitioner)
        ctx.emit(5, "v1")
        ctx.emit(1, "v2")
        ctx.emit(5, "v3")
        assert [kv[1] for kv in ctx.buckets[1]] == ["v1", "v2", "v3"]
        assert counters.engine(C.MAP_OUTPUT_RECORDS) == 3
        assert ctx.output_records == 3
        assert ctx.output_bytes > 0

    def test_map_context_invalid_partitioner(self):
        ctx = MapContext(Counters(), 4, lambda k, n: 99)
        with pytest.raises(JobError):
            ctx.emit(0, "v")

    def test_map_compute(self):
        counters = Counters()
        ctx = MapContext(counters, 1, identity_partitioner)
        ctx.add_compute(10)
        assert counters.engine(C.MAP_COMPUTE_OPS) == 10

    def test_reduce_context(self):
        counters = Counters()
        ctx = ReduceContext(counters, reducer_id=3)
        ctx.emit("line1")
        ctx.add_compute(7)
        ctx.counter("join", "things", 2)
        assert ctx.output_lines == ["line1"]
        assert counters.engine(C.REDUCE_OUTPUT_RECORDS) == 1
        assert counters.get("join", "things") == 2


class TestJobValidation:
    def test_valid(self):
        MapReduceJob(
            name="j",
            input_paths=["in"],
            output_path="out",
            mapper=_noop_mapper,
            reducer=_noop_reducer,
            num_reducers=2,
        )

    def test_no_reducers(self):
        with pytest.raises(JobError):
            MapReduceJob(
                name="j",
                input_paths=["in"],
                output_path="out",
                mapper=_noop_mapper,
                reducer=_noop_reducer,
                num_reducers=0,
            )

    def test_no_inputs(self):
        with pytest.raises(JobError):
            MapReduceJob(
                name="j",
                input_paths=[],
                output_path="out",
                mapper=_noop_mapper,
                reducer=_noop_reducer,
                num_reducers=1,
            )

    def test_no_output(self):
        with pytest.raises(JobError):
            MapReduceJob(
                name="j",
                input_paths=["in"],
                output_path="",
                mapper=_noop_mapper,
                reducer=_noop_reducer,
                num_reducers=1,
            )
