"""Tests for map-side combiners."""

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster
from repro.mapreduce.job import MapReduceJob, hash_partitioner


def word_count(combine: bool) -> MapReduceJob:
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(counts)}")

    def combiner(word, counts):
        return [sum(counts)]

    return MapReduceJob(
        name="wc",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reducer,
        num_reducers=2,
        partitioner=hash_partitioner,
        combiner=combiner if combine else None,
    )


@pytest.fixture
def cluster():
    c = Cluster(dfs=InMemoryDFS())
    c.dfs.write_file("in", ["a a a b", "a b c", "a a"])
    return c


class TestCombiner:
    def test_same_output_with_and_without(self):
        outputs = []
        for combine in (False, True):
            c = Cluster(dfs=InMemoryDFS())
            c.dfs.write_file("in", ["a a a b", "a b c", "a a"])
            c.run_job(word_count(combine))
            outputs.append(sorted(c.dfs.read_dir("out")))
        assert outputs[0] == outputs[1]
        assert dict(l.split("\t") for l in outputs[0]) == {
            "a": "6", "b": "2", "c": "1",
        }

    def test_shuffle_volume_reduced(self, cluster):
        result = cluster.run_job(word_count(combine=True))
        # 9 map outputs collapse to one record per (task, key).
        assert result.counters.engine(C.COMBINE_INPUT_RECORDS) == 9
        assert result.counters.engine(C.COMBINE_OUTPUT_RECORDS) == 3
        assert result.shuffled_records == 3

    def test_no_combiner_counters_untouched(self, cluster):
        result = cluster.run_job(word_count(combine=False))
        assert result.counters.engine(C.COMBINE_INPUT_RECORDS) == 0
        assert result.shuffled_records == 9

    def test_combiner_runs_per_map_task(self):
        c = Cluster(dfs=InMemoryDFS())
        c.split_records = 1  # one map task per line
        c.dfs.write_file("in", ["a a", "a a"])
        result = c.run_job(word_count(combine=True))
        # combined within each task only: 2 shuffle records, not 1
        assert result.shuffled_records == 2

    def test_combiner_lowers_simulated_shuffle_cost(self):
        def run(combine):
            c = Cluster(dfs=InMemoryDFS())
            c.dfs.write_file("in", ["x " * 200] * 50)
            return c.run_job(word_count(combine)).cost.shuffle_s

        assert run(True) < run(False)
