"""Property-based fuzz suite for block chunking and checksum round-trips.

Hypothesis drives arbitrary file contents (unicode lines, empty files,
ragged block boundaries) through the storage plane and asserts the
invariants the golden tests rely on: chunk/reassemble is the identity,
checksums are content-determined, any single-replica corruption is
survivable, and a plane-served DFS read equals the plain one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.blocks import (
    BlockPlane,
    block_payload,
    chunk_blocks,
    crc32c,
)
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.workers import WorkerPool

# Side files are newline-delimited text, so a line never embeds a line
# separator; surrogates don't encode to UTF-8.
_LINE = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters="\n\r\x85  ",
    ),
    max_size=40,
)
_LINES = st.lists(_LINE, max_size=60)
_BLOCK_RECORDS = st.integers(min_value=1, max_value=16)


def _attached_plane(replication: int = 2, block_records: int = 4) -> BlockPlane:
    dfs = InMemoryDFS()
    plane = BlockPlane(dfs, WorkerPool(4), replication, block_records)
    dfs.block_plane = plane
    return plane


@given(lines=_LINES, block_records=_BLOCK_RECORDS)
def test_chunk_reassemble_is_identity(lines, block_records):
    blocks = chunk_blocks(lines, block_records)
    assert [ln for __, chunk in blocks for ln in chunk] == lines
    assert [start for start, __ in blocks] == list(
        range(0, len(lines), block_records)
    )
    for start, chunk in blocks:
        assert 1 <= len(chunk) <= block_records


@given(lines=_LINES)
def test_payload_checksum_is_content_determined(lines):
    payload = block_payload(lines)
    assert payload.decode("utf-8").split("\n")[:-1] == lines
    assert crc32c(payload) == crc32c(payload)
    if lines:
        # Any single-line change moves the checksum.
        mutated = list(lines)
        mutated[0] = mutated[0] + "x"
        assert crc32c(block_payload(mutated)) != crc32c(payload)


@given(data=st.binary(max_size=64), split=st.integers(min_value=0, max_value=64))
def test_crc32c_chaining(data, split):
    split = min(split, len(data))
    assert crc32c(data[split:], crc32c(data[:split])) == crc32c(data)


@settings(max_examples=25, deadline=None)
@given(lines=_LINES, block_records=_BLOCK_RECORDS)
def test_dfs_round_trip_through_plane(lines, block_records):
    plane = _attached_plane(block_records=block_records)
    dfs = plane.dfs
    dfs.write_file("in/f", lines)
    served = dfs.read_file("in/f")
    assert served == lines

    plain = InMemoryDFS()
    plain.write_file("in/f", lines)
    assert plain.read_file("in/f") == served
    assert plane.fsck().exit_code == 0


@settings(max_examples=25, deadline=None)
@given(
    lines=st.lists(_LINE, min_size=1, max_size=40),
    block_records=_BLOCK_RECORDS,
    data=st.data(),
)
def test_any_single_corruption_is_survivable(lines, block_records, data):
    plane = _attached_plane(block_records=block_records)
    plane.on_write("f", lines)
    blocks = plane.placement.blocks("f")
    block = data.draw(st.sampled_from(blocks), label="block")
    worker = data.draw(st.sampled_from(block.replicas), label="replica")
    primary = block.replicas[0]
    plane.dfs.write_side_file(
        plane._replica_path(worker, "f", block.index), ["#corrupted"]
    )
    # The read always survives: a corrupt primary fails over on the
    # spot; a corrupt secondary is latent until fsck audits it.
    assert plane.read("f") == lines
    assert plane.report.block_corruptions == (1 if worker == primary else 0)
    # fsck catches either case; repair restores full health.
    assert plane.fsck(repair=True).exit_code == 0
    assert plane.fsck().exit_code == 0
