"""Tests for the wall-clock phase decomposition of JobResult (PR 3).

``JobResult.wall_clock_seconds`` keeps the end-to-end total; the new
``phases`` field decomposes it into the engine's stages and the
``*_task_wall`` lists carry worker-measured per-task intervals.
"""

import pytest

from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.engine import Cluster, PhaseTimings
from repro.mapreduce.job import MapReduceJob, hash_partitioner

EXECUTORS = [("serial", 1), ("thread", 2), ("process", 2)]


def _word_count_job(num_reducers=3):
    def mapper(key, line, ctx):
        for word in line.split():
            ctx.emit(word, 1)

    def reducer(word, counts, ctx):
        ctx.emit(f"{word}\t{sum(counts)}")

    return MapReduceJob(
        name="wc",
        input_paths=["in"],
        output_path="out",
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        partitioner=hash_partitioner,
    )


def _map_only_job():
    return MapReduceJob(
        name="mo",
        input_paths=["in"],
        output_path="out",
        mapper=lambda key, line, ctx: ctx.emit(0, line.upper()),
        reducer=None,
        num_reducers=2,
    )


def _run(job, *, executor="serial", workers=1, split_records=20_000):
    cluster = Cluster(
        dfs=InMemoryDFS(), executor=executor, num_workers=workers
    )
    cluster.split_records = split_records
    cluster.dfs.write_file("in", ["a b a c", "b c d", "a"] * 10)
    return cluster.run_job(job)


class TestPhaseTimings:
    def test_reduce_job_times_every_stage(self):
        phases = _run(_word_count_job()).phases
        assert phases.split_s > 0
        assert phases.map_s > 0
        assert phases.shuffle_s > 0
        assert phases.reduce_s > 0
        assert phases.write_s > 0

    def test_total_is_sum_and_bounded_by_wall_clock(self):
        result = _run(_word_count_job())
        phases = result.phases
        assert phases.total_s == pytest.approx(
            phases.split_s
            + phases.map_s
            + phases.shuffle_s
            + phases.reduce_s
            + phases.write_s
        )
        # The decomposition cannot exceed what the job measured overall.
        assert phases.total_s <= result.wall_clock_seconds

    def test_map_only_job_skips_shuffle_and_reduce(self):
        phases = _run(_map_only_job()).phases
        assert phases.shuffle_s == 0.0
        assert phases.reduce_s == 0.0
        assert phases.map_s > 0
        assert phases.write_s > 0

    def test_as_dict_keys_and_total(self):
        d = PhaseTimings(split_s=1, map_s=2, shuffle_s=3, reduce_s=4, write_s=5).as_dict()
        assert d == {
            "split_s": 1,
            "map_s": 2,
            "shuffle_s": 3,
            "reduce_s": 4,
            "write_s": 5,
            "total_s": 15,
        }

    def test_default_is_all_zero(self):
        assert PhaseTimings().total_s == 0.0


class TestTaskWall:
    @pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
    def test_one_interval_per_task(self, executor, workers):
        result = _run(
            _word_count_job(), executor=executor, workers=workers, split_records=10
        )
        assert len(result.map_task_wall) == len(result.map_tasks) == 3
        assert len(result.reduce_task_wall) == len(result.reduce_tasks) == 3

    @pytest.mark.parametrize(("executor", "workers"), EXECUTORS)
    def test_intervals_are_job_relative_and_ordered(self, executor, workers):
        result = _run(
            _word_count_job(), executor=executor, workers=workers, split_records=10
        )
        for start, end in result.map_task_wall + result.reduce_task_wall:
            assert 0.0 <= start < end
            assert end <= result.wall_clock_seconds

    def test_map_only_job_has_no_reduce_intervals(self):
        result = _run(_map_only_job())
        assert result.reduce_task_wall == []
        assert len(result.map_task_wall) == len(result.map_tasks)
